"""Two-phase primal simplex over exact rationals.

Solves ``max c x  s.t.  A x (<=|>=|==) b,  x >= 0`` with
:class:`fractions.Fraction` arithmetic — no numerical tolerance games, which
matters because the conflict-system prescreen must never declare a feasible
system infeasible.  Bland's rule guarantees termination.

The implementation is the textbook dense tableau; problem sizes here are a
few dozen variables/constraints, where exact arithmetic is entirely
affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple


@dataclass
class LinearProgram:
    """``max objective . x`` subject to ``rows[i] . x (senses[i]) rhs[i]``,
    ``x >= 0``."""

    num_vars: int
    rows: List[List[Fraction]]
    senses: List[str]
    rhs: List[Fraction]
    objective: List[Fraction]

    @classmethod
    def feasibility(
        cls,
        num_vars: int,
        constraints: Sequence[Tuple[Sequence[float], str, float]],
    ) -> "LinearProgram":
        """A pure feasibility problem (zero objective)."""
        rows, senses, rhs = [], [], []
        for coeffs, sense, bound in constraints:
            if sense not in ("<=", ">=", "=="):
                raise ValueError(f"bad sense {sense!r}")
            rows.append([Fraction(c) for c in coeffs])
            senses.append(sense)
            rhs.append(Fraction(bound))
        return cls(
            num_vars=num_vars,
            rows=rows,
            senses=senses,
            rhs=rhs,
            objective=[Fraction(0)] * num_vars,
        )

    def add_upper_bounds(self, bound: float) -> None:
        """Add ``x_i <= bound`` for every variable (0-1 relaxations)."""
        for i in range(self.num_vars):
            row = [Fraction(0)] * self.num_vars
            row[i] = Fraction(1)
            self.rows.append(row)
            self.senses.append("<=")
            self.rhs.append(Fraction(bound))


@dataclass
class SimplexResult:
    feasible: bool
    objective_value: Optional[Fraction]
    solution: Optional[List[Fraction]]


def solve_lp(problem: LinearProgram) -> SimplexResult:
    """Two-phase simplex; returns feasibility, optimum and a solution point.

    Unbounded problems report ``feasible=True`` with ``objective_value``
    ``None`` (the prescreen only ever asks for feasibility).
    """
    n = problem.num_vars
    m = len(problem.rows)

    # normal form: every row becomes an equality with a slack (<=: +s,
    # >=: -s + artificial, ==: artificial); rhs made non-negative first
    rows = [list(r) for r in problem.rows]
    senses = list(problem.senses)
    rhs = list(problem.rhs)
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = [-c for c in rows[i]]
            rhs[i] = -rhs[i]
            senses[i] = {"<=": ">=", ">=": "<=", "==": "=="}[senses[i]]

    slack_count = sum(1 for s in senses if s in ("<=", ">="))
    total = n + slack_count
    art_needed = [s in (">=", "==") for s in senses]
    artificial_count = sum(art_needed)
    width = total + artificial_count

    tableau: List[List[Fraction]] = []
    basis: List[int] = []
    slack_index = n
    art_index = total
    for i in range(m):
        row = [Fraction(0)] * width
        for j in range(n):
            row[j] = rows[i][j]
        if senses[i] == "<=":
            row[slack_index] = Fraction(1)
            basis.append(slack_index)
            slack_index += 1
        elif senses[i] == ">=":
            row[slack_index] = Fraction(-1)
            slack_index += 1
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        else:
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        row.append(rhs[i])
        tableau.append(row)

    def pivot(tableau, basis, objective_row) -> bool:
        """Run simplex with Bland's rule; returns False if unbounded."""
        while True:
            entering = None
            for j in range(width):
                if objective_row[j] > 0:
                    entering = j
                    break
            if entering is None:
                return True
            leaving = None
            best = None
            for i in range(m):
                coeff = tableau[i][entering]
                if coeff > 0:
                    ratio = tableau[i][-1] / coeff
                    if best is None or ratio < best or (
                        ratio == best and basis[i] < basis[leaving]
                    ):
                        best = ratio
                        leaving = i
            if leaving is None:
                return False
            _do_pivot(tableau, objective_row, basis, leaving, entering)

    def _do_pivot(tableau, objective_row, basis, leaving, entering):
        pivot_value = tableau[leaving][entering]
        tableau[leaving] = [c / pivot_value for c in tableau[leaving]]
        for i in range(m):
            if i != leaving and tableau[i][entering] != 0:
                factor = tableau[i][entering]
                tableau[i] = [
                    a - factor * b for a, b in zip(tableau[i], tableau[leaving])
                ]
        factor = objective_row[entering]
        if factor != 0:
            objective_row[:] = [
                a - factor * b for a, b in zip(objective_row, tableau[leaving])
            ]
        basis[leaving] = entering

    # phase 1: minimise the artificial sum (maximise its negation)
    if artificial_count:
        phase1 = [Fraction(0)] * width + [Fraction(0)]
        for j in range(total, width):
            phase1[j] = Fraction(-1)
        # express in terms of the basis (artificials are basic)
        for i in range(m):
            if basis[i] >= total:
                phase1 = [
                    a + b for a, b in zip(phase1, tableau[i])
                ]
        bounded = pivot(tableau, basis, phase1)
        assert bounded, "phase 1 is always bounded"
        if phase1[-1] != 0:
            return SimplexResult(False, None, None)
        # drive any lingering artificial out of the basis if possible
        for i in range(m):
            if basis[i] >= total:
                for j in range(total):
                    if tableau[i][j] != 0:
                        _do_pivot(tableau, phase1, basis, i, j)
                        break

    # phase 2
    objective_row = [Fraction(0)] * width + [Fraction(0)]
    for j in range(n):
        objective_row[j] = Fraction(problem.objective[j])
    for j in range(total, width):
        objective_row[j] = Fraction(-10**12)  # keep artificials out
    for i in range(m):
        factor = objective_row[basis[i]]
        if factor != 0:
            objective_row = [
                a - factor * b for a, b in zip(objective_row, tableau[i])
            ]
    bounded = pivot(tableau, basis, objective_row)

    solution = [Fraction(0)] * n
    for i in range(m):
        if basis[i] < n:
            solution[basis[i]] = tableau[i][-1]
    if not bounded:
        return SimplexResult(True, None, solution)
    value = sum(
        c * x for c, x in zip(problem.objective, solution)
    )
    return SimplexResult(True, value, solution)
