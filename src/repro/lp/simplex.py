"""Two-phase primal simplex over exact rationals.

Solves ``max c x  s.t.  A x (<=|>=|==) b,  x >= 0`` with
:class:`fractions.Fraction` arithmetic — no numerical tolerance games, which
matters because the conflict-system prescreen must never declare a feasible
system infeasible.  Bland's rule guarantees termination.

The implementation is the textbook dense tableau, but each row is stored
as a list of integer numerators over one shared positive denominator
instead of per-cell :class:`~fractions.Fraction` objects: pivoting then
runs on machine integers (one gcd-reduction per updated row) rather than
constructing and normalising a ``Fraction`` per cell per pivot — the same
exact values, the same Bland pivot sequence, several times faster on the
separation-LP workload.  Problem sizes here are a few dozen
variables/constraints, where exact arithmetic is entirely affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import List, Optional, Sequence, Tuple


@dataclass
class LinearProgram:
    """``max objective . x`` subject to ``rows[i] . x (senses[i]) rhs[i]``,
    ``x >= 0``."""

    num_vars: int
    rows: List[List[Fraction]]
    senses: List[str]
    rhs: List[Fraction]
    objective: List[Fraction]

    @classmethod
    def feasibility(
        cls,
        num_vars: int,
        constraints: Sequence[Tuple[Sequence[float], str, float]],
    ) -> "LinearProgram":
        """A pure feasibility problem (zero objective)."""
        rows, senses, rhs = [], [], []
        for coeffs, sense, bound in constraints:
            if sense not in ("<=", ">=", "=="):
                raise ValueError(f"bad sense {sense!r}")
            rows.append([Fraction(c) for c in coeffs])
            senses.append(sense)
            rhs.append(Fraction(bound))
        return cls(
            num_vars=num_vars,
            rows=rows,
            senses=senses,
            rhs=rhs,
            objective=[Fraction(0)] * num_vars,
        )

    def add_upper_bounds(self, bound: float) -> None:
        """Add ``x_i <= bound`` for every variable (0-1 relaxations)."""
        for i in range(self.num_vars):
            row = [Fraction(0)] * self.num_vars
            row[i] = Fraction(1)
            self.rows.append(row)
            self.senses.append("<=")
            self.rhs.append(Fraction(bound))


@dataclass
class SimplexResult:
    feasible: bool
    objective_value: Optional[Fraction]
    solution: Optional[List[Fraction]]


def _reduce_row(nums: List[int], den: int) -> Tuple[List[int], int]:
    """Divide the integer row ``nums / den`` by the gcd of all entries."""
    g = den
    for v in nums:
        if v:
            g = gcd(g, v)
            if g == 1:
                return nums, den
    if g > 1:
        return [v // g for v in nums], den // g
    return nums, den


def _int_row(values: Sequence[Fraction]) -> List[object]:
    """A Fraction row as ``[numerators, shared positive denominator]``."""
    den = 1
    for value in values:
        d = value.denominator
        den = den * d // gcd(den, d)
    return [[value.numerator * (den // value.denominator) for value in values], den]


def solve_lp(problem: LinearProgram) -> SimplexResult:
    """Two-phase simplex; returns feasibility, optimum and a solution point.

    Unbounded problems report ``feasible=True`` with ``objective_value``
    ``None`` (the prescreen only ever asks for feasibility).
    """
    n = problem.num_vars
    m = len(problem.rows)

    # normal form: every row becomes an equality with a slack (<=: +s,
    # >=: -s + artificial, ==: artificial); rhs made non-negative first
    rows = [list(r) for r in problem.rows]
    senses = list(problem.senses)
    rhs = list(problem.rhs)
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = [-c for c in rows[i]]
            rhs[i] = -rhs[i]
            senses[i] = {"<=": ">=", ">=": "<=", "==": "=="}[senses[i]]

    slack_count = sum(1 for s in senses if s in ("<=", ">="))
    total = n + slack_count
    art_needed = [s in (">=", "==") for s in senses]
    artificial_count = sum(art_needed)
    width = total + artificial_count

    # The tableau lives as [numerators, denominator] pairs per row (see the
    # module docstring): signs, ratio comparisons and pivot updates all run
    # on the integer numerators, with the shared denominators kept positive
    # so sign tests never need them.
    tableau: List[List[object]] = []
    basis: List[int] = []
    slack_index = n
    art_index = total
    for i in range(m):
        row = [Fraction(0)] * width
        for j in range(n):
            row[j] = rows[i][j]
        if senses[i] == "<=":
            row[slack_index] = Fraction(1)
            basis.append(slack_index)
            slack_index += 1
        elif senses[i] == ">=":
            row[slack_index] = Fraction(-1)
            slack_index += 1
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        else:
            row[art_index] = Fraction(1)
            basis.append(art_index)
            art_index += 1
        row.append(rhs[i])
        tableau.append(_int_row(row))

    def pivot(objective_row) -> bool:
        """Run simplex with Bland's rule; returns False if unbounded.

        The entering test reads numerator signs; the ratio test compares
        ``rhs_i / coeff_i`` by cross-multiplication (each row's own
        denominator cancels inside the ratio, and the pivot candidates'
        numerators are positive, so the comparison never leaves integers).
        """
        while True:
            obj_nums = objective_row[0]
            entering = None
            for j in range(width):
                if obj_nums[j] > 0:
                    entering = j
                    break
            if entering is None:
                return True
            leaving = None
            best_num = best_den = 0
            for i in range(m):
                nums_i = tableau[i][0]
                coeff = nums_i[entering]
                if coeff > 0:
                    ratio_num = nums_i[-1]
                    if leaving is None:
                        best_num, best_den, leaving = ratio_num, coeff, i
                        continue
                    lhs = ratio_num * best_den
                    rhs_ = best_num * coeff
                    if lhs < rhs_ or (
                        lhs == rhs_ and basis[i] < basis[leaving]
                    ):
                        best_num, best_den, leaving = ratio_num, coeff, i
            if leaving is None:
                return False
            _do_pivot(objective_row, leaving, entering)

    def _do_pivot(objective_row, leaving, entering):
        nums_l = tableau[leaving][0]
        p = nums_l[entering]
        # leaving row / pivot value: the old denominator cancels, the pivot
        # numerator becomes the new denominator (sign-fixed positive)
        if p < 0:
            new_nums, new_den = [-v for v in nums_l], -p
        else:
            new_nums, new_den = list(nums_l), p
        new_nums, new_den = _reduce_row(new_nums, new_den)
        tableau[leaving] = [new_nums, new_den]
        for i in range(m):
            if i == leaving:
                continue
            nums_i, den_i = tableau[i]
            factor = nums_i[entering]
            if factor:
                merged = [
                    a * new_den - factor * b for a, b in zip(nums_i, new_nums)
                ]
                tableau[i] = list(_reduce_row(merged, den_i * new_den))
        factor = objective_row[0][entering]
        if factor:
            merged = [
                a * new_den - factor * b
                for a, b in zip(objective_row[0], new_nums)
            ]
            objective_row[0], objective_row[1] = _reduce_row(
                merged, objective_row[1] * new_den
            )
        basis[leaving] = entering

    # phase 1: minimise the artificial sum (maximise its negation)
    if artificial_count:
        p1_nums = [0] * width + [0]
        for j in range(total, width):
            p1_nums[j] = -1
        phase1: List[object] = [p1_nums, 1]
        # express in terms of the basis (artificials are basic)
        for i in range(m):
            if basis[i] >= total:
                nums_i, den_i = tableau[i]
                merged = [
                    a * den_i + b * phase1[1]
                    for a, b in zip(phase1[0], nums_i)
                ]
                phase1 = list(_reduce_row(merged, phase1[1] * den_i))
        bounded = pivot(phase1)
        assert bounded, "phase 1 is always bounded"
        if phase1[0][-1] != 0:
            return SimplexResult(False, None, None)
        # drive any lingering artificial out of the basis if possible
        for i in range(m):
            if basis[i] >= total:
                nums_i = tableau[i][0]
                for j in range(total):
                    if nums_i[j] != 0:
                        _do_pivot(phase1, i, j)
                        break

    # phase 2
    objective_fracs = [Fraction(0)] * width + [Fraction(0)]
    for j in range(n):
        objective_fracs[j] = Fraction(problem.objective[j])
    for j in range(total, width):
        objective_fracs[j] = Fraction(-10**12)  # keep artificials out
    objective_row = _int_row(objective_fracs)
    for i in range(m):
        factor = objective_row[0][basis[i]]
        if factor:
            nums_i, den_i = tableau[i]
            merged = [
                a * den_i - factor * b
                for a, b in zip(objective_row[0], nums_i)
            ]
            objective_row = list(
                _reduce_row(merged, objective_row[1] * den_i)
            )
    bounded = pivot(objective_row)

    solution = [Fraction(0)] * n
    for i in range(m):
        if basis[i] < n:
            nums_i, den_i = tableau[i]
            solution[basis[i]] = Fraction(nums_i[-1], den_i)
    if not bounded:
        return SimplexResult(True, None, solution)
    value = sum(
        c * x for c, x in zip(problem.objective, solution)
    )
    return SimplexResult(True, value, solution)
