"""A small exact-rational linear programming layer.

The paper notes that keeping all constraints linear lets "more good
heuristics" be applied.  One classical such heuristic — used by the related
deadlock-checking work [8] it builds on — is the *LP relaxation prescreen*:
if the rational relaxation of the integer conflict system is infeasible, the
integer system is too, and the (potentially exponential) search can be
skipped entirely.  This package provides the substrate: a fractions-exact
two-phase simplex for feasibility and optimisation over rational polyhedra.
"""

from repro.lp.simplex import LinearProgram, SimplexResult, solve_lp

__all__ = ["LinearProgram", "SimplexResult", "solve_lp"]
