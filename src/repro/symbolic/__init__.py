"""Symbolic (BDD-based) state-graph analysis — the Petrify-style baseline.

Reimplements the approach the paper compares against: encode the STG's
reachable (marking, code) pairs as a BDD by symbolic breadth-first traversal
and compute the *characteristic function of all coding conflicts* (Petrify
computes all conflicts rather than stopping at the first, as the paper notes
in Section 8).
"""

from repro.symbolic.encoding import SymbolicSTG
from repro.symbolic.csc import (
    SymbolicConflictReport,
    symbolic_check,
    symbolic_check_both,
)

__all__ = [
    "SymbolicSTG",
    "SymbolicConflictReport",
    "symbolic_check",
    "symbolic_check_both",
]
