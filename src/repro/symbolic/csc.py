"""Symbolic USC/CSC conflict detection (the Petrify-style baseline).

Following Petrify's approach (and unlike the paper's method, which stops at
the first conflict), this computes the *characteristic function of all
conflicts*: the BDD of marking pairs ``(m1, m2)`` that are distinct, both
reachable, carry the same code, and — for CSC — differ in their enabled
output signals.

The pair construction doubles the marking variables: the second marking copy
reuses the primed levels (interleaved with the first copy, which keeps the
pairwise comparison BDDs linear), and the shared code variables enforce code
equality for free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bdd import FALSE
from repro.exceptions import InconsistentSTGError
from repro.stg.consistency import check_consistency
from repro.stg.stg import STG
from repro.symbolic.encoding import SymbolicSTG


@dataclass
class SymbolicConflictReport:
    """Outcome of the symbolic (state-graph) conflict computation."""

    property_name: str          # "USC" or "CSC"
    holds: bool
    num_states: int             # reachable (marking, code) states
    num_conflict_pairs: int     # satisfying assignments of the conflict BDD
    bdd_nodes: int              # BDD nodes allocated by the manager (memory)
    witness: Optional[Tuple[Dict[str, int], Dict[str, int]]]
    elapsed: float

    def __bool__(self) -> bool:
        return self.holds


def symbolic_check(
    stg: STG,
    property_name: str = "csc",
    initial_code: Optional[Tuple[int, ...]] = None,
) -> SymbolicConflictReport:
    """Run the full symbolic conflict computation for USC or CSC.

    ``initial_code`` defaults to the code inferred by the consistency check
    (which also guards against inconsistent inputs, mirroring Petrify's
    upfront validation).
    """
    started = time.perf_counter()
    property_name = property_name.lower()
    if property_name not in ("usc", "csc"):
        raise ValueError("property must be 'usc' or 'csc'")
    if stg.has_dummies():
        raise InconsistentSTGError(
            "the symbolic baseline requires a dummy-free STG "
            "(contract dummies first; see repro.stg.transform)"
        )
    if initial_code is None:
        initial_code = check_consistency(stg).initial_code

    sym = SymbolicSTG(stg)
    m = sym.manager
    reached = sym.reachable(initial_code)
    num_states = sym.count_states(reached)

    # second marking copy: place p lives on the (otherwise unused) primed
    # level 2p+1, interleaved with the first copy — a non-interleaved layout
    # would make the pairwise "markings differ" BDD exponential in |P|
    copy_map = {2 * p: 2 * p + 1 for p in range(sym.num_places)}
    reached_copy = m.rename(reached, copy_map)

    both = m.and_(reached, reached_copy)

    # markings differ somewhere
    differ = FALSE
    for p in range(sym.num_places):
        differ = m.or_(differ, m.xor_(m.var(2 * p), m.var(2 * p + 1)))
    conflicts = m.and_(both, differ)

    if property_name == "csc":
        out_differs = FALSE
        for signal in stg.non_input_signals:
            enabled_1 = FALSE
            for t in stg.transitions_of(signal):
                enabled_1 = m.or_(enabled_1, sym.enabled_bdd(t))
            enabled_2 = m.rename(enabled_1, copy_map)
            out_differs = m.or_(out_differs, m.xor_(enabled_1, enabled_2))
        conflicts = m.and_(conflicts, out_differs)

    holds = conflicts == FALSE
    witness = None
    if not holds:
        assignment = m.any_sat(conflicts)
        witness = _decode_witness(sym, assignment)

    # count pairs over both marking copies and the shared code variables
    count_levels = (
        [2 * p for p in range(sym.num_places)]
        + [2 * p + 1 for p in range(sym.num_places)]
        + sym.signal_levels()
    )
    mapping = {level: i for i, level in enumerate(sorted(count_levels))}
    compact = m.rename(conflicts, mapping)
    num_pairs = m.sat_count(compact, len(count_levels)) // 2  # unordered pairs

    return SymbolicConflictReport(
        property_name=property_name.upper(),
        holds=holds,
        num_states=num_states,
        num_conflict_pairs=num_pairs,
        bdd_nodes=m.num_nodes,
        witness=witness,
        elapsed=time.perf_counter() - started,
    )


def symbolic_check_both(
    stg: STG, initial_code: Optional[Tuple[int, ...]] = None
) -> Tuple[SymbolicConflictReport, SymbolicConflictReport]:
    """USC and CSC in one pass, sharing the manager and reachable set.

    The CSC conflict function is the USC one conjoined with the
    output-excitation difference, so computing both costs barely more than
    one — this is what the Table 1 harness uses for the baseline column.
    """
    started = time.perf_counter()
    if stg.has_dummies():
        raise InconsistentSTGError(
            "the symbolic baseline requires a dummy-free STG "
            "(contract dummies first; see repro.stg.transform)"
        )
    if initial_code is None:
        initial_code = check_consistency(stg).initial_code
    sym = SymbolicSTG(stg)
    m = sym.manager
    reached = sym.reachable(initial_code)
    num_states = sym.count_states(reached)

    copy_map = {2 * p: 2 * p + 1 for p in range(sym.num_places)}
    both = m.and_(reached, m.rename(reached, copy_map))
    differ = FALSE
    for p in range(sym.num_places):
        differ = m.or_(differ, m.xor_(m.var(2 * p), m.var(2 * p + 1)))
    usc_conflicts = m.and_(both, differ)

    out_differs = FALSE
    for signal in stg.non_input_signals:
        enabled_1 = FALSE
        for t in stg.transitions_of(signal):
            enabled_1 = m.or_(enabled_1, sym.enabled_bdd(t))
        enabled_2 = m.rename(enabled_1, copy_map)
        out_differs = m.or_(out_differs, m.xor_(enabled_1, enabled_2))
    csc_conflicts = m.and_(usc_conflicts, out_differs)

    count_levels = (
        [2 * p for p in range(sym.num_places)]
        + [2 * p + 1 for p in range(sym.num_places)]
        + sym.signal_levels()
    )
    mapping = {level: i for i, level in enumerate(sorted(count_levels))}

    def report(name: str, conflicts: int, elapsed: float) -> SymbolicConflictReport:
        holds = conflicts == FALSE
        witness = None
        if not holds:
            witness = _decode_witness(sym, m.any_sat(conflicts))
        compact = m.rename(conflicts, mapping)
        pairs = m.sat_count(compact, len(count_levels)) // 2
        return SymbolicConflictReport(
            property_name=name,
            holds=holds,
            num_states=num_states,
            num_conflict_pairs=pairs,
            bdd_nodes=m.num_nodes,
            witness=witness,
            elapsed=elapsed,
        )

    elapsed = time.perf_counter() - started
    return report("USC", usc_conflicts, elapsed), report("CSC", csc_conflicts, elapsed)


def _decode_witness(
    sym: SymbolicSTG, assignment: Dict[int, bool]
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Translate a satisfying assignment into two named markings."""
    net = sym.net
    first = {
        net.place_name(p): int(assignment.get(2 * p, False))
        for p in range(sym.num_places)
    }
    second = {
        net.place_name(p): int(assignment.get(2 * p + 1, False))
        for p in range(sym.num_places)
    }
    return first, second
