"""Boolean state encoding and symbolic reachability for safe STGs.

State variables: one boolean per place (safe nets) plus one per signal (the
binary code).  Each variable has a *current* and a *next* copy, interleaved
in the BDD order (``2k`` current, ``2k+1`` next) — the standard layout that
keeps transition-relation BDDs small.

The transition relation is a disjunction over STG transitions of

    enabled(current places) AND frame(unchanged vars) AND updates,

and reachability is the usual breadth-first image iteration.  This is the
machinery Petrify's conflict detection rests on; the memory it consumes (BDD
nodes for the whole reachable set) is exactly what the paper's prefix-based
method avoids.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bdd import BDD, FALSE, TRUE
from repro.exceptions import UnboundedNetError
from repro.stg.stg import STG


class SymbolicSTG:
    """Symbolic encoding of a (safe, consistent) STG's state graph."""

    def __init__(self, stg: STG):
        self.stg = stg
        self.net = stg.net
        self.manager = BDD()
        self.num_places = self.net.num_places
        self.num_signals = len(stg.signals)
        self.num_state_vars = self.num_places + self.num_signals
        # levels: state var k -> current 2k, next 2k+1
        self._reachable: Optional[int] = None
        self._transition_relation: Optional[int] = None

    # -- variable helpers ---------------------------------------------------------

    def place_var(self, place: int, primed: bool = False) -> int:
        return 2 * place + (1 if primed else 0)

    def signal_var(self, signal: int, primed: bool = False) -> int:
        return 2 * (self.num_places + signal) + (1 if primed else 0)

    def current_levels(self) -> List[int]:
        return [2 * k for k in range(self.num_state_vars)]

    def next_levels(self) -> List[int]:
        return [2 * k + 1 for k in range(self.num_state_vars)]

    def signal_levels(self) -> List[int]:
        return [2 * (self.num_places + s) for s in range(self.num_signals)]

    def place_levels(self) -> List[int]:
        return [2 * p for p in range(self.num_places)]

    # -- building blocks -----------------------------------------------------------

    def initial_state(self, initial_code: Tuple[int, ...]) -> int:
        m = self.manager
        initial = self.net.initial_marking
        if initial.max_count() > 1:
            raise UnboundedNetError("symbolic encoding requires a safe net")
        terms = []
        for p in range(self.num_places):
            var = m.var(2 * p)
            terms.append(var if initial[p] else m.not_(var))
        for s in range(self.num_signals):
            var = m.var(2 * (self.num_places + s))
            terms.append(var if initial_code[s] else m.not_(var))
        return m.and_(*terms)

    def enabled_bdd(self, transition: int, primed: bool = False) -> int:
        """The enabling condition of a transition over (current) place vars."""
        m = self.manager
        offset = 1 if primed else 0
        return m.and_(
            *(m.var(2 * p + offset) for p in self.net.preset(transition))
        )

    def transition_relation(self) -> int:
        if self._transition_relation is not None:
            return self._transition_relation
        m = self.manager
        relation = FALSE
        for t in range(self.net.num_transitions):
            pre = set(self.net.preset(t))
            post = set(self.net.postset(t))
            touched_places = pre | post
            signal, delta = self.stg.signal_change(t)
            terms = [self.enabled_bdd(t)]
            for p in range(self.num_places):
                cur = m.var(2 * p)
                nxt = m.var(2 * p + 1)
                if p in pre and p not in post:
                    terms.append(m.not_(nxt))
                elif p in post and p not in pre:
                    # safeness: the target place must be empty (else the net
                    # is unsafe and the encoding invalid)
                    terms.append(nxt)
                elif p in pre and p in post:
                    terms.append(nxt)  # self-loop keeps the token
                else:
                    terms.append(m.iff(cur, nxt))
            for s in range(self.num_signals):
                cur = m.var(2 * (self.num_places + s))
                nxt = m.var(2 * (self.num_places + s) + 1)
                if s == signal:
                    # consistency: a rising edge requires the signal low
                    terms.append(m.not_(cur) if delta > 0 else cur)
                    terms.append(nxt if delta > 0 else m.not_(nxt))
                else:
                    terms.append(m.iff(cur, nxt))
            relation = m.or_(relation, m.and_(*terms))
        self._transition_relation = relation
        return relation

    # -- reachability ------------------------------------------------------------------

    def _image_actions(self):
        """Per-transition image recipes: (enabled, changed levels, updates).

        STG transitions have *constant* updates (token moves and one signal
        flip), so an image step needs no primed variables at all: restrict
        to the enabled states, quantify the changed variables, conjoin their
        new constant values.  This partitioned deterministic image is far
        cheaper than relational products against a monolithic relation.
        """
        cached = getattr(self, "_actions", None)
        if cached is not None:
            return cached
        m = self.manager
        actions = []
        for t in range(self.net.num_transitions):
            pre = set(self.net.preset(t))
            post = set(self.net.postset(t))
            signal, delta = self.stg.signal_change(t)
            enabled = self.enabled_bdd(t)
            if signal is not None:
                sig_level = 2 * (self.num_places + signal)
                # consistency guard: a rising edge requires the signal low
                guard = m.not_(m.var(sig_level)) if delta > 0 else m.var(sig_level)
                enabled = m.and_(enabled, guard)
            changed = []
            updates = []
            for p in pre - post:
                changed.append(2 * p)
                updates.append(m.not_(m.var(2 * p)))
            for p in post - pre:
                changed.append(2 * p)
                updates.append(m.var(2 * p))
            if signal is not None:
                sig_level = 2 * (self.num_places + signal)
                changed.append(sig_level)
                updates.append(m.var(sig_level) if delta > 0 else m.not_(m.var(sig_level)))
            actions.append((enabled, changed, m.and_(*updates) if updates else 1))
        self._actions = actions
        return actions

    def reachable(self, initial_code: Tuple[int, ...]) -> int:
        """The BDD of all reachable (marking, code) states (current vars)."""
        if self._reachable is not None:
            return self._reachable
        m = self.manager
        actions = self._image_actions()
        reached = self.initial_state(initial_code)
        frontier = reached
        iterations = 0
        while frontier != FALSE:
            iterations += 1
            image = FALSE
            for enabled, changed, updates in actions:
                fired = m.and_(frontier, enabled)
                if fired == FALSE:
                    continue
                fired = m.exists(changed, fired)
                image = m.or_(image, m.and_(fired, updates))
            frontier = m.diff(image, reached)
            reached = m.or_(reached, frontier)
        self.iterations = iterations
        self._reachable = reached
        return reached

    def count_states(self, reached: int) -> int:
        """Number of reachable (marking, code) states."""
        # states are functions of current vars only; count over those levels
        m = self.manager
        # map current levels to a compact 0..n-1 range for counting
        mapping = {2 * k: k for k in range(self.num_state_vars)}
        compact = m.rename(reached, mapping)
        return m.sat_count(compact, self.num_state_vars)
