"""Shared helpers for constructing benchmark STGs.

The models are most naturally described as chains of signal edges connected
by implicit places (the astg style); these helpers provide that notation on
top of the :class:`~repro.stg.stg.STG` builder API.
"""

from __future__ import annotations

from repro.stg.stg import STG, SignalEdge


def edge(stg: STG, token: str) -> str:
    """Ensure a transition named like its edge label exists; return the name.

    ``token`` may carry an astg instance suffix (``lds+/2``); the label is
    parsed from the part before the slash.
    """
    if not stg.net.has_transition(token):
        base = token.split("/", 1)[0]
        stg.add_transition(token, SignalEdge.parse(base))
    return token


def seq(stg: STG, *tokens: str, marked: bool = False) -> None:
    """Chain transitions with fresh implicit places ``<src,dst>``.

    ``marked=True`` puts a token on the *first* connecting place, which is
    how cycle back-edges carry the initial marking.
    """
    first = True
    for src, dst in zip(tokens, tokens[1:]):
        edge(stg, src)
        edge(stg, dst)
        connect(stg, src, dst, marked=marked and first)
        first = False


def connect(stg: STG, src: str, dst: str, marked: bool = False) -> str:
    """Add one implicit place between two transitions; return the place name.

    The endpoint transitions are created on first use, like in ``seq``.
    """
    edge(stg, src)
    edge(stg, dst)
    place = f"<{src},{dst}>"
    if stg.net.has_place(place):
        # parallel places between the same pair get a disambiguating suffix
        k = 2
        while stg.net.has_place(f"<{src},{dst}>#{k}"):
            k += 1
        place = f"<{src},{dst}>#{k}"
    stg.add_place(place, tokens=1 if marked else 0)
    stg.add_arc(src, place)
    stg.add_arc(place, dst)
    return place
