"""Duplex channel controller STGs (Table 1 rows DUP-*).

Reconstructions of the power-efficient duplex communication system of
Furber, Efthymiou and Singh (Async Interfaces workshop, 2000): a single
physical channel is shared by an A-to-B and a B-to-A transfer engine; an
output-enable signal per direction grabs the channel, a four-phase data
handshake performs the transfer, and the channel is handed over to the other
direction.

All variants exhibit CSC conflicts at the turnaround points: the quiescent
code between the two directions is identical while the enabled output-enable
signal differs (``oea`` vs ``oeb``).

Variants:

* ``4ph-a``   — strict alternation, fully sequential four-phase transfers;
* ``4ph-b``   — the channel release (``oe-``) of one direction overlaps the
  other direction's grab (more concurrency, larger prefix);
* ``4ph-mtr-a`` / ``4ph-mtr-b`` — *multiple-transfer* variants: after the
  return-to-zero the engine chooses (free choice) between a second transfer
  and turning the channel around; ``-b`` additionally overlaps the release;
* ``mod-a`` / ``mod-b`` / ``mod-c`` — variants with an extra latch-control
  stage (``lta``/``ltb``) pipelining the data path; ``-a`` pipelines one
  direction, ``-b`` both, ``-c`` both plus overlapped release.
"""

from __future__ import annotations

from typing import Tuple

from repro.models._build import edge, seq
from repro.stg.stg import STG

_VARIANTS = (
    "4ph-a",
    "4ph-b",
    "4ph-mtr-a",
    "4ph-mtr-b",
    "mod-a",
    "mod-b",
    "mod-c",
)


def duplex_channel(variant: str = "4ph-a") -> STG:
    """Build the requested duplex channel controller variant."""
    if variant not in _VARIANTS:
        raise ValueError(f"unknown duplex variant {variant!r}; pick from {_VARIANTS}")
    multiple_transfer = "mtr" in variant
    overlapped = variant in ("4ph-b", "4ph-mtr-b", "mod-c")
    latched = {"a": variant.startswith("mod"), "b": variant in ("mod-b", "mod-c")}

    internal = [f"lt{side}" for side in "ab" if latched[side]]
    stg = STG(
        f"dup-{variant}",
        inputs=["acka", "ackb"],
        outputs=["oea", "oeb", "reqa", "reqb"],
        internal=internal,
    )

    def engine(side: str) -> Tuple[str, str]:
        """Build one direction's engine.

        Returns ``(grab_hook, data_hook)``: place names the *other* side's
        ``oe+`` and ``req+`` must consume.  Under strict alternation both
        hooks fire after the channel release; under overlap the grab hook
        fires already when the transfer is done, concurrently with the
        release.
        """
        oe, req, ack = f"oe{side}", f"req{side}", f"ack{side}"
        if latched[side]:
            lt = f"lt{side}"
            seq(stg, f"{oe}+", f"{req}+", f"{lt}+", f"{ack}+", f"{req}-")
            seq(stg, f"{req}-", f"{lt}-", f"{ack}-")
        else:
            seq(stg, f"{oe}+", f"{req}+", f"{ack}+", f"{req}-", f"{ack}-")

        released = f"released_{side}"
        stg.add_place(released)

        if multiple_transfer:
            # free choice after RTZ: a second transfer, or direct turnaround
            choice = f"choice_{side}"
            stg.add_place(choice)
            stg.add_arc(f"{ack}-", choice)
            seq(stg, f"{req}+/2", f"{ack}+/2", f"{req}-/2", f"{ack}-/2", f"{oe}-/2")
            stg.add_arc(choice, f"{req}+/2")
            edge(stg, f"{oe}-")
            stg.add_arc(choice, f"{oe}-")
            stg.add_arc(f"{oe}-", released)
            stg.add_arc(f"{oe}-/2", released)
            final_ack = f"{ack}-"  # the grab hook fires at the first RTZ
        else:
            done = f"done_{side}"
            stg.add_place(done)
            stg.add_arc(f"{ack}-", done)
            edge(stg, f"{oe}-")
            stg.add_arc(done, f"{oe}-")
            stg.add_arc(f"{oe}-", released)
            final_ack = f"{ack}-"

        if overlapped:
            grab = f"handover_{side}"
            stg.add_place(grab)
            stg.add_arc(final_ack, grab)
            return grab, released
        return released, released

    grab_a, data_a = engine("a")
    grab_b, data_b = engine("b")

    # wire the hand-over: side B's hooks start side A and vice versa
    stg.add_arc(grab_a, "oeb+")
    stg.add_arc(grab_b, "oea+")
    stg.net.set_tokens(grab_b, 1)
    if overlapped:
        # the new direction may only drive data once the channel is free
        stg.add_arc(data_a, "reqb+")
        stg.add_arc(data_b, "reqa+")
        stg.net.set_tokens(data_b, 1)
    return stg
