"""Classic textbook asynchronous controllers.

Small, well-known STGs used throughout the async-design literature (and the
petrify benchmark suites), reconstructed here from their published behaviour:
the Muller C-element, a set-dominant latch, a four-phase latch controller
with decoupled input/output handshakes, and a toggle.  All are verified by
the test suite to be safe, consistent and live, with their textbook
USC/CSC verdicts pinned.
"""

from __future__ import annotations

from repro.models._build import connect, seq
from repro.stg.stg import STG


def c_element() -> STG:
    """The Muller C-element: output ``c`` rises when both inputs are high,
    falls when both are low.  Safe marked graph; satisfies USC and CSC."""
    stg = STG("c-element", inputs=["a", "b"], outputs=["c"])
    connect(stg, "a+", "c+")
    connect(stg, "b+", "c+")
    connect(stg, "c+", "a-")
    connect(stg, "c+", "b-")
    connect(stg, "a-", "c-")
    connect(stg, "b-", "c-")
    connect(stg, "c-", "a+", marked=True)
    connect(stg, "c-", "b+", marked=True)
    return stg


def sr_latch() -> STG:
    """A set/reset latch driven by alternating set and reset pulses:
    ``s+ q+ s- r+ q- r-``.  Fully sequential; satisfies USC and CSC."""
    stg = STG("sr-latch", inputs=["s", "r"], outputs=["q"])
    seq(stg, "s+", "q+", "s-", "r+", "q-", "r-")
    seq(stg, "r-", "s+", marked=True)
    return stg


def latch_controller() -> STG:
    """A four-phase pipeline latch controller with decoupled handshakes.

    The input handshake (``rin``/``ain``) captures data into the latch
    (``lt``), the output handshake (``rout``/``aout``) passes it on; the
    return-to-zero phases of the two sides overlap.  This is the classic
    "half-decoupled" controller shape; like most undecoupled latch
    controllers it has a **CSC conflict** (the controller cannot tell the
    pre-capture and post-release all-zero states apart), making it a nice
    small non-benchmark test input for the conflict detectors.
    """
    stg = STG(
        "latch-ctrl",
        inputs=["rin", "aout"],
        outputs=["ain", "rout", "lt"],
    )
    # capture: request in, latch, acknowledge in
    seq(stg, "rin+", "lt+", "ain+", "rin-")
    # pass on: once latched, drive the output handshake
    seq(stg, "lt+", "rout+", "aout+", "rout-", "aout-")
    # release: input side returns to zero while the output side completes
    seq(stg, "rin-", "lt-", "ain-")
    seq(stg, "aout+", "lt-")
    # next cycle: both handshakes must have completed
    connect(stg, "ain-", "rin+", marked=True)
    connect(stg, "aout-", "rin+", marked=True)
    return stg


def toggle() -> STG:
    """A toggle element: successive input pulses steer two phase outputs
    (``q0``/``q1``).  Deliberately specified *without* internal state, so it
    has a **CSC conflict** — the environment's pulses are indistinguishable
    by code alone, which is exactly why hardware toggles carry an internal
    phase bit.  ``repro.synthesis.resolve_csc`` finds that bit
    automatically (see the tests)."""
    stg = STG("toggle", inputs=["i"], outputs=["q0", "q1"])
    seq(stg, "i+", "q0+", "i-")
    seq(stg, "i-", "i+/2")
    seq(stg, "i+/2", "q1+", "i-/2")
    seq(stg, "i-/2", "q0-")
    seq(stg, "q1+", "q0-")
    seq(stg, "q0-", "i+/3")
    seq(stg, "i+/3", "q1-", "i-/3")
    seq(stg, "q0+", "q1-")
    seq(stg, "i-/3", "i+", marked=True)
    return stg


CLASSIC_MODELS = {
    "c-element": c_element,
    "sr-latch": sr_latch,
    "latch-ctrl": latch_controller,
    "toggle": toggle,
}
