"""The VME bus controller STGs of the paper's Figures 1-3.

``vme_bus`` is the read-cycle controller of Figure 1: it exhibits the CSC
conflict between two markings with code ``10110`` (signal order dsr, dtack,
lds, ldtack, d) where one enables output ``d`` and the other output ``lds``.

``vme_bus_csc_resolved`` is the Figure 3 variant with the internal signal
``csc`` inserted (implementation ``csc = dsr AND (csc OR NOT ldtack)``): it
satisfies CSC but violates normalcy for ``csc``, whose implementation
function is non-monotonic (positive in ``dsr``, negative in ``ldtack``).
"""

from __future__ import annotations

from repro.models._build import seq
from repro.stg.stg import STG


def vme_bus() -> STG:
    """Figure 1: the simplified VME bus controller (data read cycle).

    Signals: inputs ``dsr`` (data send request), ``ldtack`` (local device
    acknowledge); outputs ``lds`` (local device select), ``d`` (data), and
    ``dtack`` (data acknowledge).
    """
    stg = STG("vme-read", inputs=["dsr", "ldtack"], outputs=["dtack", "lds", "d"])
    # main causal chain of the read cycle
    seq(stg, "dsr+", "lds+", "ldtack+", "d+", "dtack+", "dsr-", "d-")
    # release of the local device, re-enabling the next lds+
    seq(stg, "d-", "lds-", "ldtack-")
    seq(stg, "ldtack-", "lds+", marked=True)
    # bus-side recovery, re-enabling the next dsr+
    seq(stg, "d-", "dtack-")
    seq(stg, "dtack-", "dsr+", marked=True)
    return stg


def vme_bus_csc_resolved() -> STG:
    """Figure 3: the VME controller after CSC resolution with signal ``csc``.

    ``csc+`` is inserted between ``dsr+`` and ``lds+``; ``csc-`` between
    ``dsr-`` and ``d-``.  The resulting STG satisfies CSC (next-state
    functions ``lds = d + csc``, ``dtack = d``, ``d = ldtack * csc``,
    ``csc = dsr * (csc + ldtack')``) but ``csc`` is neither p-normal nor
    n-normal.
    """
    stg = STG(
        "vme-read-csc",
        inputs=["dsr", "ldtack"],
        outputs=["dtack", "lds", "d"],
        internal=["csc"],
    )
    seq(stg, "dsr+", "csc+", "lds+", "ldtack+", "d+", "dtack+", "dsr-", "csc-", "d-")
    seq(stg, "d-", "lds-", "ldtack-")
    # csc's set function is dsr AND NOT ldtack: the next csc+ must wait for
    # the local device release of the previous cycle
    seq(stg, "ldtack-", "csc+", marked=True)
    seq(stg, "d-", "dtack-")
    seq(stg, "dtack-", "dsr+", marked=True)
    return stg
