"""Counterflow pipeline controller STGs (Table 1 rows CF-*-CSC).

Reconstructions of the counterflow pipeline processor control of Yakovlev
(Formal Methods in System Design 12(1), 1998).  The ``-CSC`` suffix in the
paper's table marks versions whose coding conflicts have already been
resolved — these rows are the *conflict-free* (hard) half of the benchmark.

We model the control as a Muller C-element pipeline whose first half carries
the instruction wave forward (stages ``f0..``) and whose second half carries
the result wave back (stages ``b0..``): a safe, consistent marked graph whose
markings are determined by their codes, i.e. it satisfies USC (and hence
CSC) — verified by the test suite against the explicit state graph.
Symmetric variants use equal halves; asymmetric variants give the forward
side one extra stage.
"""

from __future__ import annotations

from repro.models.scalable import muller_pipeline
from repro.stg.stg import STG


def counterflow_pipeline(stages: int = 3, symmetric: bool = True) -> STG:
    """Build a counterflow pipeline control with ``stages`` stages per side.

    * symmetric:  ``2 * stages`` Muller stages (``f0..f{n-1} b0..b{n-1}``);
    * asymmetric: ``2 * stages + 1`` stages (forward side one longer).
    """
    if stages < 2:
        raise ValueError("need at least 2 stages per side")
    forward = stages if symmetric else stages + 1
    backward = stages
    names = [f"f{i}" for i in range(forward)] + [f"b{i}" for i in range(backward)]
    stg = muller_pipeline(forward + backward, signal_names=names)
    stg.net.name = f"cf-{'sym' if symmetric else 'asym'}-{stages}"
    return stg
