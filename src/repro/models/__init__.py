"""Benchmark STG models.

``vme_bus`` and ``vme_bus_csc_resolved`` are taken directly from the paper's
Figures 1-3.  The remaining Table 1 entries (ring adapters, duplex channels,
counterflow pipeline controllers) are reconstructions from the cited design
papers — structurally faithful stand-ins of comparable size and concurrency;
see DESIGN.md for the substitution rationale.

``TABLE1_BENCHMARKS`` maps each Table 1 problem name to a zero-argument
constructor, in the paper's row order.
"""

from repro.models.vme import vme_bus, vme_bus_csc_resolved
from repro.models.classic import (
    CLASSIC_MODELS,
    c_element,
    latch_controller,
    sr_latch,
    toggle,
)
from repro.models.ring import token_ring, lazy_ring
from repro.models.duplex import duplex_channel
from repro.models.counterflow import counterflow_pipeline
from repro.models.scalable import (
    muller_pipeline,
    muller_ring,
    parallel_forks,
    toggle_bank,
    vme_chain,
    service_ring,
)

TABLE1_BENCHMARKS = {
    "LAZYRING": lambda: lazy_ring(2),
    "RING": lambda: token_ring(3),
    "DUP-4PH-A": lambda: duplex_channel("4ph-a"),
    "DUP-4PH-B": lambda: duplex_channel("4ph-b"),
    "DUP-4PH-MTR-A": lambda: duplex_channel("4ph-mtr-a"),
    "DUP-4PH-MTR-B": lambda: duplex_channel("4ph-mtr-b"),
    "DUP-MOD-A": lambda: duplex_channel("mod-a"),
    "DUP-MOD-B": lambda: duplex_channel("mod-b"),
    "DUP-MOD-C": lambda: duplex_channel("mod-c"),
    "CF-SYM-A-CSC": lambda: counterflow_pipeline(2, symmetric=True),
    "CF-SYM-B-CSC": lambda: counterflow_pipeline(3, symmetric=True),
    "CF-SYM-C-CSC": lambda: counterflow_pipeline(4, symmetric=True),
    "CF-SYM-D-CSC": lambda: counterflow_pipeline(5, symmetric=True),
    "CF-ASYM-A-CSC": lambda: counterflow_pipeline(3, symmetric=False),
    "CF-ASYM-B-CSC": lambda: counterflow_pipeline(4, symmetric=False),
}

__all__ = [
    "vme_bus",
    "vme_bus_csc_resolved",
    "CLASSIC_MODELS",
    "c_element",
    "latch_controller",
    "sr_latch",
    "toggle",
    "token_ring",
    "lazy_ring",
    "duplex_channel",
    "counterflow_pipeline",
    "muller_pipeline",
    "muller_ring",
    "parallel_forks",
    "toggle_bank",
    "vme_chain",
    "service_ring",
    "TABLE1_BENCHMARKS",
]
