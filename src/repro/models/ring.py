"""Token ring adapter STGs (Table 1 rows RING and LAZYRING).

Reconstructions of the asynchronous token-ring arbiters of Carrion/Yakovlev
(CS-TR-562) and Low/Yakovlev (CS-TR-537): a token circulates between
stations; a station holding the token serves one request handshake and passes
the token on.

* :func:`token_ring` — plain service ring.  The quiescent states between
  stations all carry the all-zero code, so the STG has **USC conflicts but no
  CSC conflict** (only input edges are enabled in quiescent states).
* :func:`lazy_ring` — each station is a full VME-style bus controller and the
  token is passed at the end of a station's cycle.  The VME CSC conflict
  survives inside each station, so the STG has genuine **CSC conflicts**.
"""

from __future__ import annotations

from repro.models._build import connect, seq
from repro.stg.stg import STG


def token_ring(stations: int = 3) -> STG:
    """A ring of ``stations`` request/grant stations served in token order.

    Station ``i`` has input ``r{i}`` (request) and output ``g{i}`` (grant);
    the token moves from station ``i`` to ``i+1`` when ``g{i}-`` fires.
    """
    if stations < 2:
        raise ValueError("a ring needs at least 2 stations")
    stg = STG(
        f"ring{stations}",
        inputs=[f"r{i}" for i in range(stations)],
        outputs=[f"g{i}" for i in range(stations)],
    )
    for i in range(stations):
        seq(stg, f"r{i}+", f"g{i}+", f"r{i}-", f"g{i}-")
    for i in range(stations):
        nxt = (i + 1) % stations
        # token passing: the place <g{i}-, r{nxt}+> holds the ring token
        connect(stg, f"g{i}-", f"r{nxt}+", marked=(nxt == 0))
    return stg


def lazy_ring(stations: int = 2) -> STG:
    """A ring of VME-style stations; the token doubles as the bus request.

    Station ``i`` carries the five VME signals suffixed with ``{i}``; the
    ``dtack{i}-`` edge hands the token to station ``i+1`` (raising its
    ``dsr``).  Each station retains the classic VME CSC conflict because the
    local device release (``lds-``/``ldtack-``) runs concurrently with the
    token leaving the station.
    """
    if stations < 1:
        raise ValueError("need at least 1 station")
    stg = STG(
        f"lazyring{stations}",
        inputs=[f"dsr{i}" for i in range(stations)]
        + [f"ldtack{i}" for i in range(stations)],
        outputs=[f"dtack{i}" for i in range(stations)]
        + [f"lds{i}" for i in range(stations)]
        + [f"d{i}" for i in range(stations)],
    )
    for i in range(stations):
        seq(
            stg,
            f"dsr{i}+",
            f"lds{i}+",
            f"ldtack{i}+",
            f"d{i}+",
            f"dtack{i}+",
            f"dsr{i}-",
            f"d{i}-",
        )
        seq(stg, f"d{i}-", f"lds{i}-", f"ldtack{i}-")
        seq(stg, f"ldtack{i}-", f"lds{i}+", marked=True)
        seq(stg, f"d{i}-", f"dtack{i}-")
    for i in range(stations):
        nxt = (i + 1) % stations
        # the token: station i's recovery enables the next station's request
        connect(stg, f"dtack{i}-", f"dsr{nxt}+", marked=(nxt == 0))
    return stg
