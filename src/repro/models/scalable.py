"""Scalable STG families for the growth benchmarks (full-version examples).

These stand in for the "scalable examples" of the paper's technical-report
companion: families whose state space grows exponentially while the unfolding
prefix grows polynomially (or linearly), exposing the crossover between
state-graph methods and the unfolding/IP method.

* :func:`muller_pipeline` — an n-stage Muller C-element pipeline (classic
  conflict-free, highly sequential wave behaviour);
* :func:`muller_ring` — a closed ring of Muller stages carrying one or more
  request waves (the substrate of the counterflow models);
* :func:`parallel_forks` — a master handshake forking n concurrent worker
  handshakes with per-worker completion flags (exponential state space,
  linear prefix);
* :func:`vme_chain` — n VME-style stations in a ring, each contributing a
  genuine CSC conflict (the scalable conflict-carrying family);
* :func:`service_ring` — alias of the plain token ring (scalable USC-conflict
  family).
"""

from __future__ import annotations

from repro.models._build import connect, seq
from repro.models.ring import lazy_ring, token_ring
from repro.stg.stg import STG


def muller_pipeline(stages: int = 3, signal_names=None) -> STG:
    """An ``stages``-long Muller C-element pipeline with a left environment.

    Signals: input ``r`` (left request) and outputs ``c1..cn`` (or
    ``signal_names``).  Stage ``i`` rises once the previous stage is set and
    the next stage is reset, and falls once the previous stage is reset and
    the next stage is set — the textbook C-element behaviour rendered as a
    marked graph.  The net is safe, consistent and free of coding conflicts.
    """
    if stages < 1:
        raise ValueError("need at least 1 stage")
    if signal_names is None:
        signal_names = [f"c{i}" for i in range(1, stages + 1)]
    if len(signal_names) != stages:
        raise ValueError("signal_names must have one name per stage")
    stg = STG(
        f"muller{stages}",
        inputs=["r"],
        outputs=list(signal_names),
    )

    def name(i: int) -> str:
        return "r" if i == 0 else signal_names[i - 1]

    # left environment handshake with stage 1
    seq(stg, "r+", f"{name(1)}+")
    for i in range(1, stages + 1):
        prev, cur = name(i - 1), name(i)
        if i > 1:
            connect(stg, f"{prev}+", f"{cur}+")          # A_i: request forward
        connect(stg, f"{prev}-", f"{cur}-")              # C_i: reset forward
        if i < stages:
            nxt = name(i + 1)
            connect(stg, f"{nxt}-", f"{cur}+", marked=True)  # B_i: next reset
            connect(stg, f"{nxt}+", f"{cur}-")               # D_i: next set
        else:
            # right boundary: alternation of the last stage is enforced by a
            # marked self-cycle standing in for an eager right environment
            connect(stg, f"{cur}-", f"{cur}+", marked=True)
            connect(stg, f"{cur}+", f"{cur}-")
    # environment: r- after c1+, r+ after c1- (token: env may start)
    connect(stg, f"{name(1)}+", "r-")
    connect(stg, f"{name(1)}-", "r+", marked=True)
    return stg


def muller_ring(stages: int, waves: int = 1, signal_names=None) -> STG:
    """A closed ring of ``stages`` Muller C-elements carrying ``waves`` waves.

    All signals are outputs (the system is autonomous).  A *wave* is a
    rising edge travelling around the ring followed by its trailing reset;
    wave ``w`` starts at stage ``w * stages // waves``.
    """
    if stages < 3:
        raise ValueError("a Muller ring needs at least 3 stages")
    if not 1 <= waves < stages:
        raise ValueError("need 1 <= waves < stages")
    if signal_names is None:
        signal_names = [f"c{i}" for i in range(stages)]
    if len(signal_names) != stages:
        raise ValueError("signal_names must have one name per stage")
    stg = STG(f"mring{stages}x{waves}", outputs=list(signal_names))
    starts = {w * stages // waves for w in range(waves)}
    for i in range(stages):
        cur = signal_names[i]
        prev = signal_names[(i - 1) % stages]
        nxt = signal_names[(i + 1) % stages]
        # A_i: request forward; marked where a wave is about to enter stage i
        connect(stg, f"{prev}+", f"{cur}+", marked=(i in starts))
        # B_i: next stage reset; marked unless the wave entering stage i+1
        # has already spent that stage's bubble (keeps the net safe)
        connect(stg, f"{nxt}-", f"{cur}+", marked=((i + 1) % stages not in starts))
        # C_i: reset forward; marked where the previous reset wave ended
        connect(stg, f"{prev}-", f"{cur}-", marked=(i in starts))
        # D_i: next stage set
        connect(stg, f"{nxt}+", f"{cur}-")
    return stg


def parallel_forks(workers: int = 3) -> STG:
    """A master handshake forking ``workers`` concurrent worker handshakes.

    The master raises ``rm``; each worker ``i`` runs a four-phase handshake
    ``rw{i}+ aw{i}+ rw{i}- aw{i}-`` concurrently, raising its completion
    flag ``dw{i}`` in the middle of the handshake (after the acknowledge,
    before the return-to-zero) so that a finished worker is never
    code-identical to an unstarted one; when all flags are up the master
    acknowledges (``am+``), the flags are cleared concurrently, and the
    cycle restarts.  The flags keep the code unambiguous, so the family is
    conflict-free while its state space grows exponentially in ``workers``.
    """
    if workers < 1:
        raise ValueError("need at least 1 worker")
    stg = STG(
        f"parfork{workers}",
        inputs=["rm"] + [f"aw{i}" for i in range(workers)],
        outputs=["am"] + [f"rw{i}" for i in range(workers)]
        + [f"dw{i}" for i in range(workers)],
    )
    for i in range(workers):
        seq(
            stg,
            "rm+",
            f"rw{i}+",
            f"aw{i}+",
            f"dw{i}+",
            f"rw{i}-",
            f"aw{i}-",
            "am+",
        )
        seq(stg, "am+", f"dw{i}-", "am-")
    seq(stg, "am+", "rm-", "am-")
    seq(stg, "am-", "rm+", marked=True)
    return stg


def toggle_bank(lines: int = 3) -> STG:
    """``lines`` independent toggle signals — the statically decidable family.

    Each signal cycles ``t{i}+ t{i}-`` on its own two-place loop, so every
    place sits between the two edges of one signal and the marking is an
    affine function of the code.  The state space is exponential in
    ``lines`` (all interleavings), yet ``repro.lint``'s affine-code
    pre-filter (rule C301) certifies USC/CSC without any search — the
    family exercises the engine's static short-circuit path.
    """
    if lines < 1:
        raise ValueError("need at least 1 line")
    stg = STG(f"toggles{lines}", outputs=[f"t{i}" for i in range(lines)])
    for i in range(lines):
        connect(stg, f"t{i}+", f"t{i}-")
        connect(stg, f"t{i}-", f"t{i}+", marked=True)
    return stg


def vme_chain(stations: int = 2) -> STG:
    """Scalable CSC-conflict family: a ring of VME bus controllers."""
    return lazy_ring(stations)


def service_ring(stations: int = 4) -> STG:
    """Scalable USC-conflict family: the plain token ring."""
    return token_ring(stations)
