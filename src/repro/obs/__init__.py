"""``repro.obs`` — dependency-free tracing, metrics and profiling.

The observability layer every other subsystem reports into: nested
wall-clock **spans**, monotonic **counters**, **gauges**, and accumulating
**timers**, collected in a thread-safe in-memory registry and exportable as
JSON or JSONL (docs/observability.md documents the span taxonomy, the
counter catalogue and the trace schema).

The module-level functions operate on one process-wide default
:class:`Tracer`, which is **disabled** by default — every instrumented call
site in the unfolder, the solvers and the engine is a guarded no-op until
``repro-stg profile``, ``--trace-out``, the benchmark harness, or the
``REPRO_TRACE`` environment variable switches it on:

    from repro import obs

    with obs.trace("unfold.possible_extensions"):
        ...
    obs.incr("unfold.events")
    obs.gauge_max("unfold.queue_peak", len(queue))

Overhead contract: with tracing disabled every helper here returns after a
single boolean test; hot loops guard on :func:`enabled` so the disabled
cost of the whole subsystem is one attribute check per instrumented
operation.  ``repro-stg check`` timings with the tracer off are required to
stay within noise of the pre-instrumentation build (see the acceptance
tests in tests/obs/).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.export import (
    TRACE_SCHEMA,
    iter_jsonl_records,
    read_jsonl,
    to_json,
    write_jsonl,
)
from repro.obs.tracer import (
    PHASE_PREFIXES,
    Span,
    Stopwatch,
    Tracer,
    phase_times_from,
)

__all__ = [
    "Tracer",
    "Span",
    "Stopwatch",
    "PHASE_PREFIXES",
    "TRACE_SCHEMA",
    "get_tracer",
    "set_tracer",
    "enabled",
    "enable_tracing",
    "disable_tracing",
    "reset",
    "trace",
    "event",
    "incr",
    "gauge",
    "gauge_max",
    "add_time",
    "timed",
    "stopwatch",
    "snapshot",
    "phase_times",
    "phase_times_from",
    "to_json",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl_records",
]

#: The process-wide default tracer (disabled unless REPRO_TRACE is set).
_default = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer instance."""
    return _default


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the default tracer (tests); returns the previous one."""
    global _default
    previous, _default = _default, tracer
    return previous


def enabled() -> bool:
    return _default.enabled


def enable_tracing() -> None:
    _default.enable()


def disable_tracing() -> None:
    _default.disable()


def reset() -> None:
    _default.reset()


def trace(name: str):
    """``with obs.trace("subsystem.operation"): ...``"""
    return _default.span(name)


def event(name: str) -> None:
    _default.event(name)


def incr(name: str, amount: int = 1) -> None:
    _default.incr(name, amount)


def gauge(name: str, value: float) -> None:
    _default.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    _default.gauge_max(name, value)


def add_time(name: str, seconds: float, calls: int = 1) -> None:
    _default.add_time(name, seconds, calls)


def timed(name: str):
    return _default.timed(name)


def stopwatch(name: Optional[str] = None) -> Stopwatch:
    return _default.stopwatch(name)


def snapshot() -> Dict[str, object]:
    return _default.snapshot()


def phase_times() -> Dict[str, float]:
    return _default.phase_times()
