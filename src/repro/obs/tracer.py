"""The tracer: nested spans, counters, gauges and accumulating timers.

Four instrument kinds, all named ``subsystem.operation`` (the taxonomy is
catalogued in docs/observability.md):

* **spans** — wall-clock intervals with nesting (``with tracer.span("x")``),
  recorded on the monotonic :func:`time.perf_counter` clock; a span that
  never ends (exception, crash) is still closed by ``__exit__``;
* **counters** — monotonically increasing integers (events added, search
  nodes, cut-offs);
* **gauges** — last-written / high-water-mark floats (queue sizes);
* **timers** — ``(calls, total seconds)`` accumulators for operations far
  too frequent and too short to record a span each (MCC closure calls,
  SAT solver invocations).

Everything funnels into one thread-safe in-memory registry per
:class:`Tracer`.  The module keeps a process-wide default instance which is
**disabled** unless ``REPRO_TRACE`` is set in the environment or a caller
(the ``repro-stg profile`` command, ``--trace-out``, the benchmark harness)
enables it explicitly.

Overhead contract: while disabled, every public entry point returns after a
single attribute test — no locks, no allocation, no clock reads.  Hot inner
loops additionally guard their call sites on ``tracer.enabled`` so that the
disabled cost is one boolean check (see docs/observability.md for the
measured numbers).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "PHASE_PREFIXES",
    "phase_times_from",
]

#: Canonical phase -> span/timer name prefixes folded into it.  The profile
#: table and ``EngineStats.report()`` aggregate over these; names outside
#: every phase (``engine.*``, ``profile.*``, point events) count toward no
#: phase but still appear in traces.
PHASE_PREFIXES: Dict[str, Tuple[str, ...]] = {
    "parse": ("parse.",),
    "unfold": ("unfold.",),
    "closure": ("closure.",),
    "solver": ("search.", "ilp.", "sat.", "lp."),
    "refine": ("refine.",),
    "lint": ("lint.",),
    "analysis": ("analysis.",),
    "fuzz": ("fuzz.",),
}


@dataclass
class Span:
    """One completed (or point) wall-clock interval."""

    span_id: int
    name: str
    start: float                 # perf_counter seconds
    end: float                   # == start for point events
    parent_id: Optional[int]     # enclosing span on the same thread
    thread: int                  # threading.get_ident()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "span",
            "id": self.span_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "parent": self.parent_id,
            "thread": self.thread,
        }


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _LiveSpan:
    """An open span; closes itself on ``__exit__`` even under exceptions."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self.name = name

    def __enter__(self) -> "_LiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = tracer._next_id()
        stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tracer._record_span(
            Span(
                span_id=self.span_id,
                name=self.name,
                start=self.start,
                end=end,
                parent_id=self.parent_id,
                thread=threading.get_ident(),
            )
        )
        return False


class Stopwatch:
    """A plain perf_counter stopwatch (the benchmark-harness timing primitive).

    Unlike spans, a stopwatch always measures — it is how the bench modules
    time method runs whether or not tracing is enabled.  When the owning
    tracer *is* enabled and a ``name`` was given, the reading is also folded
    into that tracer's timer registry so traced bench runs carry their
    phase attribution.
    """

    __slots__ = ("_tracer", "name", "start", "seconds")

    def __init__(self, tracer: Optional["Tracer"] = None, name: Optional[str] = None):
        self._tracer = tracer
        self.name = name
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.seconds = time.perf_counter() - self.start
        if self._tracer is not None and self.name and self._tracer.enabled:
            self._tracer.add_time(self.name, self.seconds)
        return False


class Tracer:
    """A thread-safe registry of spans, counters, gauges and timers."""

    def __init__(self, enabled: Optional[bool] = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0")
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id = 0
        self.spans: List[Span] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: name -> (calls, total seconds)
        self.timers: Dict[str, Tuple[int, float]] = {}

    # -- lifecycle ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded data (the enabled flag is left alone)."""
        with self._lock:
            self.spans = []
            self.counters = {}
            self.gauges = {}
            self.timers = {}
            self._id = 0
        self._local = threading.local()

    # -- span plumbing --------------------------------------------------------

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _record_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    # -- public instruments ---------------------------------------------------

    def span(self, name: str):
        """``with tracer.span("unfold.run"): ...`` — no-op while disabled."""
        if not self.enabled:
            return _NOOP
        return _LiveSpan(self, name)

    def event(self, name: str) -> None:
        """Record a zero-duration point span (engine telemetry markers)."""
        if not self.enabled:
            return
        stack = self._stack()
        now = time.perf_counter()
        self._record_span(
            Span(
                span_id=self._next_id(),
                name=name,
                start=now,
                end=now,
                parent_id=stack[-1] if stack else None,
                thread=threading.get_ident(),
            )
        )

    def incr(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Last-value-wins gauge."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """High-water-mark gauge."""
        if not self.enabled:
            return
        with self._lock:
            if value > self.gauges.get(name, float("-inf")):
                self.gauges[name] = value

    def add_time(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold ``seconds`` into the accumulating timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            count, total = self.timers.get(name, (0, 0.0))
            self.timers[name] = (count + calls, total + seconds)

    def timed(self, name: str):
        """Context manager accumulating its duration into timer ``name``."""
        if not self.enabled:
            return _NOOP
        return _TimedBlock(self, name)

    def stopwatch(self, name: Optional[str] = None) -> Stopwatch:
        """An always-measuring stopwatch (see :class:`Stopwatch`)."""
        return Stopwatch(self, name)

    # -- aggregation ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy of everything recorded so far."""
        with self._lock:
            return {
                "schema": "repro-trace/1",
                "spans": [span.to_dict() for span in self.spans],
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timers": {
                    name: {"calls": calls, "seconds": seconds}
                    for name, (calls, seconds) in self.timers.items()
                },
            }

    def phase_times(self) -> Dict[str, float]:
        """Aggregate span durations + timer totals into the canonical phases.

        Every phase of :data:`PHASE_PREFIXES` is always present (0.0 when
        nothing was recorded), plus ``total`` — the summed duration of root
        spans (spans with no parent), which is the end-to-end wall time when
        the instrumented run sat under one or more top-level spans.
        """
        with self._lock:
            spans = list(self.spans)
            timers = dict(self.timers)
        return phase_times_from(spans, timers)


class _TimedBlock:
    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: Tracer, name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_TimedBlock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer.add_time(self._name, time.perf_counter() - self._start)
        return False


def phase_times_from(
    spans: List[Span], timers: Dict[str, Tuple[int, float]]
) -> Dict[str, float]:
    """The phase aggregation used by :meth:`Tracer.phase_times`.

    Spans and timers are folded by name prefix; nested spans whose names map
    to *different* phases never double-count inside one phase, and the
    ``total`` row is computed from root spans only, so it is not inflated by
    nesting either.
    """
    phases: Dict[str, float] = {phase: 0.0 for phase in PHASE_PREFIXES}
    phases["total"] = 0.0

    def phase_of(name: str) -> Optional[str]:
        for phase, prefixes in PHASE_PREFIXES.items():
            if name.startswith(prefixes):
                return phase
        return None

    # span time counts toward a phase only at the outermost span *of that
    # phase* (an unfold.* span nested inside another unfold.* span would
    # otherwise be counted twice)
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        phase = phase_of(span.name)
        if phase is None:
            continue
        parent = span.parent_id
        shadowed = False
        while parent is not None:
            ancestor = by_id.get(parent)
            if ancestor is None:
                break
            if phase_of(ancestor.name) == phase:
                shadowed = True
                break
            parent = ancestor.parent_id
        if not shadowed:
            phases[phase] += span.duration
    for name, (_calls, seconds) in timers.items():
        phase = phase_of(name)
        if phase is not None:
            phases[phase] += seconds
    phases["total"] = sum(
        span.duration for span in spans if span.parent_id is None
    )
    return phases
