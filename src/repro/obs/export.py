"""JSON / JSONL exporters for :class:`repro.obs.Tracer` registries.

Two interchange formats, both documented in docs/observability.md:

* **JSON** — :func:`to_json` dumps one ``repro-trace/1`` document (the
  :meth:`~repro.obs.tracer.Tracer.snapshot` dictionary) — handy for tests
  and for embedding a trace into a larger report;
* **JSONL** — :func:`write_jsonl` streams one record per line: a ``meta``
  header first, then every span/counter/gauge/timer.  Line-oriented so a
  partial file (crashed run) is still parseable up to the crash point, and
  so traces from long batch runs can be processed without loading them
  whole.  :func:`read_jsonl` round-trips the file back into a snapshot-
  shaped dictionary.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from repro.obs.tracer import Tracer

#: Schema tag stamped on every exported trace (bump on breaking change).
TRACE_SCHEMA = "repro-trace/1"


def to_json(tracer: Tracer, indent: int = 2) -> str:
    """The whole registry as one JSON document."""
    return json.dumps(tracer.snapshot(), indent=indent)


def iter_jsonl_records(tracer: Tracer) -> List[Dict[str, object]]:
    """The flat record list of the JSONL export (header first)."""
    snapshot = tracer.snapshot()
    records: List[Dict[str, object]] = [
        {
            "kind": "meta",
            "schema": TRACE_SCHEMA,
            "spans": len(snapshot["spans"]),          # type: ignore[arg-type]
            "counters": len(snapshot["counters"]),    # type: ignore[arg-type]
        }
    ]
    records.extend(snapshot["spans"])  # type: ignore[arg-type]
    for name, value in sorted(snapshot["counters"].items()):  # type: ignore[union-attr]
        records.append({"kind": "counter", "name": name, "value": value})
    for name, value in sorted(snapshot["gauges"].items()):  # type: ignore[union-attr]
        records.append({"kind": "gauge", "name": name, "value": value})
    for name, payload in sorted(snapshot["timers"].items()):  # type: ignore[union-attr]
        records.append(
            {
                "kind": "timer",
                "name": name,
                "calls": payload["calls"],
                "seconds": payload["seconds"],
            }
        )
    return records


def write_jsonl(tracer: Tracer, destination: Union[str, IO[str]]) -> int:
    """Write the registry as JSON Lines; returns the number of records."""
    records = iter_jsonl_records(tracer)
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    else:
        for record in records:
            destination.write(json.dumps(record) + "\n")
    return len(records)


def read_jsonl(source: Union[str, IO[str]]) -> Dict[str, object]:
    """Parse a JSONL trace back into a snapshot-shaped dictionary.

    Raises :class:`ValueError` on a malformed line, a missing/foreign
    header, or an unknown record kind.
    """
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    records = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {number} is not JSON: {exc}") from exc
    if not records or records[0].get("kind") != "meta":
        raise ValueError("trace file has no meta header line")
    if records[0].get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"unsupported trace schema {records[0].get('schema')!r} "
            f"(expected {TRACE_SCHEMA})"
        )
    snapshot: Dict[str, object] = {
        "schema": TRACE_SCHEMA,
        "spans": [],
        "counters": {},
        "gauges": {},
        "timers": {},
    }
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "span":
            snapshot["spans"].append(record)  # type: ignore[union-attr]
        elif kind == "counter":
            snapshot["counters"][record["name"]] = record["value"]  # type: ignore[index]
        elif kind == "gauge":
            snapshot["gauges"][record["name"]] = record["value"]  # type: ignore[index]
        elif kind == "timer":
            snapshot["timers"][record["name"]] = {  # type: ignore[index]
                "calls": record["calls"],
                "seconds": record["seconds"],
            }
        else:
            raise ValueError(f"unknown trace record kind {kind!r}")
    return snapshot
