"""A generic 0-1 integer linear programming layer.

The paper observes that handing the conflict system (2)-(3) to a standard
solver "needs too much time even for STGs of moderate size" and motivates the
partial-order-aware search of Section 4.  This package provides that standard
baseline for the ablation benchmarks: a small modelling API (variables,
linear expressions, constraints) and a plain branch-and-bound solver with
activity-interval pruning but *no* knowledge of the unfolding's causality and
conflict relations.
"""

from repro.ilp.model import LinearExpr, Constraint, Problem
from repro.ilp.solver import BranchAndBoundSolver, SolverOptions

__all__ = [
    "LinearExpr",
    "Constraint",
    "Problem",
    "BranchAndBoundSolver",
    "SolverOptions",
]
