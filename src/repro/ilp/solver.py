"""Plain branch-and-bound over 0-1 variables with activity intervals.

This is the "standard solver" of the paper's comparison: depth-first search
assigning variables in index order, pruning a node as soon as some
constraint's reachable activity interval excludes feasibility.  It knows
nothing about the unfolding structure — compatibility has to be supplied as
explicit marking-equation constraints, which is exactly what makes it slow
relative to the Section 4 algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import SolverLimitError
from repro.ilp.model import Constraint, Problem
from repro.obs import get_tracer


@dataclass
class SolverOptions:
    node_budget: Optional[int] = None
    variable_order: Optional[Sequence[int]] = None


@dataclass
class SolverStats:
    nodes: int = 0
    solutions: int = 0
    pruned: int = 0


class BranchAndBoundSolver:
    """Depth-first 0-1 feasibility enumeration with interval pruning."""

    def __init__(self, problem: Problem, options: Optional[SolverOptions] = None):
        self.problem = problem
        self.options = options or SolverOptions()
        self.stats = SolverStats()
        order = list(self.options.variable_order or range(problem.num_vars))
        if sorted(order) != list(range(problem.num_vars)):
            raise ValueError("variable_order must be a permutation of all vars")
        self.order = order
        # position of each variable in the branching order
        position = [0] * problem.num_vars
        for i, var in enumerate(order):
            position[var] = i
        # per-constraint: coefficient per branching position + residual tails
        self._coeffs: List[List[int]] = []
        self._pos_tail: List[List[int]] = []
        self._neg_tail: List[List[int]] = []
        n = problem.num_vars
        for constraint in problem.constraints:
            row = [0] * n
            for var, coeff in constraint.expr.coeffs.items():
                row[position[var]] = coeff
            pos_tail = [0] * (n + 1)
            neg_tail = [0] * (n + 1)
            for i in range(n - 1, -1, -1):
                pos_tail[i] = pos_tail[i + 1] + (row[i] if row[i] > 0 else 0)
                neg_tail[i] = neg_tail[i + 1] + (row[i] if row[i] < 0 else 0)
            self._coeffs.append(row)
            self._pos_tail.append(pos_tail)
            self._neg_tail.append(neg_tail)

    # -- public API -----------------------------------------------------------

    def solve(self) -> Optional[List[int]]:
        """The first feasible assignment, or None."""
        for solution in self.solutions():
            return solution
        return None

    def solutions(self) -> Iterator[List[int]]:
        """All feasible assignments, lazily.

        When tracing is enabled, the total wall time from the first pull to
        generator exit is recorded under the ``ilp.search`` timer (this
        includes any caller work between pulls) and the run's node/solution/
        prune deltas under the ``ilp.*`` counters.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            yield from self._solutions()
            return
        started = perf_counter()
        nodes0 = self.stats.nodes
        solutions0 = self.stats.solutions
        pruned0 = self.stats.pruned
        try:
            yield from self._solutions()
        finally:
            tracer.add_time("ilp.search", perf_counter() - started)
            tracer.incr("ilp.nodes", self.stats.nodes - nodes0)
            tracer.incr("ilp.solutions", self.stats.solutions - solutions0)
            tracer.incr("ilp.pruned", self.stats.pruned - pruned0)

    def _solutions(self) -> Iterator[List[int]]:
        n = self.problem.num_vars
        values = [c.expr.const for c in self.problem.constraints]
        assignment = [0] * n
        yield from self._descend(0, assignment, values)

    # -- search ---------------------------------------------------------------

    def _feasible(self, values: List[int], index: int) -> bool:
        for k, constraint in enumerate(self.problem.constraints):
            low = values[k] + self._neg_tail[k][index]
            high = values[k] + self._pos_tail[k][index]
            if constraint.sense == "<=" and low > 0:
                return False
            if constraint.sense == ">=" and high < 0:
                return False
            if constraint.sense == "==" and not (low <= 0 <= high):
                return False
        return True

    def _descend(
        self, index: int, assignment: List[int], values: List[int]
    ) -> Iterator[List[int]]:
        self.stats.nodes += 1
        budget = self.options.node_budget
        if budget is not None and self.stats.nodes > budget:
            raise SolverLimitError(f"ILP solver exceeded node budget {budget}")
        if not self._feasible(values, index):
            self.stats.pruned += 1
            return
        if index == self.problem.num_vars:
            self.stats.solutions += 1
            yield list(assignment)
            return
        var = self.order[index]
        for value in (0, 1):
            assignment[var] = value
            if value:
                new_values = [
                    v + row[index] for v, row in zip(values, self._coeffs)
                ]
            else:
                new_values = values
            yield from self._descend(index + 1, assignment, new_values)
        assignment[var] = 0
