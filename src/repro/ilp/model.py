"""Modelling layer: linear expressions and constraint systems over 0-1 vars.

Kept deliberately small — just what the paper's constraint systems need:
integer-coefficient linear expressions, the three comparison senses, and a
problem container with named variables for debuggability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class LinearExpr:
    """An integer-coefficient linear expression ``const + sum c_i * x_i``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[Mapping[int, int]] = None, const: int = 0):
        self.coeffs: Dict[int, int] = {
            v: c for v, c in (coeffs or {}).items() if c != 0
        }
        self.const = const

    @classmethod
    def term(cls, var: int, coeff: int = 1) -> "LinearExpr":
        return cls({var: coeff})

    @classmethod
    def constant(cls, value: int) -> "LinearExpr":
        return cls(const=value)

    def __add__(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + coeff
        return LinearExpr(coeffs, self.const + other.const)

    def __sub__(self, other: "LinearExpr") -> "LinearExpr":
        return self + other.scale(-1)

    def scale(self, factor: int) -> "LinearExpr":
        return LinearExpr(
            {v: c * factor for v, c in self.coeffs.items()}, self.const * factor
        )

    def evaluate(self, assignment: Sequence[int]) -> int:
        return self.const + sum(
            coeff * assignment[var] for var, coeff in self.coeffs.items()
        )

    def __repr__(self) -> str:
        parts = [f"{c}*x{v}" for v, c in sorted(self.coeffs.items())]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class Constraint:
    """``expr (sense) 0`` with sense in {'<=', '>=', '=='} (rhs folded in)."""

    expr: LinearExpr
    sense: str

    def __post_init__(self):
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {self.sense!r}")

    def satisfied(self, assignment: Sequence[int]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.sense == "<=":
            return value <= 0
        if self.sense == ">=":
            return value >= 0
        return value == 0

    @classmethod
    def build(cls, expr: LinearExpr, sense: str, rhs: int = 0) -> "Constraint":
        return cls(expr - LinearExpr.constant(rhs), sense)


@dataclass
class Problem:
    """A 0-1 feasibility problem (no objective — the paper's systems are
    pure satisfaction problems solved to the first solution)."""

    num_vars: int
    constraints: List[Constraint] = field(default_factory=list)
    names: List[str] = field(default_factory=list)

    def add(self, constraint: Constraint) -> None:
        for var in constraint.expr.coeffs:
            if not 0 <= var < self.num_vars:
                raise ValueError(f"constraint references unknown variable {var}")
        self.constraints.append(constraint)

    def fix_zero(self, var: int) -> None:
        """The paper's cut-off constraint: pin a variable to 0."""
        self.add(Constraint.build(LinearExpr.term(var), "==", 0))

    def name_of(self, var: int) -> str:
        if var < len(self.names):
            return self.names[var]
        return f"x{var}"

    def check(self, assignment: Sequence[int]) -> bool:
        if len(assignment) != self.num_vars:
            raise ValueError("assignment length mismatch")
        return all(c.satisfied(assignment) for c in self.constraints)
