"""Logic synthesis from STGs — step (c) of the paper's synthesis flow.

Once USC/CSC hold, each non-input signal's next-state function is a
well-defined boolean function of the state code; this package derives those
functions from the state graph, minimises them (Quine-McCluskey prime
generation plus a greedy/essential cover step), renders complex-gate and
generalised-C-element (set/reset) implementations, and ties unateness of the
covers back to the paper's normalcy property.

It also provides automatic CSC conflict *resolution* by state-signal
insertion (step (b) of the flow), validated end-to-end by the library's own
checkers — the transformation the paper's Figure 3 performs by hand.
"""

from repro.synthesis.boolean import Cube, Cover, minimise
from repro.synthesis.functions import (
    NextStateFunction,
    derive_next_state_functions,
)
from repro.synthesis.equations import (
    SignalImplementation,
    synthesise,
    SynthesisResult,
)
from repro.synthesis.resolution import resolve_csc, CSCResolution

__all__ = [
    "Cube",
    "Cover",
    "minimise",
    "NextStateFunction",
    "derive_next_state_functions",
    "SignalImplementation",
    "synthesise",
    "SynthesisResult",
    "resolve_csc",
    "CSCResolution",
]
