"""Deriving next-state functions from the state graph.

For a CSC-satisfying STG, each non-input signal ``z`` has a well-defined
boolean next-state function ``Nxt_z`` of the state code: the on-set are the
codes of states with ``Nxt_z = 1``, the off-set those with ``Nxt_z = 0``,
and every unreachable code is a don't-care.  A CSC violation w.r.t. ``z``
surfaces here as a code in both sets — this module reports it precisely,
giving an independent (state-based) characterisation of CSC used by the test
suite to cross-check the unfolding/IP verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ReproError
from repro.stg.stategraph import StateGraph, build_state_graph
from repro.stg.stg import STG


class CSCViolationError(ReproError):
    """A next-state function is ill-defined: some code requires both values."""

    def __init__(self, signal: str, code: Tuple[int, ...]):
        super().__init__(
            f"signal {signal!r} has conflicting next-state values at code "
            f"{''.join(map(str, code))} (CSC violation)"
        )
        self.signal = signal
        self.code = code


@dataclass
class NextStateFunction:
    """The truth table of ``Nxt_z`` over the signal variables.

    Minterms encode codes with signal ``i`` on bit ``i`` (the STG's signal
    order).  ``ambiguous`` lists codes demanded both 0 and 1 — non-empty
    exactly when the STG has a CSC conflict involving ``z``.
    """

    signal: str
    num_vars: int
    on_set: Set[int] = field(default_factory=set)
    off_set: Set[int] = field(default_factory=set)
    ambiguous: Set[int] = field(default_factory=set)

    @property
    def well_defined(self) -> bool:
        return not self.ambiguous

    @property
    def dc_set(self) -> Set[int]:
        universe = set(range(1 << self.num_vars))
        return universe - self.on_set - self.off_set - self.ambiguous

    def value_at(self, code: int) -> Optional[int]:
        if code in self.on_set:
            return 1
        if code in self.off_set:
            return 0
        return None


def _code_to_minterm(code: Sequence[int]) -> int:
    minterm = 0
    for i, bit in enumerate(code):
        if bit:
            minterm |= 1 << i
    return minterm


def derive_next_state_functions(
    stg: STG,
    state_graph: Optional[StateGraph] = None,
    signals: Optional[List[str]] = None,
    strict: bool = True,
) -> Dict[str, NextStateFunction]:
    """Build ``Nxt_z`` truth tables for the requested non-input signals.

    ``strict=True`` raises :class:`CSCViolationError` on the first
    ill-defined function; ``strict=False`` records the ambiguity instead
    (useful for diagnosing which signals are implicated in a conflict).
    """
    if state_graph is None:
        state_graph = build_state_graph(stg)
    targets = signals if signals is not None else list(stg.non_input_signals)
    num_vars = len(stg.signals)
    functions = {
        z: NextStateFunction(signal=z, num_vars=num_vars) for z in targets
    }
    for state in range(state_graph.num_states):
        code = state_graph.code(state)
        minterm = _code_to_minterm(code)
        for z in targets:
            value = state_graph.next_state_vector(state, z)
            fn = functions[z]
            if minterm in fn.ambiguous:
                continue
            if value and minterm in fn.off_set or not value and minterm in fn.on_set:
                if strict:
                    raise CSCViolationError(z, code)
                fn.on_set.discard(minterm)
                fn.off_set.discard(minterm)
                fn.ambiguous.add(minterm)
                continue
            (fn.on_set if value else fn.off_set).add(minterm)
    return functions


def csc_conflict_signals(stg: STG, state_graph: Optional[StateGraph] = None) -> List[str]:
    """The non-input signals whose next-state functions are ill-defined —
    empty iff the STG satisfies CSC (state-based characterisation)."""
    functions = derive_next_state_functions(stg, state_graph, strict=False)
    return [z for z, fn in functions.items() if not fn.well_defined]
