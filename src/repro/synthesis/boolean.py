"""Two-level boolean minimisation: cubes, covers, Quine-McCluskey.

A *cube* over n variables assigns each variable 0, 1 or '-' (don't care);
a *cover* is a set of cubes whose union is the function's on-set.  The
minimiser is exact in its prime-generation phase (Quine-McCluskey) and uses
essential-prime extraction followed by a greedy set cover for the selection
phase — exact enough for STG-sized functions while staying simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Cube:
    """A product term: ``mask`` bits mark cared-about variables, ``values``
    their required values (subset of mask)."""

    mask: int
    values: int

    def __post_init__(self):
        if self.values & ~self.mask:
            raise ValueError("cube values outside its mask")

    @classmethod
    def from_minterm(cls, minterm: int, num_vars: int) -> "Cube":
        return cls((1 << num_vars) - 1, minterm)

    def contains(self, minterm: int) -> bool:
        return minterm & self.mask == self.values

    def covers_cube(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is a minterm of this cube."""
        return (
            self.mask & other.mask == self.mask
            and other.values & self.mask == self.values
        )

    def merge(self, other: "Cube") -> Optional["Cube"]:
        """Combine two cubes differing in exactly one cared literal."""
        if self.mask != other.mask:
            return None
        delta = self.values ^ other.values
        if delta.bit_count() != 1:
            return None
        new_mask = self.mask & ~delta
        return Cube(new_mask, self.values & new_mask)

    def literals(self, num_vars: int) -> List[Tuple[int, int]]:
        """The cube's literals as (variable, value) pairs."""
        result = []
        for v in range(num_vars):
            if (self.mask >> v) & 1:
                result.append((v, (self.values >> v) & 1))
        return result

    def to_string(self, names: Sequence[str]) -> str:
        parts = []
        for v, value in self.literals(len(names)):
            parts.append(names[v] if value else names[v] + "'")
        return " ".join(parts) if parts else "1"


class Cover:
    """A sum of cubes with evaluation and unateness queries."""

    def __init__(self, cubes: Iterable[Cube], num_vars: int):
        self.cubes: Tuple[Cube, ...] = tuple(cubes)
        self.num_vars = num_vars

    def evaluate(self, minterm: int) -> bool:
        return any(cube.contains(minterm) for cube in self.cubes)

    def literal_count(self) -> int:
        return sum(cube.mask.bit_count() for cube in self.cubes)

    def variables_used(self) -> Set[int]:
        used: Set[int] = set()
        for cube in self.cubes:
            for v in range(self.num_vars):
                if (cube.mask >> v) & 1:
                    used.add(v)
        return used

    def polarity_of(self, var: int) -> FrozenSet[int]:
        """The set of polarities (0/1) with which ``var`` appears."""
        polarities = set()
        for cube in self.cubes:
            if (cube.mask >> var) & 1:
                polarities.add((cube.values >> var) & 1)
        return frozenset(polarities)

    def is_unate(self) -> bool:
        """Every variable appears with a single polarity (syntactic
        unateness — the cover is implementable by a monotonic gate modulo
        input polarities; positive-unate in all variables means AND/OR
        network, cf. the paper's normalcy discussion)."""
        return all(len(self.polarity_of(v)) <= 1 for v in range(self.num_vars))

    def is_positive_unate(self) -> bool:
        return all(
            self.polarity_of(v) <= {1} for v in range(self.num_vars)
        )

    def to_string(self, names: Sequence[str]) -> str:
        if not self.cubes:
            return "0"
        return " + ".join(cube.to_string(names) for cube in self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __repr__(self) -> str:
        return f"Cover({len(self.cubes)} cubes over {self.num_vars} vars)"


def prime_implicants(
    on_set: Set[int], dc_set: Set[int], num_vars: int
) -> List[Cube]:
    """Quine-McCluskey prime generation over on-set ∪ dc-set."""
    current: Set[Cube] = {
        Cube.from_minterm(m, num_vars) for m in on_set | dc_set
    }
    primes: Set[Cube] = set()
    while current:
        merged: Set[Cube] = set()
        used: Set[Cube] = set()
        cubes = list(current)
        by_mask: Dict[int, List[Cube]] = {}
        for cube in cubes:
            by_mask.setdefault(cube.mask, []).append(cube)
        for group in by_mask.values():
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    combined = a.merge(b)
                    if combined is not None:
                        merged.add(combined)
                        used.add(a)
                        used.add(b)
        primes.update(current - used)
        current = merged
    return sorted(primes, key=lambda c: (c.mask.bit_count(), c.mask, c.values))


#: problem sizes up to which the covering step is solved exactly
_EXACT_COVER_LIMIT = 64


def minimise(on_set: Set[int], dc_set: Set[int], num_vars: int) -> Cover:
    """A minimal cover of ``on_set`` using ``dc_set`` freely.

    Exact prime implicants (Quine-McCluskey); essential primes first, then
    the residual covering problem is solved *exactly* by branch-and-bound
    when small (cyclic cover tables defeat plain greedy) and greedily
    otherwise.  Verified by tests to cover the on-set exactly and avoid the
    off-set.
    """
    if not on_set:
        return Cover([], num_vars)
    universe = (1 << num_vars) - 1
    if len(on_set | dc_set) == universe + 1:
        return Cover([Cube(0, 0)], num_vars)

    primes = prime_implicants(on_set, dc_set, num_vars)
    coverage: Dict[int, List[Cube]] = {
        m: [p for p in primes if p.contains(m)] for m in on_set
    }
    chosen: List[Cube] = []
    remaining = set(on_set)

    # essential primes: sole coverers of some minterm
    for minterm, coverers in coverage.items():
        if len(coverers) == 1 and coverers[0] not in chosen:
            chosen.append(coverers[0])
    for cube in chosen:
        remaining -= {m for m in remaining if cube.contains(m)}

    candidates = [p for p in primes if p not in chosen]
    if remaining:
        if len(candidates) <= _EXACT_COVER_LIMIT:
            chosen.extend(_exact_cover(remaining, candidates))
        else:
            chosen.extend(_greedy_cover(remaining, candidates))
    return Cover(chosen, num_vars)


def _greedy_cover(remaining: Set[int], candidates: List[Cube]) -> List[Cube]:
    remaining = set(remaining)
    candidates = list(candidates)
    picked: List[Cube] = []
    while remaining:
        best = max(
            candidates,
            key=lambda p: (
                sum(1 for m in remaining if p.contains(m)),
                -p.mask.bit_count(),
            ),
        )
        covered = {m for m in remaining if best.contains(m)}
        if not covered:
            raise RuntimeError("prime generation failed to cover the on-set")
        picked.append(best)
        candidates.remove(best)
        remaining -= covered
    return picked


def _exact_cover(remaining: Set[int], candidates: List[Cube]) -> List[Cube]:
    """Minimum-cardinality cover by branch-and-bound: branch on the coverers
    of the least-covered minterm, prune by the incumbent size."""
    best: List[Optional[List[Cube]]] = [None]

    def descend(uncovered: frozenset, picked: List[Cube]) -> None:
        if best[0] is not None and len(picked) >= len(best[0]):
            return
        if not uncovered:
            best[0] = list(picked)
            return
        target = min(
            uncovered,
            key=lambda m: sum(1 for p in candidates if p.contains(m)),
        )
        coverers = [p for p in candidates if p.contains(target)]
        if not coverers:
            raise RuntimeError("prime generation failed to cover the on-set")
        for cube in coverers:
            descend(
                frozenset(m for m in uncovered if not cube.contains(m)),
                picked + [cube],
            )

    descend(frozenset(remaining), [])
    assert best[0] is not None
    return best[0]


def cover_from_minterms(minterms: Set[int], num_vars: int) -> Cover:
    """The trivial (unminimised) cover: one full cube per minterm."""
    return Cover(
        [Cube.from_minterm(m, num_vars) for m in sorted(minterms)], num_vars
    )
