"""Automatic CSC conflict resolution by state-signal insertion — step (b).

The classical remedy for a CSC conflict is to insert a fresh internal signal
whose value distinguishes the conflicting states (the paper's Figure 3 does
this by hand for the VME controller).  This module automates a simple but
effective version:

* candidate insertions place ``csc+`` *in sequence after* one existing
  transition and ``csc-`` after another (transition splitting: the host
  transition's postset moves to the new signal transition, so all original
  orderings are preserved and safety/liveness are untouched);
* candidates are screened cheaply (consistency first), then validated with
  the library's own checkers: the result must be consistent, deadlock-free
  and satisfy CSC (USC is not required — the original VME resolution also
  leaves USC conflicts only if there were non-CSC ones, and none here);
* if one signal does not suffice, the procedure recurses with a second
  signal, up to ``max_signals``.

The search is exhaustive over ordered host pairs, so on the benchmark sizes
it finds the textbook resolutions (for the VME controller: ``csc+`` after
``dsr+`` and ``csc-`` after ``dsr-`` — the Figure 3 insertion up to the
concurrency-equivalent placement).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import check_csc
from repro.exceptions import ReproError
from repro.stg.consistency import is_consistent
from repro.stg.stg import STG, SignalEdge


@dataclass
class CSCResolution:
    """Outcome of :func:`resolve_csc`."""

    stg: STG                                  # the resolved STG
    insertions: List[Tuple[str, str, str]]    # (signal, after_plus, after_minus)

    def describe(self) -> str:
        return "; ".join(
            f"{signal}+ after {plus}, {signal}- after {minus}"
            for signal, plus, minus in self.insertions
        )


def _split_after(stg: STG, host: str, new_name: str, edge: SignalEdge) -> None:
    """Insert a new signal transition in sequence after ``host``:
    ``host``'s postset places move to the new transition."""
    net = stg.net
    host_index = net.transition_index(host)
    moved = list(net.postset(host_index).items())
    stg.add_transition(new_name, edge)
    # re-point the host's former output arcs through the new transition
    for place, weight in moved:
        place_name = net.place_name(place)
        net.remove_arc(host, place_name)
        for _ in range(weight):
            stg.add_arc(new_name, place_name)
    bridge = f"<{host},{new_name}>"
    stg.add_place(bridge)
    stg.add_arc(host, bridge)
    stg.add_arc(bridge, new_name)


def _insert_signal(
    stg: STG, signal: str, after_plus: str, after_minus: str
) -> STG:
    candidate = stg.copy(stg.name + "+" + signal)
    candidate.internal.append(signal)
    _split_after(candidate, after_plus, f"{signal}+", SignalEdge(signal, +1))
    _split_after(candidate, after_minus, f"{signal}-", SignalEdge(signal, -1))
    return candidate


def resolve_csc(
    stg: STG,
    max_signals: int = 2,
    signal_prefix: str = "csc",
    max_states: int = 100_000,
) -> CSCResolution:
    """Search for state-signal insertions establishing CSC.

    Raises :class:`ReproError` if no resolution within ``max_signals``
    freshly inserted signals is found.
    """
    report = check_csc(stg)
    if report.holds:
        return CSCResolution(stg=stg, insertions=[])
    if max_signals < 1:
        raise ReproError(
            "the STG has a CSC conflict but no insertions are allowed"
        )
    return _resolve(stg, [], 1, max_signals, signal_prefix, max_states)


def _resolve(
    stg: STG,
    insertions: List[Tuple[str, str, str]],
    depth: int,
    max_signals: int,
    prefix: str,
    max_states: int,
) -> CSCResolution:
    """Breadth-first over insertion depth: exhaust all single-insertion
    candidates before trying any pair, so minimal resolutions win."""
    from repro.core.reachability import check_deadlock

    signal = prefix if depth == 1 else f"{prefix}{depth}"
    transitions = [
        stg.net.transition_name(t) for t in range(stg.net.num_transitions)
    ]
    viable: List[Tuple[Tuple[str, str, str], STG]] = []
    for after_plus, after_minus in itertools.permutations(transitions, 2):
        candidate = _insert_signal(stg, signal, after_plus, after_minus)
        if not is_consistent(candidate, max_states=max_states):
            continue
        if check_deadlock(candidate) is not None:
            continue
        attempt = (signal, after_plus, after_minus)
        if check_csc(candidate).holds:
            return CSCResolution(stg=candidate, insertions=insertions + [attempt])
        viable.append((attempt, candidate))
    if depth < max_signals:
        for attempt, candidate in viable:
            try:
                return _resolve(
                    candidate,
                    insertions + [attempt],
                    depth + 1,
                    max_signals,
                    prefix,
                    max_states,
                )
            except ReproError:
                continue
    raise ReproError(
        f"no CSC resolution found with up to {max_signals} inserted signals"
    )
