"""Boolean equations and gate-style implementations for STG outputs.

Produces, per non-input signal:

* the **complex-gate** implementation: a minimised cover of ``Nxt_z`` over
  all signal variables (the form Petrify reports, e.g. the paper's
  ``csc = dsr (csc + ldtack')`` after factoring);
* the **generalised C-element** implementation: separate minimised *set*
  (``Nxt=1, z=0``) and *reset* (``Nxt=0, z=1``) covers;
* a **monotonicity verdict** linking back to Section 6: a unate complex-gate
  cover is implementable with a monotonic gate network, and normalcy is the
  behavioural counterpart of that syntactic property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.stg.stategraph import StateGraph, build_state_graph
from repro.stg.stg import STG
from repro.synthesis.boolean import Cover, minimise
from repro.synthesis.functions import (
    NextStateFunction,
    derive_next_state_functions,
)


@dataclass
class SignalImplementation:
    """Synthesised logic for one output signal."""

    signal: str
    function: NextStateFunction
    complex_gate: Cover          # cover of Nxt_z
    set_cover: Cover             # gC set network: Nxt=1 & z=0 region
    reset_cover: Cover           # gC reset network: Nxt=0 & z=1 region

    def equation(self, names: List[str]) -> str:
        return f"{self.signal} = {self.complex_gate.to_string(names)}"

    def gc_equations(self, names: List[str]) -> str:
        return (
            f"set({self.signal}) = {self.set_cover.to_string(names)}; "
            f"reset({self.signal}) = {self.reset_cover.to_string(names)}"
        )

    @property
    def monotonic(self) -> bool:
        """Syntactic unateness of the complex-gate cover."""
        return self.complex_gate.is_unate()


@dataclass
class SynthesisResult:
    """Equations for every non-input signal of a CSC-satisfying STG."""

    stg: STG
    names: List[str]
    per_signal: Dict[str, SignalImplementation]

    def equations(self) -> List[str]:
        return [
            impl.equation(self.names) for impl in self.per_signal.values()
        ]

    def verify(self, state_graph: StateGraph) -> bool:
        """Replay every reachable state: each cover must equal ``Nxt_z``."""
        for state in range(state_graph.num_states):
            code = state_graph.code(state)
            minterm = 0
            for i, bit in enumerate(code):
                if bit:
                    minterm |= 1 << i
            for signal, impl in self.per_signal.items():
                expected = state_graph.next_state_vector(state, signal)
                if impl.complex_gate.evaluate(minterm) != bool(expected):
                    return False
        return True


def synthesise(
    stg: STG,
    state_graph: Optional[StateGraph] = None,
    signals: Optional[List[str]] = None,
) -> SynthesisResult:
    """Derive and minimise implementations for the STG's output signals.

    Raises :class:`repro.synthesis.functions.CSCViolationError` if the STG
    has a CSC conflict (synthesis requires well-defined functions — run
    :func:`repro.synthesis.resolution.resolve_csc` first in that case).
    """
    if state_graph is None:
        state_graph = build_state_graph(stg)
    functions = derive_next_state_functions(
        stg, state_graph, signals=signals, strict=True
    )
    num_vars = len(stg.signals)
    per_signal: Dict[str, SignalImplementation] = {}
    for signal, fn in functions.items():
        dc = fn.dc_set
        complex_gate = minimise(fn.on_set, dc, num_vars)
        z_bit = 1 << stg.signal_index(signal)
        set_on = {m for m in fn.on_set if not m & z_bit}
        reset_on = {m for m in fn.off_set if m & z_bit}
        # everything outside the own excitation/quiescent region of the
        # respective network is a don't-care for that network
        set_dc = set(range(1 << num_vars)) - set_on - {
            m for m in fn.off_set if not m & z_bit
        }
        reset_dc = set(range(1 << num_vars)) - reset_on - {
            m for m in fn.on_set if m & z_bit
        }
        per_signal[signal] = SignalImplementation(
            signal=signal,
            function=fn,
            complex_gate=complex_gate,
            set_cover=minimise(set_on, set_dc, num_vars),
            reset_cover=minimise(reset_on, reset_dc, num_vars),
        )
    return SynthesisResult(stg=stg, names=list(stg.signals), per_signal=per_signal)
