"""Exception hierarchy for the ``repro`` library.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class NetStructureError(ReproError):
    """The Petri net structure is malformed (unknown node, duplicate id, ...)."""


class NotEnabledError(ReproError):
    """A transition was fired from a marking at which it is not enabled."""


class UnboundedNetError(ReproError):
    """An operation requiring a bounded (or safe) net met an unbounded one."""


class InconsistentSTGError(ReproError):
    """The STG violates the consistency requirement of the paper (Section 2.1).

    Consistency demands that every reachable marking has a well defined binary
    signal code: along every firing sequence the rising and falling edges of
    each signal alternate, starting from the value given by the initial code.
    """


class ParseError(ReproError):
    """A ``.g`` (astg) file could not be parsed."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


class UnfoldingError(ReproError):
    """The unfolding engine met an unsupported situation (e.g. unsafe net)."""


class SolverError(ReproError):
    """An integer-programming solver failed (infeasible model misuse, limits)."""


class SolverLimitError(SolverError):
    """A solver gave up because a node/time budget was exhausted."""
