"""Graphviz DOT renderers.

Everything returns a DOT string; no graphviz dependency is needed to
generate, only to render.  The drawing conventions follow the paper's
figures: places as circles (tokens as filled dots in the label), transitions
as boxes labelled with their signal edge, cut-off events double-boxed, and
state-graph nodes labelled with their binary codes.
"""

from __future__ import annotations

from typing import Optional

from repro.petri.net import PetriNet
from repro.stg.stategraph import StateGraph
from repro.stg.stg import STG
from repro.unfolding.occurrence_net import Prefix


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def net_to_dot(net: PetriNet, title: Optional[str] = None) -> str:
    """A plain net system: circles, boxes, token counts."""
    lines = [f"digraph {_quote(title or net.name)} {{", "  rankdir=TB;"]
    initial = net.initial_marking
    for p in range(net.num_places):
        tokens = initial[p]
        label = net.place_name(p) + (f"\\n{'•' * min(tokens, 3)}" if tokens else "")
        lines.append(f"  {_quote('p' + str(p))} [shape=circle, label={_quote(label)}];")
    for t in range(net.num_transitions):
        lines.append(
            f"  {_quote('t' + str(t))} "
            f"[shape=box, label={_quote(net.transition_name(t))}];"
        )
    for t in range(net.num_transitions):
        for p in net.preset(t):
            lines.append(f"  {_quote('p' + str(p))} -> {_quote('t' + str(t))};")
        for p in net.postset(t):
            lines.append(f"  {_quote('t' + str(t))} -> {_quote('p' + str(p))};")
    lines.append("}")
    return "\n".join(lines)


def stg_to_dot(stg: STG, hide_simple_places: bool = True) -> str:
    """An STG in the paper's Figure 1 style: implicit places (one producer,
    one consumer, unmarked) drawn as direct arcs between edge labels."""
    net = stg.net
    lines = [f"digraph {_quote(stg.name)} {{", "  rankdir=TB;"]
    initial = net.initial_marking
    for t in range(net.num_transitions):
        label = stg.label(t)
        text = str(label) if label is not None else net.transition_name(t)
        shape = "box" if label is not None else "box, style=dashed"
        lines.append(f"  {_quote('t' + str(t))} [shape={shape}, label={_quote(text)}];")
    for p in range(net.num_places):
        producers = list(net.place_preset(p))
        consumers = list(net.place_postset(p))
        simple = (
            hide_simple_places
            and len(producers) == 1
            and len(consumers) == 1
            and initial[p] == 0
        )
        if simple:
            lines.append(
                f"  {_quote('t' + str(producers[0]))} -> "
                f"{_quote('t' + str(consumers[0]))};"
            )
            continue
        label = "•" * min(initial[p], 3)
        lines.append(
            f"  {_quote('p' + str(p))} "
            f"[shape=circle, label={_quote(label)}, width=0.25];"
        )
        for producer in producers:
            lines.append(f"  {_quote('t' + str(producer))} -> {_quote('p' + str(p))};")
        for consumer in consumers:
            lines.append(f"  {_quote('p' + str(p))} -> {_quote('t' + str(consumer))};")
    lines.append("}")
    return "\n".join(lines)


def prefix_to_dot(prefix: Prefix) -> str:
    """A branching-process prefix: conditions labelled by their original
    place, events by their edge/transition, cut-offs double-bordered."""
    net = prefix.net
    lines = [f"digraph {_quote('prefix')} {{", "  rankdir=LR;"]
    for condition in prefix.conditions:
        label = f"b{condition.index}\\n{net.place_name(condition.place)}"
        lines.append(
            f"  {_quote('b' + str(condition.index))} "
            f"[shape=circle, label={_quote(label)}];"
        )
    for event in prefix.events:
        name = net.transition_name(event.transition)
        label = f"e{event.index}\\n{name}"
        peripheries = ", peripheries=2" if event.is_cutoff else ""
        lines.append(
            f"  {_quote('e' + str(event.index))} "
            f"[shape=box, label={_quote(label)}{peripheries}];"
        )
        for b in event.preset:
            lines.append(f"  {_quote('b' + str(b))} -> {_quote('e' + str(event.index))};")
        for b in event.postset:
            lines.append(f"  {_quote('e' + str(event.index))} -> {_quote('b' + str(b))};")
    lines.append("}")
    return "\n".join(lines)


def state_graph_to_dot(
    state_graph: StateGraph, highlight_conflicts: bool = True
) -> str:
    """The annotated state graph; USC-conflicting states share a colour."""
    stg = state_graph.stg
    net = stg.net
    lines = [f"digraph {_quote(stg.name + '-sg')} {{", "  rankdir=TB;"]
    conflict_states = set()
    if highlight_conflicts:
        for conflict in state_graph.usc_conflicts():
            conflict_states.add(conflict.state_a)
            conflict_states.add(conflict.state_b)
    for state in range(state_graph.num_states):
        code = "".join(map(str, state_graph.code(state)))
        extra = ", style=filled, fillcolor=lightcoral" if state in conflict_states else ""
        lines.append(
            f"  {_quote('s' + str(state))} "
            f"[shape=ellipse, label={_quote(code)}{extra}];"
        )
    graph = state_graph.consistency.graph
    for source, transition, target in graph.edges:
        label = net.transition_name(transition)
        lines.append(
            f"  {_quote('s' + str(source))} -> {_quote('s' + str(target))} "
            f"[label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines)
