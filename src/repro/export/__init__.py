"""Graphviz DOT export for nets, STGs, prefixes and state graphs."""

from repro.export.dot import (
    net_to_dot,
    stg_to_dot,
    prefix_to_dot,
    state_graph_to_dot,
)

__all__ = ["net_to_dot", "stg_to_dot", "prefix_to_dot", "state_graph_to_dot"]
