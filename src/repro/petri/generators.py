"""Structured and random net generators.

Used by the property-based tests (hypothesis strategies call into these),
the scalable benchmarks and the fuzz subsystem.  All generators return safe,
bounded nets unless stated otherwise.

Randomness policy (relied on by :mod:`repro.fuzz`): every random choice
flows through one injected :class:`random.Random` — either passed in as
``rng=`` or constructed here from the ``seed`` argument.  No generator ever
touches the module-level :mod:`random` state, so given a seed the generated
net is byte-reproducible across calls, processes and platforms.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.petri.net import PetriNet


def make_rng(
    seed: Optional[int] = None, rng: Optional[random.Random] = None
) -> random.Random:
    """Resolve the ``seed``/``rng`` pair every generator accepts.

    An explicit ``rng`` wins (the caller is threading one stream through
    several generators); otherwise a fresh :class:`random.Random` is built
    from ``seed``.  ``seed=None`` still goes through an injected instance —
    nothing here ever mutates the global :mod:`random` state.
    """
    return rng if rng is not None else random.Random(seed)


def chain(length: int, tokens_at: Sequence[int] = (0,)) -> PetriNet:
    """A linear chain ``p0 -> t0 -> p1 -> t1 -> ... -> p_length``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    net = PetriNet(f"chain{length}")
    marked = set(tokens_at)
    for i in range(length + 1):
        net.add_place(f"p{i}", tokens=1 if i in marked else 0)
    for i in range(length):
        net.add_transition(f"t{i}")
        net.add_arc(f"p{i}", f"t{i}")
        net.add_arc(f"t{i}", f"p{i + 1}")
    return net


def cycle(length: int, tokens: int = 1) -> PetriNet:
    """A ring of ``length`` places/transitions carrying ``tokens`` tokens.

    Tokens start evenly spaced.  With a single token the net is safe; with
    more it is only ``tokens``-bounded (a trailing token may enter a place
    before the leading one has left — there is no capacity back-pressure).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if not 0 <= tokens <= length:
        raise ValueError("tokens must be within 0..length")
    net = PetriNet(f"cycle{length}")
    marked = {i * length // tokens for i in range(tokens)} if tokens else set()
    for i in range(length):
        net.add_place(f"p{i}", tokens=1 if i in marked else 0)
        net.add_transition(f"t{i}")
    for i in range(length):
        net.add_arc(f"p{i}", f"t{i}")
        net.add_arc(f"t{i}", f"p{(i + 1) % length}")
    return net


def fork_join(width: int) -> PetriNet:
    """One transition forks into ``width`` parallel branches that re-join.

    The state space is ``2^width`` between the fork and the join while the
    net itself is linear in ``width`` — the canonical example of why
    unfoldings beat reachability graphs.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    net = PetriNet(f"forkjoin{width}")
    net.add_place("start", tokens=1)
    net.add_place("done")
    net.add_transition("fork")
    net.add_transition("join")
    net.add_arc("start", "fork")
    net.add_arc("join", "done")
    for i in range(width):
        net.add_place(f"ready{i}")
        net.add_place(f"finished{i}")
        net.add_transition(f"work{i}")
        net.add_arc("fork", f"ready{i}")
        net.add_arc(f"ready{i}", f"work{i}")
        net.add_arc(f"work{i}", f"finished{i}")
        net.add_arc(f"finished{i}", "join")
    return net


def choice(branches: int, length: int = 1) -> PetriNet:
    """Free choice between ``branches`` alternative chains of ``length``."""
    if branches < 1 or length < 1:
        raise ValueError("branches and length must be >= 1")
    net = PetriNet(f"choice{branches}x{length}")
    net.add_place("start", tokens=1)
    net.add_place("done")
    for b in range(branches):
        previous = "start"
        for step in range(length):
            transition = f"b{b}s{step}"
            net.add_transition(transition)
            net.add_arc(previous, transition)
            if step == length - 1:
                net.add_arc(transition, "done")
            else:
                place = f"b{b}p{step}"
                net.add_place(place)
                net.add_arc(transition, place)
                previous = place
    return net


def random_safe_net(
    num_branches: int = 3,
    branch_length: int = 3,
    join_probability: float = 0.3,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> PetriNet:
    """A random safe net assembled from parallel chains with occasional
    synchronisations.

    The construction guarantees safeness by keeping every place inside a
    single token-conserving branch: we start from ``num_branches`` marked
    cycles and randomly merge transition pairs across branches into
    synchronising transitions (which consume from and produce into both
    branches, preserving the per-branch token count).
    """
    rng = make_rng(seed, rng)
    net = PetriNet(f"random{num_branches}x{branch_length}")
    # Build independent cycles first.
    for b in range(num_branches):
        for i in range(branch_length):
            net.add_place(f"b{b}p{i}", tokens=1 if i == 0 else 0)
    sync_pairs = []
    for b in range(num_branches):
        for i in range(branch_length):
            if b > 0 and rng.random() < join_probability:
                sync_pairs.append((b, i))
                continue
            net.add_transition(f"b{b}t{i}")
            net.add_arc(f"b{b}p{i}", f"b{b}t{i}")
            net.add_arc(f"b{b}t{i}", f"b{b}p{(i + 1) % branch_length}")
    # Each synchronising transition also participates in branch 0 (joining
    # two conserving cycles keeps both safe).
    for b, i in sync_pairs:
        name = f"sync_b{b}t{i}"
        net.add_transition(name)
        net.add_arc(f"b{b}p{i}", name)
        net.add_arc(name, f"b{b}p{(i + 1) % branch_length}")
        j = rng.randrange(branch_length)
        net.add_arc(f"b0p{j}", name)
        net.add_arc(name, f"b0p{j}")
    return net
