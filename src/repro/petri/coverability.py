"""Karp-Miller coverability graphs for (possibly unbounded) nets.

The unfolding and symbolic engines require bounded inputs; the coverability
graph is the classical way to *decide* boundedness and to answer coverability
queries on arbitrary nets, rounding out the Petri net substrate.  Unbounded
places are abstracted to the ω symbol, represented here as ``OMEGA``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.petri.marking import Marking
from repro.petri.net import PetriNet

#: The ω (unbounded) token count.
OMEGA = -1


def _covers(extended: Tuple[int, ...], other: Tuple[int, ...]) -> bool:
    """``extended >= other`` treating OMEGA as infinity."""
    for a, b in zip(extended, other):
        if a == OMEGA:
            continue
        if b == OMEGA or a < b:
            return False
    return True


@dataclass
class CoverabilityGraph:
    """Karp-Miller tree collapsed into a graph over extended markings."""

    net: PetriNet
    nodes: List[Tuple[int, ...]] = field(default_factory=list)
    index: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    edges: List[Tuple[int, int, int]] = field(default_factory=list)

    def add_node(self, marking: Tuple[int, ...]) -> int:
        node = self.index.get(marking)
        if node is None:
            node = len(self.nodes)
            self.nodes.append(marking)
            self.index[marking] = node
        return node

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def is_bounded(self) -> bool:
        return not any(OMEGA in node for node in self.nodes)

    def unbounded_places(self) -> List[str]:
        unbounded = set()
        for node in self.nodes:
            for p, count in enumerate(node):
                if count == OMEGA:
                    unbounded.add(p)
        return sorted(self.net.place_name(p) for p in unbounded)

    def covers(self, target: Marking) -> bool:
        """Coverability: can some reachable marking dominate ``target``?"""
        goal = tuple(target.counts)
        return any(_covers(node, goal) for node in self.nodes)


def coverability_graph(net: PetriNet, max_nodes: int = 100_000) -> CoverabilityGraph:
    """Build the Karp-Miller coverability graph."""
    graph = CoverabilityGraph(net)
    initial = tuple(net.initial_marking.counts)
    graph.add_node(initial)
    # ancestry paths for ω acceleration: per node keep one tree-parent chain
    parents: Dict[int, Optional[int]] = {0: None}
    queue = deque([0])
    while queue:
        node = queue.popleft()
        marking = graph.nodes[node]
        for t in range(net.num_transitions):
            successor = _fire_extended(net, marking, t)
            if successor is None:
                continue
            # ω acceleration against every ancestor
            accelerated = list(successor)
            ancestor: Optional[int] = node
            while ancestor is not None:
                past = graph.nodes[ancestor]
                if _covers(tuple(accelerated), past) and tuple(accelerated) != past:
                    for p in range(len(accelerated)):
                        if (
                            accelerated[p] != OMEGA
                            and past[p] != OMEGA
                            and accelerated[p] > past[p]
                        ):
                            accelerated[p] = OMEGA
                ancestor = parents[ancestor]
            final = tuple(accelerated)
            known = final in graph.index
            target = graph.add_node(final)
            graph.edges.append((node, t, target))
            if not known:
                if graph.num_nodes > max_nodes:
                    raise RuntimeError(f"coverability budget {max_nodes} exceeded")
                parents[target] = node
                queue.append(target)
    return graph


def _fire_extended(
    net: PetriNet, marking: Tuple[int, ...], transition: int
) -> Optional[List[int]]:
    for p, w in net.preset(transition).items():
        if marking[p] != OMEGA and marking[p] < w:
            return None
    result = list(marking)
    for p, w in net.preset(transition).items():
        if result[p] != OMEGA:
            result[p] -= w
    for p, w in net.postset(transition).items():
        if result[p] != OMEGA:
            result[p] += w
    return result
