"""Markings: multisets of places, stored as dense count vectors.

A marking of a net ``N = (S, T, F)`` is a multiset ``M : S -> N`` (paper
Section 2.1).  We fix the place order of the owning :class:`~repro.petri.net.
PetriNet` and store counts in a tuple indexed by place position, which makes
markings hashable (reachability sets are dictionaries keyed by marking) and
cheap to compare lexicographically (the USC separating constraint of the paper
orders markings as k-ary numbers).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple


class Marking:
    """An immutable multiset of places over a fixed place universe.

    The marking does not hold a reference to its net; it is just a count
    vector.  Interpretation (which index is which place) is supplied by the
    :class:`~repro.petri.net.PetriNet` that produced it.

    >>> m = Marking((1, 0, 2))
    >>> m[2]
    2
    >>> m.total()
    3
    >>> list(m.support())
    [0, 2]
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: Sequence[int]):
        counts = tuple(int(c) for c in counts)
        if any(c < 0 for c in counts):
            raise ValueError("marking counts must be non-negative")
        self._counts = counts

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dict(cls, size: int, counts: Mapping[int, int]) -> "Marking":
        """Build a marking of ``size`` places from a sparse ``{index: count}``."""
        vector = [0] * size
        for index, count in counts.items():
            vector[index] = count
        return cls(vector)

    @classmethod
    def empty(cls, size: int) -> "Marking":
        return cls((0,) * size)

    # -- accessors ---------------------------------------------------------

    @property
    def counts(self) -> Tuple[int, ...]:
        return self._counts

    def __getitem__(self, index: int) -> int:
        return self._counts[index]

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[int]:
        return iter(self._counts)

    def total(self) -> int:
        """Total number of tokens."""
        return sum(self._counts)

    def support(self) -> Iterable[int]:
        """Indices of places holding at least one token."""
        return (i for i, c in enumerate(self._counts) if c > 0)

    def support_set(self) -> frozenset:
        return frozenset(self.support())

    def max_count(self) -> int:
        """The largest token count on any single place (0 for the empty net)."""
        return max(self._counts, default=0)

    def as_dict(self) -> Dict[int, int]:
        return {i: c for i, c in enumerate(self._counts) if c > 0}

    # -- multiset algebra ----------------------------------------------------

    def add(self, deltas: Mapping[int, int]) -> "Marking":
        """Multiset sum with a sparse delta (used when producing tokens)."""
        vector = list(self._counts)
        for index, amount in deltas.items():
            vector[index] += amount
        return Marking(vector)

    def subtract(self, deltas: Mapping[int, int]) -> "Marking":
        """Multiset difference with a sparse delta (raises if it goes negative)."""
        vector = list(self._counts)
        for index, amount in deltas.items():
            vector[index] -= amount
            if vector[index] < 0:
                raise ValueError(f"marking would go negative at place index {index}")
        return Marking(vector)

    def covers(self, deltas: Mapping[int, int]) -> bool:
        """True if this marking has at least ``deltas[i]`` tokens at each ``i``."""
        return all(self._counts[i] >= amount for i, amount in deltas.items())

    def dominates(self, other: "Marking") -> bool:
        """Componentwise ``>=`` (used by the coverability/boundedness check)."""
        return all(a >= b for a, b in zip(self._counts, other._counts))

    def strictly_dominates(self, other: "Marking") -> bool:
        return self.dominates(other) and self._counts != other._counts

    # -- order & hashing -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Marking) and self._counts == other._counts

    def __lt__(self, other: "Marking") -> bool:
        """Lexicographic order: the ``<_lex`` of the USC separating constraint."""
        return self._counts < other._counts

    def __le__(self, other: "Marking") -> bool:
        return self._counts <= other._counts

    def __hash__(self) -> int:
        return hash(self._counts)

    def __repr__(self) -> str:
        return f"Marking({self._counts!r})"
