"""Token-game simulation: random walks, traces, and waveform recording.

The analysis engines are exhaustive; simulation complements them for quick
sanity checks, demos and randomised testing (the property-based suite uses
random walks as an independent behaviour sampler).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.petri.marking import Marking
from repro.petri.net import PetriNet

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.stg.stg import STG


@dataclass
class SimulationTrace:
    """A recorded execution: fired transitions and visited markings."""

    net: PetriNet
    transitions: List[int] = field(default_factory=list)
    markings: List[Marking] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def length(self) -> int:
        return len(self.transitions)

    def transition_names(self) -> List[str]:
        return [self.net.transition_name(t) for t in self.transitions]

    def final_marking(self) -> Marking:
        return self.markings[-1]

    def visited_markings(self) -> set:
        return set(self.markings)


def random_walk(
    net: PetriNet,
    steps: int,
    seed: Optional[int] = None,
    initial: Optional[Marking] = None,
    rng: Optional[random.Random] = None,
) -> SimulationTrace:
    """Fire uniformly random enabled transitions for up to ``steps`` steps.

    Stops early (``deadlocked=True``) if no transition is enabled.  All
    randomness flows through the injected ``rng`` (or a fresh
    ``random.Random(seed)``) — never the global :mod:`random` state — so a
    seeded walk is byte-reproducible across processes.
    """
    from repro.petri.generators import make_rng

    rng = make_rng(seed, rng)
    marking = initial if initial is not None else net.initial_marking
    trace = SimulationTrace(net=net, markings=[marking])
    for _ in range(steps):
        enabled = net.enabled(marking)
        if not enabled:
            trace.deadlocked = True
            break
        transition = rng.choice(enabled)
        marking = net.fire(marking, transition)
        trace.transitions.append(transition)
        trace.markings.append(marking)
    return trace


@dataclass
class Waveform:
    """Per-signal value changes along a simulated STG execution.

    ``changes[signal]`` is a list of ``(step, new_value)`` pairs; step 0
    carries the initial value.
    """

    signals: List[str]
    changes: Dict[str, List[Tuple[int, int]]]
    steps: int

    def value_at(self, signal: str, step: int) -> int:
        value = 0
        for at, new in self.changes[signal]:
            if at > step:
                break
            value = new
        return value

    def render(self, width: int = 60) -> str:
        """A crude ASCII waveform (one row per signal)."""
        lines = []
        scale = max(1, self.steps // width) if self.steps else 1
        for signal in self.signals:
            row = []
            for step in range(0, self.steps + 1, scale):
                row.append("█" if self.value_at(signal, step) else "▁")
            lines.append(f"{signal:>10s} {''.join(row)}")
        return "\n".join(lines)


def stg_random_walk(
    stg: "STG",
    steps: int,
    seed: Optional[int] = None,
    initial_code: Optional[Dict[str, int]] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[SimulationTrace, Waveform]:
    """Simulate an STG and record the resulting signal waveform.

    ``initial_code`` defaults to the declared values (0 where undeclared);
    consistency of the STG guarantees the waveform is well defined.
    """
    trace = random_walk(stg.net, steps, seed=seed, rng=rng)
    values = {s: 0 for s in stg.signals}
    values.update(stg.declared_initial_code)
    if initial_code:
        values.update(initial_code)
    changes: Dict[str, List[Tuple[int, int]]] = {
        s: [(0, values[s])] for s in stg.signals
    }
    for step, transition in enumerate(trace.transitions, start=1):
        label = stg.label(transition)
        if label is None:
            continue
        new_value = 1 if label.polarity > 0 else 0
        values[label.signal] = new_value
        changes[label.signal].append((step, new_value))
    waveform = Waveform(
        signals=list(stg.signals), changes=changes, steps=trace.length
    )
    return trace, waveform


def estimate_reachable_states(
    net: PetriNet,
    walks: int = 50,
    steps: int = 200,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> int:
    """A quick lower bound on the reachable-state count by sampling walks."""
    from repro.petri.generators import make_rng

    rng = make_rng(seed, rng)
    seen = {net.initial_marking}
    for _ in range(walks):
        trace = random_walk(net, steps, seed=rng.randrange(1 << 30))
        seen.update(trace.markings)
    return len(seen)
