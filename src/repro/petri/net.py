"""Place/transition nets and the token game.

A net is a triple ``N = (S, T, F)`` of places, transitions and a flow
relation; a net system pairs it with an initial marking (paper Section 2.1).
This module keeps both in one mutable class: nets are built incrementally by
the parsers, the benchmark model constructors and the random generators, and
then treated as immutable by the analysis code.

Nodes are referred to by *name* in the public API, and by dense integer
*index* in the performance-sensitive internals (markings are count vectors
indexed by place position; the incidence matrix is indexed the same way).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import NetStructureError, NotEnabledError
from repro.petri.marking import Marking


class PetriNet:
    """A finite place/transition net with an initial marking.

    >>> net = PetriNet("demo")
    >>> net.add_place("p0", tokens=1)
    0
    >>> net.add_place("p1")
    1
    >>> net.add_transition("t")
    0
    >>> net.add_arc("p0", "t")
    >>> net.add_arc("t", "p1")
    >>> m0 = net.initial_marking
    >>> net.enabled(m0)
    [0]
    >>> m1 = net.fire(m0, 0)
    >>> m1.counts
    (0, 1)
    """

    def __init__(self, name: str = "net"):
        self.name = name
        self._places: List[str] = []
        self._transitions: List[str] = []
        self._place_index: Dict[str, int] = {}
        self._transition_index: Dict[str, int] = {}
        # arcs stored sparsely; weights are positive ints (ordinary nets use 1)
        self._pre: List[Dict[int, int]] = []   # transition -> {place: weight}
        self._post: List[Dict[int, int]] = []  # transition -> {place: weight}
        self._place_pre: List[Dict[int, int]] = []   # place -> {transition: weight}
        self._place_post: List[Dict[int, int]] = []  # place -> {transition: weight}
        self._initial_tokens: List[int] = []

    # -- construction --------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> int:
        """Add a place and return its index."""
        if name in self._place_index or name in self._transition_index:
            raise NetStructureError(f"duplicate node name: {name!r}")
        if tokens < 0:
            raise NetStructureError("initial token count must be non-negative")
        index = len(self._places)
        self._places.append(name)
        self._place_index[name] = index
        self._place_pre.append({})
        self._place_post.append({})
        self._initial_tokens.append(tokens)
        return index

    def add_transition(self, name: str) -> int:
        """Add a transition and return its index."""
        if name in self._place_index or name in self._transition_index:
            raise NetStructureError(f"duplicate node name: {name!r}")
        index = len(self._transitions)
        self._transitions.append(name)
        self._transition_index[name] = index
        self._pre.append({})
        self._post.append({})
        return index

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add a flow arc place->transition or transition->place."""
        if weight <= 0:
            raise NetStructureError("arc weight must be positive")
        if source in self._place_index and target in self._transition_index:
            place = self._place_index[source]
            transition = self._transition_index[target]
            self._pre[transition][place] = self._pre[transition].get(place, 0) + weight
            self._place_post[place][transition] = self._pre[transition][place]
        elif source in self._transition_index and target in self._place_index:
            transition = self._transition_index[source]
            place = self._place_index[target]
            self._post[transition][place] = self._post[transition].get(place, 0) + weight
            self._place_pre[place][transition] = self._post[transition][place]
        else:
            raise NetStructureError(
                f"arc must connect a place and a transition: {source!r} -> {target!r}"
            )
        # the paper assumes t's preset and postset never share a place only for
        # occurrence nets; general nets may have self-loops, so no check here.

    def remove_arc(self, source: str, target: str) -> None:
        """Remove the arc between a place and a transition (any direction).

        Used by net transformations (e.g. transition splitting during CSC
        resolution).  Raises if the arc does not exist.
        """
        if source in self._place_index and target in self._transition_index:
            place = self._place_index[source]
            transition = self._transition_index[target]
            if place not in self._pre[transition]:
                raise NetStructureError(f"no arc {source!r} -> {target!r}")
            del self._pre[transition][place]
            del self._place_post[place][transition]
        elif source in self._transition_index and target in self._place_index:
            transition = self._transition_index[source]
            place = self._place_index[target]
            if place not in self._post[transition]:
                raise NetStructureError(f"no arc {source!r} -> {target!r}")
            del self._post[transition][place]
            del self._place_pre[place][transition]
        else:
            raise NetStructureError(
                f"arc must connect a place and a transition: {source!r} -> {target!r}"
            )

    def set_tokens(self, place: str, tokens: int) -> None:
        if tokens < 0:
            raise NetStructureError("token count must be non-negative")
        self._initial_tokens[self.place_index(place)] = tokens

    # -- structure accessors ---------------------------------------------------

    @property
    def places(self) -> Sequence[str]:
        return tuple(self._places)

    @property
    def transitions(self) -> Sequence[str]:
        return tuple(self._transitions)

    @property
    def num_places(self) -> int:
        return len(self._places)

    @property
    def num_transitions(self) -> int:
        return len(self._transitions)

    def place_index(self, name: str) -> int:
        try:
            return self._place_index[name]
        except KeyError:
            raise NetStructureError(f"unknown place: {name!r}") from None

    def transition_index(self, name: str) -> int:
        try:
            return self._transition_index[name]
        except KeyError:
            raise NetStructureError(f"unknown transition: {name!r}") from None

    def has_place(self, name: str) -> bool:
        return name in self._place_index

    def has_transition(self, name: str) -> bool:
        return name in self._transition_index

    def place_name(self, index: int) -> str:
        return self._places[index]

    def transition_name(self, index: int) -> str:
        return self._transitions[index]

    def preset(self, transition: int) -> Mapping[int, int]:
        """``•t`` as a sparse ``{place_index: weight}`` mapping."""
        return self._pre[transition]

    def postset(self, transition: int) -> Mapping[int, int]:
        """``t•`` as a sparse ``{place_index: weight}`` mapping."""
        return self._post[transition]

    def place_preset(self, place: int) -> Mapping[int, int]:
        """``•s``: the transitions producing into place ``s``."""
        return self._place_pre[place]

    def place_postset(self, place: int) -> Mapping[int, int]:
        """``s•``: the transitions consuming from place ``s``."""
        return self._place_post[place]

    def arcs(self) -> Iterator[Tuple[str, str, int]]:
        """All arcs as ``(source_name, target_name, weight)`` triples."""
        for t, pre in enumerate(self._pre):
            for p, w in pre.items():
                yield self._places[p], self._transitions[t], w
        for t, post in enumerate(self._post):
            for p, w in post.items():
                yield self._transitions[t], self._places[p], w

    def is_ordinary(self) -> bool:
        """True if every arc has weight 1 (required by the unfolding engine)."""
        return all(
            w == 1
            for maps in (self._pre, self._post)
            for arcs in maps
            for w in arcs.values()
        )

    # -- token game ------------------------------------------------------------

    @property
    def initial_marking(self) -> Marking:
        return Marking(self._initial_tokens)

    def is_enabled(self, marking: Marking, transition: int) -> bool:
        """``M[t>``: every input place carries enough tokens."""
        return marking.covers(self._pre[transition])

    def enabled(self, marking: Marking) -> List[int]:
        """Indices of all transitions enabled at ``marking``."""
        return [t for t in range(len(self._transitions)) if self.is_enabled(marking, t)]

    def fire(self, marking: Marking, transition: int) -> Marking:
        """``M[t>M'`` with ``M' = M - •t + t•``."""
        if not self.is_enabled(marking, transition):
            raise NotEnabledError(
                f"transition {self._transitions[transition]!r} not enabled"
            )
        return marking.subtract(self._pre[transition]).add(self._post[transition])

    def fire_sequence(
        self, marking: Marking, sequence: Iterable[int]
    ) -> Marking:
        """Fire a whole sequence of transition indices, returning the final marking."""
        current = marking
        for transition in sequence:
            current = self.fire(current, transition)
        return current

    def fire_by_name(self, marking: Marking, name: str) -> Marking:
        return self.fire(marking, self.transition_index(name))

    # -- misc --------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """A deep, independent copy of the net (same node order)."""
        clone = PetriNet(name or self.name)
        for place, tokens in zip(self._places, self._initial_tokens):
            clone.add_place(place, tokens)
        for transition in self._transitions:
            clone.add_transition(transition)
        for t, pre in enumerate(self._pre):
            for p, w in pre.items():
                clone.add_arc(self._places[p], self._transitions[t], w)
        for t, post in enumerate(self._post):
            for p, w in post.items():
                clone.add_arc(self._transitions[t], self._places[p], w)
        return clone

    def __repr__(self) -> str:
        return (
            f"PetriNet({self.name!r}, |S|={self.num_places}, "
            f"|T|={self.num_transitions})"
        )
