"""Petri net substrate: structure, token game, reachability, analysis, I/O.

This package implements the plain place/transition nets of the paper's
Section 2.1: a net is a triple ``(S, T, F)``; a net system pairs a net with an
initial marking.  Everything downstream (STGs, unfoldings, the integer
programming core) builds on these classes.
"""

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.petri.incidence import incidence_matrix, marking_equation_feasible
from repro.petri.reachability import ReachabilityGraph, explore
from repro.petri.analysis import (
    is_safe,
    is_bounded,
    bound,
    is_marked_graph,
    is_free_choice,
    is_dynamically_conflict_free,
    place_invariants,
    transition_invariants,
)
from repro.petri.parser import parse_net, write_net
from repro.petri.simulate import random_walk, stg_random_walk
from repro.petri.coverability import coverability_graph, CoverabilityGraph, OMEGA

__all__ = [
    "random_walk",
    "stg_random_walk",
    "coverability_graph",
    "CoverabilityGraph",
    "OMEGA",
    "Marking",
    "PetriNet",
    "incidence_matrix",
    "marking_equation_feasible",
    "ReachabilityGraph",
    "explore",
    "is_safe",
    "is_bounded",
    "bound",
    "is_marked_graph",
    "is_free_choice",
    "is_dynamically_conflict_free",
    "place_invariants",
    "transition_invariants",
    "parse_net",
    "write_net",
]
