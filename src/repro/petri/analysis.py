"""Structural and behavioural net analysis.

Provides the side conditions the paper relies on:

* *safeness* / *boundedness* — the unfolding engine requires safe nets, and
  the USC lexicographic constraint requires a known bound ``k``;
* *marked graphs* and *free choice* nets — structural classes for which the
  Section 7 optimisation (dynamic conflict freeness) holds by construction;
* *dynamic conflict freeness* — no reachable marking enables two transitions
  sharing an input place (Proposition 1's precondition);
* *P/T-invariants* — integer left/right kernels of the incidence matrix,
  used by tests as independent certificates of consistency and boundedness.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

import numpy as np

from repro.exceptions import UnboundedNetError
from repro.petri.incidence import incidence_matrix
from repro.petri.net import PetriNet
from repro.petri.reachability import explore


def is_bounded(net: PetriNet, max_states: int = 200_000) -> bool:
    """Behavioural boundedness via Karp-Miller style domination detection.

    We run a depth-first search keeping the path of markings; if a marking
    strictly dominates one of its ancestors the net is unbounded (the pumping
    argument).  Bounded nets terminate because their reachability set is
    finite; ``max_states`` guards pathological sizes.
    """
    initial = net.initial_marking
    seen = set()
    stack = [(initial, [initial])]
    while stack:
        marking, path = stack.pop()
        if marking in seen:
            continue
        seen.add(marking)
        if len(seen) > max_states:
            raise UnboundedNetError(f"state budget {max_states} exhausted")
        for transition in net.enabled(marking):
            successor = net.fire(marking, transition)
            for ancestor in path:
                if successor.strictly_dominates(ancestor):
                    return False
            if successor not in seen:
                stack.append((successor, path + [successor]))
    return True


def bound(net: PetriNet, max_states: int = 200_000) -> int:
    """The smallest ``k`` such that every reachable marking is ``<= k``
    everywhere (the ``k`` of the paper's k-ary USC constraint)."""
    if not is_bounded(net, max_states=max_states):
        raise UnboundedNetError("net is unbounded")
    graph = explore(net, max_states=max_states)
    return max((m.max_count() for m in graph.markings), default=0)


def is_safe(net: PetriNet, max_states: int = 200_000) -> bool:
    """True iff no reachable marking puts more than one token on a place."""
    try:
        explore(net, max_states=max_states, max_tokens_per_place=1)
    except UnboundedNetError:
        return False
    return True


def is_marked_graph(net: PetriNet) -> bool:
    """Every place has at most one producer and at most one consumer."""
    return all(
        len(net.place_preset(p)) <= 1 and len(net.place_postset(p)) <= 1
        for p in range(net.num_places)
    )


def is_free_choice(net: PetriNet) -> bool:
    """Classical free choice: if two transitions share an input place then
    they have identical presets."""
    for p in range(net.num_places):
        consumers = list(net.place_postset(p))
        if len(consumers) < 2:
            continue
        first = net.preset(consumers[0])
        for t in consumers[1:]:
            if net.preset(t) != first:
                return False
    return True


def has_structural_conflicts(net: PetriNet) -> bool:
    """True if some place feeds two or more transitions (potential choice)."""
    return any(len(net.place_postset(p)) > 1 for p in range(net.num_places))


def is_dynamically_conflict_free(
    net: PetriNet, max_states: int = 200_000
) -> bool:
    """No reachable marking enables two distinct transitions with a common
    input place (paper Section 7).

    Marked graphs are dynamically conflict free by structure, so we shortcut;
    otherwise the reachability graph is examined.  This predicate is used by
    :mod:`repro.core.conflict_free` to decide whether Proposition 1 applies.
    """
    if is_marked_graph(net):
        return True
    graph = explore(net, max_states=max_states)
    for marking in graph.markings:
        enabled = net.enabled(marking)
        for i, t in enumerate(enabled):
            preset_t = set(net.preset(t))
            for u in enabled[i + 1:]:
                if preset_t & set(net.preset(u)):
                    return False
    return True


def _integer_kernel(matrix: np.ndarray) -> List[np.ndarray]:
    """A basis of integer vectors ``x >= uninvolved`` with ``matrix @ x = 0``.

    Fraction-exact Gaussian elimination; each basis vector is scaled to
    integers with content 1.  Returns the (possibly empty) list of basis
    vectors of the rational kernel, cleared to integers.

    The basis is deterministic: each vector is sign-normalised so its first
    nonzero entry is positive, and the list is sorted lexicographically by
    entries.  Downstream consumers (invariant-derived analysis facts, lint
    messages) rely on this for stable output across runs and platforms.
    """
    rows, cols = matrix.shape
    work = [[Fraction(int(v)) for v in row] for row in matrix]
    pivot_cols: List[int] = []
    r = 0
    for c in range(cols):
        pivot = next((i for i in range(r, rows) if work[i][c] != 0), None)
        if pivot is None:
            continue
        work[r], work[pivot] = work[pivot], work[r]
        inv = work[r][c]
        work[r] = [v / inv for v in work[r]]
        for i in range(rows):
            if i != r and work[i][c] != 0:
                factor = work[i][c]
                work[i] = [a - factor * b for a, b in zip(work[i], work[r])]
        pivot_cols.append(c)
        r += 1
        if r == rows:
            break
    free_cols = [c for c in range(cols) if c not in pivot_cols]
    basis = []
    for free in free_cols:
        vector = [Fraction(0)] * cols
        vector[free] = Fraction(1)
        for row, pivot_col in zip(work, pivot_cols):
            vector[pivot_col] = -row[free]
        denominators = [v.denominator for v in vector]
        scale = np.lcm.reduce(np.array(denominators, dtype=np.int64))
        integers = np.array([int(v * int(scale)) for v in vector], dtype=np.int64)
        gcd = np.gcd.reduce(np.abs(integers[integers != 0])) if integers.any() else 1
        integers = integers // max(gcd, 1)
        nonzero = np.flatnonzero(integers)
        if nonzero.size and integers[nonzero[0]] < 0:
            integers = -integers
        basis.append(integers)
    basis.sort(key=lambda vector: vector.tolist())
    return basis


def place_invariants(net: PetriNet) -> List[np.ndarray]:
    """Integer P-invariants: vectors ``y`` with ``y^T I = 0``.

    A positive P-invariant certifies boundedness of its support; STG models in
    this repository are typically covered by 1-invariants (safe by design).
    """
    return _integer_kernel(incidence_matrix(net).T)


def transition_invariants(net: PetriNet) -> List[np.ndarray]:
    """Integer T-invariants: vectors ``x`` with ``I x = 0`` (cyclic behaviour)."""
    return _integer_kernel(incidence_matrix(net))
