"""Incidence matrix and the marking equation (paper Section 2.2).

For a net with places ``s_1..s_m`` and transitions ``t_1..t_n`` the incidence
matrix ``I`` is the ``m x n`` integer matrix with ``I[i,j] = +1`` if ``s_i``
is produced (only) by ``t_j``, ``-1`` if consumed (only), and the signed
net effect for weighted/self-loop arcs.  If ``M0 [sigma> M`` then
``M = M0 + I @ parikh(sigma)``; feasibility of this equation over the
non-negative integers is a necessary condition for reachability, and an exact
characterisation on acyclic nets such as unfolding prefixes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.petri.marking import Marking
from repro.petri.net import PetriNet


def incidence_matrix(net: PetriNet) -> np.ndarray:
    """The ``m x n`` incidence matrix of ``net`` (dtype int64).

    Self-loops cancel: a place both consumed and produced with equal weight
    contributes 0, matching the paper's definition (which assumes pure nets
    but generalises naturally to the signed token flow).
    """
    matrix = np.zeros((net.num_places, net.num_transitions), dtype=np.int64)
    for t in range(net.num_transitions):
        for p, w in net.preset(t).items():
            matrix[p, t] -= w
        for p, w in net.postset(t).items():
            matrix[p, t] += w
    return matrix


def balance_matrix_from_changes(
    changes: Sequence[Tuple[Optional[int], int]], num_signals: int
) -> np.ndarray:
    """The signal-balance matrix of a column sequence (dtype int64).

    ``changes[j]`` is the ``(signal_index, delta)`` effect of column ``j``
    (``signal_index is None`` for dummies, contributing an all-zero column).
    Rows are signals.  This is the one shared builder behind the lint
    ``RuleContext.balance``, the certificate layer, the solver prescreens
    and the analysis engine — the columns just mean different things
    (net transitions vs prefix positions) at each call site.
    """
    matrix = np.zeros((num_signals, len(changes)), dtype=np.int64)
    for j, (signal, delta) in enumerate(changes):
        if signal is not None:
            matrix[signal, j] = delta
    return matrix


def transition_flow_matrix(
    net: PetriNet, transitions: Sequence[int]
) -> np.ndarray:
    """Token-flow matrix over an explicit column list (dtype int64).

    Column ``j`` is the incidence column of ``transitions[j]``; repeats are
    allowed (unfolding prefixes instantiate a transition many times), which
    is why this is not just a column slice of :func:`incidence_matrix`.
    """
    matrix = np.zeros((net.num_places, len(transitions)), dtype=np.int64)
    for j, transition in enumerate(transitions):
        for p, w in net.preset(transition).items():
            matrix[p, j] -= w
        for p, w in net.postset(transition).items():
            matrix[p, j] += w
    return matrix


def parikh_vector(net: PetriNet, sequence: Iterable[int]) -> np.ndarray:
    """Occurrence counts of each transition in ``sequence`` (length n vector)."""
    vector = np.zeros(net.num_transitions, dtype=np.int64)
    for transition in sequence:
        vector[transition] += 1
    return vector


def state_equation_result(
    net: PetriNet, initial: Marking, parikh: np.ndarray
) -> np.ndarray:
    """``M0 + I @ x`` as an integer vector (may be negative for invalid x)."""
    return np.asarray(initial.counts, dtype=np.int64) + incidence_matrix(net) @ parikh


def marking_equation_feasible(
    net: PetriNet,
    target: Marking,
    initial: Optional[Marking] = None,
    max_firings: Optional[int] = None,
) -> bool:
    """Check feasibility of ``M = M0 + I x`` with ``x`` a non-negative integer.

    This is the necessary condition for reachability from the paper's
    Section 2.2 (equation (1)).  We solve it by branch-and-bound over the
    transition counts using the library's own 0-1/integer solver is overkill
    here; instead a bounded depth-first search over the integer lattice with
    Gaussian pruning would be heavy, so we use a simple and exact approach:
    rational feasibility via least squares first (fast rejection), then
    bounded integer search.

    ``max_firings`` caps the total number of transition firings considered
    (sum of the Parikh vector); when ``None`` a heuristic bound derived from
    the token counts is used.  On acyclic nets every transition fires at most
    ``k`` times where ``k`` bounds the tokens, so the heuristic is exact for
    the unfolding use case; on cyclic nets the check is then *semi*-complete
    (a ``True`` answer is always sound, ``False`` means "not within bound").
    """
    initial = initial if initial is not None else net.initial_marking
    matrix = incidence_matrix(net)
    delta = np.asarray(target.counts, dtype=np.int64) - np.asarray(
        initial.counts, dtype=np.int64
    )
    n = net.num_transitions
    if n == 0:
        return not delta.any()

    # Fast rational rejection: if I x = delta has no real solution at all,
    # the integer system is infeasible too.
    solution, residuals, rank, _ = np.linalg.lstsq(
        matrix.astype(float), delta.astype(float), rcond=None
    )
    reconstructed = matrix.astype(float) @ solution
    if not np.allclose(reconstructed, delta.astype(float), atol=1e-6):
        return False

    if max_firings is None:
        # Heuristic: enough firings to move every token a full lap.
        max_firings = max(8, 2 * (target.total() + initial.total() + n))

    # Depth-first search over transition counts with a running residual.
    order = list(range(n))

    def search(index: int, remaining: int, residual: np.ndarray) -> bool:
        if not residual.any():
            return True
        if index == n or remaining == 0:
            return False
        transition = order[index]
        column = matrix[:, transition]
        # Try counts 0..remaining for this transition.
        for count in range(remaining + 1):
            if search(index + 1, remaining - count, residual - count * column):
                return True
        return False

    return search(0, int(max_firings), delta.copy())
