"""Explicit reachability graphs.

This is the state-space construction that the paper's method is designed to
*avoid*; we need it (a) as the baseline coding-conflict detector (the explicit
analogue of Petrify's BDD traversal), and (b) as a test oracle for the
unfolding-based algorithms on small nets.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import UnboundedNetError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet


class ReachabilityGraph:
    """The reachable state space of a net system.

    States are markings; edges are ``(source, transition, target)`` with
    markings referred to by their dense state index.
    """

    def __init__(self, net: PetriNet):
        self.net = net
        self.markings: List[Marking] = []
        self.index: Dict[Marking, int] = {}
        self.edges: List[Tuple[int, int, int]] = []
        self.successors: List[List[Tuple[int, int]]] = []  # state -> [(t, state')]

    def add_state(self, marking: Marking) -> int:
        state = self.index.get(marking)
        if state is None:
            state = len(self.markings)
            self.markings.append(marking)
            self.index[marking] = state
            self.successors.append([])
        return state

    def add_edge(self, source: int, transition: int, target: int) -> None:
        self.edges.append((source, transition, target))
        self.successors[source].append((transition, target))

    @property
    def num_states(self) -> int:
        return len(self.markings)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def __contains__(self, marking: Marking) -> bool:
        return marking in self.index

    def __iter__(self) -> Iterator[Marking]:
        return iter(self.markings)

    def deadlocks(self) -> List[int]:
        """States with no outgoing edges."""
        return [s for s, succ in enumerate(self.successors) if not succ]

    def path_to(self, target: int) -> List[int]:
        """A transition sequence from the initial state to ``target`` (BFS)."""
        parents: Dict[int, Tuple[int, int]] = {}
        queue = deque([0])
        seen = {0}
        while queue:
            state = queue.popleft()
            if state == target:
                break
            for transition, nxt in self.successors[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = (state, transition)
                    queue.append(nxt)
        if target != 0 and target not in parents:
            raise ValueError(f"state {target} unreachable from the initial state")
        path: List[int] = []
        state = target
        while state != 0:
            state, transition = parents[state]
            path.append(transition)
        path.reverse()
        return path


def explore(
    net: PetriNet,
    initial: Optional[Marking] = None,
    max_states: Optional[int] = None,
    max_tokens_per_place: Optional[int] = None,
) -> ReachabilityGraph:
    """Breadth-first construction of the reachability graph.

    ``max_states`` guards against state explosion (raises
    :class:`UnboundedNetError` when exceeded — for bounded nets pick it large
    enough; for potentially unbounded nets it doubles as a divergence guard).
    ``max_tokens_per_place`` raises as soon as any place exceeds the given
    bound, which is how :func:`repro.petri.analysis.is_safe` detects
    unsafeness without enumerating an infinite space.
    """
    graph = ReachabilityGraph(net)
    start = initial if initial is not None else net.initial_marking
    graph.add_state(start)
    queue = deque([0])
    while queue:
        state = queue.popleft()
        marking = graph.markings[state]
        for transition in net.enabled(marking):
            successor = net.fire(marking, transition)
            if (
                max_tokens_per_place is not None
                and successor.max_count() > max_tokens_per_place
            ):
                raise UnboundedNetError(
                    f"place bound {max_tokens_per_place} exceeded "
                    f"after firing {net.transition_name(transition)!r}"
                )
            known = successor in graph.index
            target = graph.add_state(successor)
            graph.add_edge(state, transition, target)
            if not known:
                if max_states is not None and graph.num_states > max_states:
                    raise UnboundedNetError(
                        f"state budget {max_states} exhausted; "
                        "net may be unbounded or too large"
                    )
                queue.append(target)
    return graph
