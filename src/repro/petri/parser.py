"""Plain Petri net text format (read/write).

STGs use the standard astg ``.g`` dialect (see :mod:`repro.stg.parser`); for
*unlabelled* nets the tests and examples use a small explicit dialect that
avoids the astg ambiguity between places and transitions:

.. code-block:: text

    .net buffer
    .places p0=1 p1 p2
    .transitions produce consume
    .arcs
    p0 produce
    produce p1
    p1 consume
    consume p2
    .end

``=k`` after a place name gives its initial token count (default 0).
Lines starting with ``#`` are comments.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import ParseError
from repro.petri.net import PetriNet


def parse_net(text: str) -> PetriNet:
    """Parse the explicit net dialect described in the module docstring."""
    net = PetriNet()
    mode = None
    saw_end = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if saw_end:
            raise ParseError("content after .end", line_no)
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            if directive == ".net":
                net.name = rest.strip() or net.name
                mode = None
            elif directive == ".places":
                for token in rest.split():
                    name, _, count = token.partition("=")
                    try:
                        tokens = int(count) if count else 0
                    except ValueError:
                        raise ParseError(
                            f"bad token count in {token!r}", line_no
                        ) from None
                    try:
                        net.add_place(name, tokens)
                    except Exception as exc:  # duplicate name, negative count
                        raise ParseError(str(exc), line_no) from exc
                mode = None
            elif directive == ".transitions":
                for token in rest.split():
                    try:
                        net.add_transition(token)
                    except Exception as exc:  # duplicate / clashing name
                        raise ParseError(str(exc), line_no) from exc
                mode = None
            elif directive == ".arcs":
                mode = "arcs"
            elif directive == ".end":
                saw_end = True
            else:
                raise ParseError(f"unknown directive {directive!r}", line_no)
            continue
        if mode != "arcs":
            raise ParseError(f"unexpected line {line!r}", line_no)
        parts = line.split()
        if len(parts) < 2:
            raise ParseError("arc line needs a source and at least one target", line_no)
        source, targets = parts[0], parts[1:]
        for target in targets:
            try:
                net.add_arc(source, target)
            except Exception as exc:  # NetStructureError with location info
                raise ParseError(str(exc), line_no) from exc
    if not saw_end:
        raise ParseError("missing .end")
    return net


def write_net(net: PetriNet) -> str:
    """Serialise ``net`` in the dialect accepted by :func:`parse_net`."""
    lines: List[str] = [f".net {net.name}"]
    initial = net.initial_marking
    place_tokens = []
    for index, place in enumerate(net.places):
        count = initial[index]
        place_tokens.append(f"{place}={count}" if count else place)
    lines.append(".places " + " ".join(place_tokens))
    lines.append(".transitions " + " ".join(net.transitions))
    lines.append(".arcs")
    for source, target, weight in net.arcs():
        for _ in range(weight):
            lines.append(f"{source} {target}")
    lines.append(".end")
    return "\n".join(lines) + "\n"
