"""Scalable-family sweeps (the "scalable examples" of the full version [9]).

For each family and size: state-space size vs prefix size, and the time of
each method.  The shape to reproduce: the state space grows exponentially in
the size parameter while the prefix grows polynomially, so the state-graph
methods hit a wall the unfolding/IP method does not (the paper's headline
memory argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.core import check_csc, check_usc
from repro.models.counterflow import counterflow_pipeline
from repro.models.ring import lazy_ring, token_ring
from repro.models.scalable import muller_pipeline, parallel_forks
from repro.stg.stategraph import build_state_graph
from repro.unfolding import unfold
from repro.utils.tables import format_table

#: family name -> (constructor, verdict of interest, sizes)
FAMILIES: Dict[str, tuple] = {
    "muller-pipeline": (muller_pipeline, "csc", (2, 4, 6, 8, 10)),
    "parallel-forks": (parallel_forks, "csc", (1, 2, 3, 4)),
    "token-ring": (token_ring, "usc", (2, 4, 6, 8)),
    "vme-chain": (lazy_ring, "csc", (1, 2, 3, 4)),
    "counterflow": (counterflow_pipeline, "csc", (2, 3, 4, 5)),
}


@dataclass
class ScalableRow:
    family: str
    size: int
    places: int
    states: int
    conditions: int
    events: int
    sg_time: float
    ip_time: float
    holds: bool


def scalable_rows(
    families: Optional[Sequence[str]] = None,
    max_states: int = 200_000,
) -> List[ScalableRow]:
    rows: List[ScalableRow] = []
    for family in families or list(FAMILIES):
        ctor, prop, sizes = FAMILIES[family]
        for size in sizes:
            stg = ctor(size)
            tracer = obs.get_tracer()
            with tracer.stopwatch("bench.scalable.sg") as sg_watch:
                graph = build_state_graph(stg, max_states=max_states)
                holds_sg = graph.has_usc() if prop == "usc" else graph.has_csc()
            sg_time = sg_watch.seconds

            with tracer.stopwatch("bench.scalable.ip") as ip_watch:
                prefix = unfold(stg)
                check = check_usc if prop == "usc" else check_csc
                report = check(prefix)
            ip_time = ip_watch.seconds
            assert report.holds == holds_sg, f"method disagreement on {family}({size})"

            rows.append(
                ScalableRow(
                    family=family,
                    size=size,
                    places=stg.net.num_places,
                    states=graph.num_states,
                    conditions=prefix.num_conditions,
                    events=prefix.num_events,
                    sg_time=sg_time,
                    ip_time=ip_time,
                    holds=report.holds,
                )
            )
    return rows


def run_scalable(families: Optional[Sequence[str]] = None) -> str:
    rows = scalable_rows(families)
    headers = [
        "family", "n", "S", "states", "B", "E", "SG[s]", "IP[s]", "verdict",
    ]
    body = [
        [
            r.family,
            r.size,
            r.places,
            r.states,
            r.conditions,
            r.events,
            f"{r.sg_time:.3f}",
            f"{r.ip_time:.3f}",
            "clean" if r.holds else "conflict",
        ]
        for r in rows
    ]
    return format_table(
        headers, body, title="Scalable families: state space vs prefix growth"
    )
