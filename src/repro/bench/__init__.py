"""Benchmark harnesses regenerating the paper's experimental material.

Each module produces the rows of one table/figure as plain data plus a
formatted text table; the ``benchmarks/`` directory wraps them in
pytest-benchmark entry points, and ``repro-stg bench`` prints Table 1
directly.
"""

from repro.bench.table1 import run_table1, table1_rows

__all__ = ["run_table1", "table1_rows"]
