"""The memory claim of Section 8.

The paper: "the memory requirements of our algorithm are very moderate: it
uses only O(|E|) memory besides that needed to store the prefix (in
contrast, Petrify was repeatedly swapping pages...)".

We make the claim measurable without OS-level instrumentation by counting
the dominant allocations of each method:

* state-graph method — number of reachable states (each stored marking);
* symbolic method — BDD nodes allocated by the manager;
* IP method — prefix size |B| + |E| plus the search's O(|E|) working set
  (the per-position masks; the recursion depth is |E| as well).

The shape to reproduce: the first two grow with the state space (exponential
in the concurrency degree), the third with the prefix (linear here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.context import SolverContext
from repro.models.scalable import muller_pipeline, parallel_forks
from repro.stg.stategraph import build_state_graph
from repro.unfolding import unfold
from repro.utils.tables import format_table


@dataclass
class MemoryRow:
    family: str
    size: int
    states: int                  # explicit method: stored markings
    bdd_nodes: Optional[int]     # symbolic method: allocated nodes
    prefix_size: int             # IP method: |B| + |E|
    solver_masks: int            # IP method working set: per-position masks


def memory_rows(max_size: int = 8, include_bdd: bool = True) -> List[MemoryRow]:
    rows: List[MemoryRow] = []
    for family, ctor, sizes in (
        ("muller-pipeline", muller_pipeline, (2, 4, 6, 8)),
        ("parallel-forks", parallel_forks, (1, 2, 3, 4)),
    ):
        for size in sizes:
            if size > max_size:
                continue
            stg = ctor(size)
            graph = build_state_graph(stg)
            prefix = unfold(stg)
            context = SolverContext(prefix)
            bdd_nodes = None
            if include_bdd and graph.num_states <= 600:
                from repro.stg.consistency import check_consistency
                from repro.symbolic.encoding import SymbolicSTG

                sym = SymbolicSTG(stg)
                sym.reachable(check_consistency(stg).initial_code)
                bdd_nodes = sym.manager.num_nodes
            rows.append(
                MemoryRow(
                    family=family,
                    size=size,
                    states=graph.num_states,
                    bdd_nodes=bdd_nodes,
                    prefix_size=prefix.num_conditions + prefix.num_events,
                    solver_masks=2 * context.num_vars,
                )
            )
    return rows


def run_memory() -> str:
    rows = memory_rows()
    headers = ["family", "n", "states", "BDD nodes", "|B|+|E|", "IP masks"]
    body = [
        [
            r.family,
            r.size,
            r.states,
            r.bdd_nodes if r.bdd_nodes is not None else "-",
            r.prefix_size,
            r.solver_masks,
        ]
        for r in rows
    ]
    return format_table(
        headers,
        body,
        title="Memory proxies: state-space methods vs the prefix/IP method",
    )
