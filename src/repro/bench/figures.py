"""Regeneration of the paper's Figures 1-3 as textual reports.

The figures are illustrative rather than plots; reproducing them means
re-deriving their *content* from our implementation:

* **Figure 1** — the VME bus STG and the CSC conflict between two states
  with code 10110 (order dsr, dtack, lds, ldtack, d), Out {lds} vs {d};
* **Figure 2** — its unfolding prefix (12 events, 1 cut-off labelled lds+)
  and the conflicting configuration pair with their Parikh vectors;
* **Figure 3** — the csc-resolved VME controller: CSC holds but signal
  ``csc`` is neither p- nor n-normal.
"""

from __future__ import annotations

from typing import List

from repro.core import check_csc, check_normalcy
from repro.models import vme_bus, vme_bus_csc_resolved
from repro.stg.stategraph import build_state_graph
from repro.unfolding import unfold

PAPER_SIGNAL_ORDER = ["dsr", "dtack", "lds", "ldtack", "d"]


def figure1_report() -> str:
    """The Figure 1 CSC conflict, recomputed from the explicit state graph."""
    stg = vme_bus()
    graph = build_state_graph(stg)
    indices = [stg.signals.index(s) for s in PAPER_SIGNAL_ORDER]
    lines = [
        "Figure 1: VME bus controller (read cycle)",
        f"  STG: |S|={stg.net.num_places} |T|={stg.net.num_transitions} "
        f"|Z|={len(stg.signals)}; state graph: {graph.num_states} states",
    ]
    for conflict in graph.csc_conflicts():
        code = "".join(str(conflict.code[i]) for i in indices)
        lines.append(
            f"  CSC conflict at code {code} "
            f"(order {','.join(PAPER_SIGNAL_ORDER)}): "
            f"Out={{{','.join(sorted(conflict.out_a))}}} vs "
            f"Out={{{','.join(sorted(conflict.out_b))}}}"
        )
    return "\n".join(lines)


def figure2_report() -> str:
    """The Figure 2 prefix and the conflicting Parikh-vector pair."""
    stg = vme_bus()
    prefix = unfold(stg)
    report = check_csc(prefix)
    lines = [
        "Figure 2: unfolding prefix of the VME bus controller",
        f"  |B|={prefix.num_conditions} |E|={prefix.num_events} "
        f"|E_cut|={prefix.num_cutoffs}",
        "  events: "
        + " ".join(
            f"e{e.index + 1}:{stg.net.transition_name(e.transition)}"
            + ("(cut-off)" if e.is_cutoff else "")
            for e in prefix.events
        ),
    ]
    witness = report.witness
    lines.append(
        f"  conflict pair: C' = [{', '.join(witness.trace_a)}], "
        f"C'' = [{', '.join(witness.trace_b)}]"
    )
    lines.append(
        f"  Out(Mark(C')) = {{{','.join(sorted(witness.out_a))}}}, "
        f"Out(Mark(C'')) = {{{','.join(sorted(witness.out_b))}}}"
    )
    return "\n".join(lines)


def figure3_report() -> str:
    """The Figure 3 normalcy violation for signal csc."""
    stg = vme_bus_csc_resolved()
    csc_report = check_csc(stg)
    normalcy = check_normalcy(stg)
    lines = [
        "Figure 3: VME controller with csc inserted",
        f"  CSC: {'holds' if csc_report.holds else 'violated'} "
        "(conflict resolved by the csc signal)",
        f"  normalcy: {'holds' if normalcy.normal else 'violated'} "
        f"for signals {normalcy.violating_signals()}",
    ]
    verdict = normalcy.per_signal.get("csc")
    if verdict is not None and not verdict.normal:
        lines.append(
            "  csc is neither p-normal nor n-normal "
            "(its set function dsr*(csc + ldtack') is non-monotonic: "
            "positive in dsr, negative in ldtack)"
        )
        lines.append(
            f"    p-violation after [{', '.join(verdict.p_witness.trace_a)}] vs "
            f"[{', '.join(verdict.p_witness.trace_b)}]"
        )
        lines.append(
            f"    n-violation after [{', '.join(verdict.n_witness.trace_a)}] vs "
            f"[{', '.join(verdict.n_witness.trace_b)}]"
        )
    return "\n".join(lines)


def run_figures() -> str:
    return "\n\n".join([figure1_report(), figure2_report(), figure3_report()])
