"""Ablations of the design choices called out in DESIGN.md.

Four switches are measured, each against the full configuration:

1. **MCC / partial-order propagation** (Theorem 1): the pair search with
   ``use_order_propagation=False`` validates compatibility only at the
   leaves — the behaviour of a solver that received the compatibility
   constraints but no structural knowledge.
2. **Signal-balance pruning** (the linear conflict constraint used as an
   interval bound).
3. **Proposition 1 / window search** on dynamically conflict-free STGs.
4. **Generic 0-1 ILP** (the explicit Section 3 system handed to the plain
   branch-and-bound of :mod:`repro.ilp`) vs the Section 4 search.

Reported metric: search nodes and wall time to settle the USC question.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import obs
from repro.core.context import SolverContext
from repro.core.ilp_encoding import check_usc_ilp
from repro.core.search import MODE_EQUAL, PairSearch
from repro.core.window import WindowSearch
from repro.exceptions import SolverLimitError
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding import unfold
from repro.utils.tables import format_table

#: Benchmarks small enough for the crippled configurations to finish.
DEFAULT_ABLATION_MODELS = (
    "RING",
    "DUP-4PH-A",
    "DUP-MOD-A",
    "LAZYRING",
    "CF-SYM-A-CSC",
    "CF-SYM-B-CSC",
)


@dataclass
class AblationRow:
    model: str
    variant: str
    nodes: Optional[int]
    elapsed: Optional[float]
    found_conflict: Optional[bool]


def ablation_rows(
    models: Sequence[str] = DEFAULT_ABLATION_MODELS,
    node_budget: int = 2_000_000,
) -> List[AblationRow]:
    rows: List[AblationRow] = []
    for name in models:
        stg = TABLE1_BENCHMARKS[name]()
        prefix = unfold(stg)
        context = SolverContext(prefix)
        nested = all(
            len(stg.net.place_postset(p)) <= 1 for p in range(stg.net.num_places)
        )

        variants = {}
        if nested:
            variants["window (full)"] = lambda: _run_window(context, node_budget)
        variants["pair search"] = lambda: _run_pair(
            context, nested, True, True, node_budget
        )
        variants["no balance pruning"] = lambda: _run_pair(
            context, nested, True, False, node_budget
        )
        variants["no order propagation"] = lambda: _run_pair(
            context, nested, False, True, node_budget
        )
        if nested:
            variants["no Prop.1 nesting"] = lambda: _run_pair(
                context, False, True, True, node_budget
            )
        variants["generic 0-1 ILP"] = lambda: _run_ilp(prefix, node_budget)

        for variant, runner in variants.items():
            try:
                with obs.get_tracer().stopwatch("bench.ablation") as watch:
                    nodes, found = runner()
                rows.append(AblationRow(name, variant, nodes, watch.seconds, found))
            except SolverLimitError:
                rows.append(AblationRow(name, variant, None, None, None))
    return rows


def _run_window(context: SolverContext, budget: int):
    search = WindowSearch(context, node_budget=budget)
    found = False
    for _closure, _window in search.solutions():
        found = True
        break
    return search.stats.nodes, found


def _run_pair(
    context: SolverContext,
    nested: bool,
    propagation: bool,
    balance: bool,
    budget: int,
):
    search = PairSearch(
        context,
        mode=MODE_EQUAL,
        nested_only=nested,
        use_order_propagation=propagation,
        use_balance_pruning=balance,
        node_budget=budget,
    )
    found = False
    for mask_a, mask_b in search.solutions():
        if context.marking_of(mask_a) != context.marking_of(mask_b):
            found = True
            break
    return search.stats.nodes, found


def _run_ilp(prefix, budget: int):
    holds, _witness, stats = check_usc_ilp(prefix, node_budget=budget)
    return stats.nodes, not holds


def run_ablation(models: Sequence[str] = DEFAULT_ABLATION_MODELS) -> str:
    rows = ablation_rows(models)
    headers = ["model", "variant", "nodes", "time[s]", "USC conflict"]
    body = []
    for row in rows:
        body.append(
            [
                row.model,
                row.variant,
                row.nodes if row.nodes is not None else "budget",
                f"{row.elapsed:.3f}" if row.elapsed is not None else "-",
                {True: "found", False: "none", None: "-"}[row.found_conflict],
            ]
        )
    return format_table(headers, body, title="Solver ablations (USC question)")
