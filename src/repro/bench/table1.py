"""Table 1: real-life STGs — sizes, prefix sizes, baseline vs IP times.

Reproduces the paper's experimental table.  Columns, as in the paper:

* ``Problem`` — benchmark name;
* ``S  T  Z`` — places / transitions / signals of the STG;
* ``B  E  E_c`` — conditions / events / cut-offs of the complete prefix;
* ``Pfy`` — the state-graph baseline (our BDD reimplementation of
  Petrify's conflict computation: it computes the characteristic function
  of *all* CSC conflicts, like the tool the paper instrumented);
* ``CLP`` — the paper's method: unfolding + integer programming, stopping
  at the first conflict (USC first, non-linear Out-filter for CSC).

Absolute times are incomparable with the paper's Pentium III/500; the
*shape* to check (EXPERIMENTS.md) is: conflict-carrying rows are nearly
instant for the IP method, conflict-free rows are its hard case, and the
state-graph baseline pays for the whole reachable state space (worst on the
concurrent conflict-free CF rows, where Petrify also struggled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import obs
from repro.core import check_csc, check_usc
from repro.models import TABLE1_BENCHMARKS
from repro.unfolding import unfold
from repro.utils.tables import format_table

#: Rows whose symbolic baseline run exceeds a few seconds (the exponential
#: state-space blow-up the paper describes); skipped unless include_slow.
SLOW_BASELINE_ROWS = {"CF-SYM-C-CSC", "CF-SYM-D-CSC", "CF-ASYM-B-CSC"}


@dataclass
class Table1Row:
    name: str
    places: int
    transitions: int
    signals: int
    conditions: int
    events: int
    cutoffs: int
    usc_holds: bool
    csc_holds: bool
    baseline_time: Optional[float]     # "Pfy" column (None = skipped)
    baseline_states: Optional[int]
    ip_time: float                     # "CLP" column
    search_nodes: int


def _measure_row(payload) -> Table1Row:
    """Measure one Table 1 row; also the ``table1-row`` pool runner."""
    name, include_slow, run_baseline = payload
    stg = TABLE1_BENCHMARKS[name]()
    stats = stg.stats()

    tracer = obs.get_tracer()
    with tracer.stopwatch("bench.table1.ip") as ip_watch:
        prefix = unfold(stg)
        usc = check_usc(prefix)
        csc = check_csc(prefix)
    ip_time = ip_watch.seconds

    baseline_time = None
    baseline_states = None
    if run_baseline and (include_slow or name not in SLOW_BASELINE_ROWS):
        from repro.symbolic import symbolic_check_both

        with tracer.stopwatch("bench.table1.baseline") as base_watch:
            _, csc_report = symbolic_check_both(stg)
        baseline_time = base_watch.seconds
        baseline_states = csc_report.num_states
        assert csc_report.holds == csc.holds, f"method disagreement on {name}"

    return Table1Row(
        name=name,
        places=stats["places"],
        transitions=stats["transitions"],
        signals=stats["signals"],
        conditions=prefix.num_conditions,
        events=prefix.num_events,
        cutoffs=prefix.num_cutoffs,
        usc_holds=usc.holds,
        csc_holds=csc.holds,
        baseline_time=baseline_time,
        baseline_states=baseline_states,
        ip_time=ip_time,
        search_nodes=csc.search_stats.nodes + usc.search_stats.nodes,
    )


from repro.engine.pool import register_runner as _register_runner

_register_runner("table1-row", _measure_row)


def table1_rows(
    names: Optional[List[str]] = None,
    include_slow: bool = False,
    run_baseline: bool = True,
    jobs: int = 1,
) -> List[Table1Row]:
    """Measure every requested Table 1 row and return structured results.

    With ``jobs > 1`` the rows are measured in parallel worker processes
    through :class:`repro.engine.pool.WorkerPool` (falling back to
    in-process execution where ``fork`` is unavailable).  Per-row times are
    still single-process measurements; only the wall clock of the whole
    table shrinks.
    """
    names = names or list(TABLE1_BENCHMARKS)
    if jobs and jobs > 1:
        return _table1_rows_pooled(names, include_slow, run_baseline, jobs)
    return [_measure_row((name, include_slow, run_baseline)) for name in names]


def _table1_rows_pooled(
    names: List[str], include_slow: bool, run_baseline: bool, jobs: int
) -> List[Table1Row]:
    from repro.engine.pool import Task, WorkerPool
    from repro.exceptions import ReproError

    with WorkerPool(max_workers=jobs) as pool:
        for name in names:
            pool.submit(
                Task(
                    task_id=name,
                    group=name,
                    runner="table1-row",
                    payload=(name, include_slow, run_baseline),
                )
            )
        outcomes = {outcome.task_id: outcome for outcome in pool.outcomes()}
    rows: List[Table1Row] = []
    for name in names:
        outcome = outcomes.get(name)
        if outcome is None or outcome.status != "ok":
            detail = outcome.error if outcome is not None else "no outcome"
            raise ReproError(f"table1 row {name} failed in the pool: {detail}")
        rows.append(outcome.value)
    return rows


def run_table1(
    include_slow: bool = False, run_baseline: bool = True, jobs: int = 1
) -> str:
    """Render the reproduction of Table 1 as a text table."""
    rows = table1_rows(
        include_slow=include_slow, run_baseline=run_baseline, jobs=jobs
    )
    headers = [
        "Problem", "S", "T", "Z", "B", "E", "E_c",
        "USC", "CSC", "states", "Pfy[s]", "CLP[s]",
    ]
    body = []
    for row in rows:
        body.append(
            [
                row.name,
                row.places,
                row.transitions,
                row.signals,
                row.conditions,
                row.events,
                row.cutoffs,
                "yes" if row.usc_holds else "no",
                "yes" if row.csc_holds else "no",
                row.baseline_states if row.baseline_states is not None else "-",
                f"{row.baseline_time:.3f}" if row.baseline_time is not None else "-",
                f"{row.ip_time:.3f}",
            ]
        )
    return format_table(
        headers,
        body,
        title="Table 1: real-life STGs (Pfy = BDD state-graph baseline, "
        "CLP = unfolding + integer programming)",
    )
