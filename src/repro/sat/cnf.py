"""CNF construction helpers: Tseitin gates and totalizer cardinality.

The SAT encoding of the conflict system needs, besides plain clauses, two
gadgets:

* **Tseitin definitions** — fresh variables equivalent to AND/OR/XOR of
  literals (used for the "the two vectors differ somewhere" constraint);
* **totalizers** (Bailleux-Boutaouf) — unary counters ``o_1..o_n`` over a
  set of input literals with ``o_j`` true iff at least ``j`` inputs are true,
  encoded in both directions so that *equality* of two counts can be stated
  literal-by-literal.  The conflict constraint ``Code(x') = Code(x'')``
  becomes, per signal ``s``: ``count(s+ in x') + count(s- in x'') ==
  count(s+ in x'') + count(s- in x')`` — two totalizers over disjoint input
  sets whose outputs are pinned pairwise equivalent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.sat.solver import CDCLSolver


class CNF:
    """A clause store with a fresh-variable allocator."""

    def __init__(self):
        self.num_vars = 0
        self.clauses: List[List[int]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add(self, clause: Iterable[int]) -> None:
        clause = list(clause)
        for lit in clause:
            self.num_vars = max(self.num_vars, abs(lit))
        self.clauses.append(clause)

    # -- Tseitin gates ---------------------------------------------------------

    def define_or(self, literals: Sequence[int]) -> int:
        """A fresh variable g with g <-> OR(literals)."""
        g = self.new_var()
        for lit in literals:
            self.add([-lit, g])
        self.add([-g] + list(literals))
        return g

    def define_and(self, literals: Sequence[int]) -> int:
        g = self.new_var()
        for lit in literals:
            self.add([-g, lit])
        self.add([g] + [-lit for lit in literals])
        return g

    def define_xor(self, a: int, b: int) -> int:
        g = self.new_var()
        self.add([-g, a, b])
        self.add([-g, -a, -b])
        self.add([g, -a, b])
        self.add([g, a, -b])
        return g

    def to_solver(self) -> CDCLSolver:
        solver = CDCLSolver(self.num_vars)
        for clause in self.clauses:
            solver.add_clause(clause)
        return solver


class Totalizer:
    """Unary counter over input literals with two-sided defining clauses.

    ``outputs[j-1]`` is true iff at least ``j`` inputs are true (both
    implications are encoded, so outputs can be constrained freely).
    """

    def __init__(self, cnf: CNF, inputs: Sequence[int]):
        self.cnf = cnf
        self.inputs = list(inputs)
        self.outputs: List[int] = self._build(self.inputs)

    def _build(self, literals: List[int]) -> List[int]:
        if len(literals) <= 1:
            return list(literals)
        mid = len(literals) // 2
        left = self._build(literals[:mid])
        right = self._build(literals[mid:])
        return self._merge(left, right)

    def _merge(self, a: List[int], b: List[int]) -> List[int]:
        p, q = len(a), len(b)
        outputs = self.cnf.new_vars(p + q)

        def out(j: int) -> int:
            return outputs[j - 1]

        for i in range(p + 1):
            for k in range(q + 1):
                if i + k >= 1:
                    # (a_i & b_k) -> o_{i+k}
                    clause = [out(i + k)]
                    if i >= 1:
                        clause.append(-a[i - 1])
                    if k >= 1:
                        clause.append(-b[k - 1])
                    self.cnf.add(clause)
                if i + k < p + q:
                    # o_{i+k+1} -> (a_{i+1} | b_{k+1})
                    clause = [-out(i + k + 1)]
                    if i < p:
                        clause.append(a[i])
                    if k < q:
                        clause.append(b[k])
                    self.cnf.add(clause)
        return outputs

    def at_most(self, bound: int) -> None:
        for j in range(bound + 1, len(self.outputs) + 1):
            self.cnf.add([-self.outputs[j - 1]])

    def at_least(self, bound: int) -> None:
        for j in range(1, min(bound, len(self.outputs)) + 1):
            self.cnf.add([self.outputs[j - 1]])
        if bound > len(self.outputs):
            self.cnf.add([])  # trivially unsatisfiable


def equalise_counts(cnf: CNF, a: Totalizer, b: Totalizer) -> None:
    """Pin the two unary counts equal, padding the shorter with falses."""
    width = max(len(a.outputs), len(b.outputs))
    for j in range(1, width + 1):
        lit_a = a.outputs[j - 1] if j <= len(a.outputs) else None
        lit_b = b.outputs[j - 1] if j <= len(b.outputs) else None
        if lit_a is None:
            cnf.add([-lit_b])
        elif lit_b is None:
            cnf.add([-lit_a])
        else:
            cnf.add([-lit_a, lit_b])
            cnf.add([lit_a, -lit_b])
