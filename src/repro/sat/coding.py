"""SAT encoding of the USC/CSC conflict systems (the MPSAT-style back-end).

Variables (per free prefix event ``e``): ``x'(e)`` and ``x''(e)``.  Clauses:

* **configuration constraints** — for every event and each of its direct
  causal predecessors ``p``: ``x(e) -> x(p)``; for every pair of direct
  conflicts (two consumers of one condition): ``not x(e) or not x(f)``.
  Inherited causality/conflict follows by propagation, so the direct
  relations suffice — the SAT analogue of Theorem 1;
* **cut-off constraints** — handled by restriction to free events, as in
  the IP core;
* **conflict constraint (2)** — per signal ``s``, the totalizer identity
  ``|s+ in x'| + |s- in x''| == |s+ in x''| + |s- in x'|``;
* **difference constraint** — at least one event differs between the two
  vectors (Tseitin XORs);
* the **non-linear separating constraints** (``Mark`` inequality, ``Out``
  inequality for CSC) are applied lazily: each model is decoded and
  checked on the STG; spurious candidates are blocked by a clause over the
  event variables and the solver re-runs — mirroring the paper's treatment
  of the constraints that do not fit the linear system.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.context import SolverContext
from repro.sat.cnf import CNF, Totalizer, equalise_counts
from repro.stg.stg import STG
from repro.unfolding.occurrence_net import Prefix
from repro.unfolding.unfolder import UnfoldingOptions, unfold


@dataclass
class SatCodingReport:
    """Outcome of a SAT-based USC/CSC check."""

    property_name: str
    holds: bool
    witness_traces: Optional[Tuple[List[str], List[str]]]
    num_vars: int
    num_clauses: int
    sat_conflicts: int
    candidates_blocked: int
    elapsed: float

    def __bool__(self) -> bool:
        return self.holds


def _build_encoding(context: SolverContext):
    """Returns (cnf, var_a, var_b) with all static constraints asserted."""
    cnf = CNF()
    n = context.num_vars
    var_a = cnf.new_vars(n)
    var_b = cnf.new_vars(n)

    for variables in (var_a, var_b):
        for i in range(n):
            # direct causal predecessors: x(e) -> x(p)
            rest = context.pred_pos[i]
            while rest:
                low = rest & -rest
                p = low.bit_length() - 1
                cnf.add([-variables[i], variables[p]])
                rest ^= low
        # direct conflicts: consumers of a shared condition
        prefix = context.prefix
        consumers_by_condition = {}
        for position in range(n):
            event = prefix.events[context.order[position]]
            for b in event.preset:
                consumers_by_condition.setdefault(b, []).append(position)
        for positions in consumers_by_condition.values():
            for i, e in enumerate(positions):
                for f in positions[i + 1:]:
                    cnf.add([-variables[e], -variables[f]])

    # conflict constraint (2) per signal, via totalizer count equality
    for s in range(context.num_signals):
        plus = [i for i in range(n) if context.signal_of[i] == s
                and context.delta_of[i] > 0]
        minus = [i for i in range(n) if context.signal_of[i] == s
                 and context.delta_of[i] < 0]
        if not plus and not minus:
            continue
        left = Totalizer(
            cnf, [var_a[i] for i in plus] + [var_b[i] for i in minus]
        )
        right = Totalizer(
            cnf, [var_b[i] for i in plus] + [var_a[i] for i in minus]
        )
        equalise_counts(cnf, left, right)

    # the two vectors must differ somewhere
    difference_bits = [
        cnf.define_xor(var_a[i], var_b[i]) for i in range(n)
    ]
    cnf.add(difference_bits)
    return cnf, var_a, var_b


def _check(
    source: Union[STG, Prefix],
    property_name: str,
    unfolding_options: Optional[UnfoldingOptions],
    max_candidates: int,
) -> SatCodingReport:
    started = time.perf_counter()
    prefix = source if isinstance(source, Prefix) else unfold(source, unfolding_options)
    context = SolverContext(prefix)
    cnf, var_a, var_b = _build_encoding(context)
    solver = cnf.to_solver()
    num_clauses = len(cnf.clauses)
    blocked = 0
    witness = None

    event_vars = var_a + var_b
    while True:
        result = solver.solve()
        if not result.satisfiable:
            break
        mask_a = sum(
            1 << i for i in range(context.num_vars) if result.model[var_a[i]]
        )
        mask_b = sum(
            1 << i for i in range(context.num_vars) if result.model[var_b[i]]
        )
        mark_a = context.marking_of(mask_a)
        mark_b = context.marking_of(mask_b)
        genuine = mark_a != mark_b
        if genuine and property_name == "csc":
            genuine = context.out_of(mark_a) != context.out_of(mark_b)
        if genuine:
            witness = (context.trace_of(mask_a), context.trace_of(mask_b))
            break
        blocked += 1
        if blocked > max_candidates:
            raise RuntimeError(
                "candidate budget exhausted while filtering separating "
                "constraints; raise max_candidates"
            )
        solver.add_clause(
            [(-v if result.model[v] else v) for v in event_vars]
        )

    return SatCodingReport(
        property_name=property_name.upper(),
        holds=witness is None,
        witness_traces=witness,
        num_vars=cnf.num_vars,
        num_clauses=num_clauses,
        sat_conflicts=solver.conflicts,
        candidates_blocked=blocked,
        elapsed=time.perf_counter() - started,
    )


def check_usc_sat(
    source: Union[STG, Prefix],
    unfolding_options: Optional[UnfoldingOptions] = None,
    max_candidates: int = 10_000,
) -> SatCodingReport:
    """USC check through the SAT back-end."""
    return _check(source, "usc", unfolding_options, max_candidates)


def check_csc_sat(
    source: Union[STG, Prefix],
    unfolding_options: Optional[UnfoldingOptions] = None,
    max_candidates: int = 10_000,
) -> SatCodingReport:
    """CSC check through the SAT back-end (USC-first, Out filtered lazily)."""
    return _check(source, "csc", unfolding_options, max_candidates)
