"""A from-scratch CDCL SAT solver and the SAT encoding of the conflict system.

Historically the paper's integer-programming approach evolved into the SAT
encodings of the MPSAT tool; this package reproduces that trajectory as an
extension: a conflict-driven clause-learning solver (two-watched literals,
first-UIP learning, VSIDS-style activities, geometric restarts) plus a CNF
encoding of the USC conflict system (configuration constraints from the
direct causality/conflict relations, code equality via totalizer-merged
cardinality constraints, and lazy blocking of spurious candidates for the
non-linear separating constraints).
"""

from repro.sat.solver import CDCLSolver, SatResult
from repro.sat.cnf import CNF, Totalizer
from repro.sat.coding import check_usc_sat, check_csc_sat, SatCodingReport

__all__ = [
    "CDCLSolver",
    "SatResult",
    "CNF",
    "Totalizer",
    "check_usc_sat",
    "check_csc_sat",
    "SatCodingReport",
]
