"""A compact conflict-driven clause-learning (CDCL) SAT solver.

Literals are non-zero integers in the DIMACS convention: ``+v`` is variable
``v`` true, ``-v`` false (variables are numbered from 1).  The solver
implements the standard modern loop:

* unit propagation over per-literal occurrence lists (full-clause status
  scans — simpler than two-watched literals, and fast enough at this
  library's problem sizes);
* first-UIP conflict analysis with clause learning and non-chronological
  backjumping;
* exponential-decay variable activities (VSIDS-lite) for branching, with
  phase saving;
* geometric restarts;
* incremental solving under assumptions, and model enumeration by blocking
  clauses (used by the coding-conflict checker to filter candidates against
  the non-linear separating constraints).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exceptions import SolverLimitError
from repro.obs import get_tracer


@dataclass
class SatResult:
    """Outcome of a solve call."""

    satisfiable: bool
    model: Optional[Dict[int, bool]]  # variable -> value (None if UNSAT)
    conflicts: int
    decisions: int
    propagations: int


class CDCLSolver:
    """A CDCL solver over variables ``1..num_vars``."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = num_vars
        self.clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._assign: List[int] = []     # var -> 0 unassigned / +1 true / -1 false
        self._level_of: List[int] = []   # var -> decision level
        self._reason: List[Optional[int]] = []  # var -> clause index or None
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._head = 0
        self._activity: List[float] = []
        self._phase: List[bool] = []
        self._activity_inc = 1.0
        self._resize(num_vars)
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self._unsat = False

    # -- construction --------------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._resize(self.num_vars)
        return self.num_vars

    def _resize(self, n: int) -> None:
        while len(self._assign) <= n:
            self._assign.append(0)
            self._level_of.append(0)
            self._reason.append(None)
            self._activity.append(0.0)
            self._phase.append(False)

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._unsat = True
            return
        for lit in clause:
            if abs(lit) > self.num_vars:
                self.num_vars = abs(lit)
        self._resize(self.num_vars)
        # tautology elimination
        for i in range(len(clause) - 1):
            if clause[i] == -clause[i + 1]:
                return
        index = len(self.clauses)
        self.clauses.append(clause)
        for lit in clause:
            self._watches.setdefault(-lit, []).append(index)
        # a clause added mid-search may already be unit or conflicting; the
        # next propagation pass re-examines it via the occurrence lists

    def _attach(self, clause: List[int], index: int) -> None:
        for lit in clause:
            self._watches.setdefault(-lit, []).append(index)

    # -- assignment plumbing --------------------------------------------------

    def _value(self, literal: int) -> int:
        """+1 true, -1 false, 0 unassigned (under the current assignment)."""
        value = self._assign[abs(literal)]
        return value if literal > 0 else -value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        var = abs(literal)
        if self._assign[var] != 0:
            return self._value(literal) > 0
        self._assign[var] = 1 if literal > 0 else -1
        self._level_of[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(literal)
        self._phase[var] = literal > 0
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation from the trail head; returns a conflicting clause
        index or None.  Uses occurrence lists (clauses containing the negation
        of each assigned literal) with full-clause status scans — simpler than
        two-watched literals and fast enough at this library's problem sizes.
        """
        while self._head < len(self._trail):
            literal = self._trail[self._head]
            self._head += 1
            self.propagations += 1
            for ci in self._watches.get(literal, ()):
                clause = self.clauses[ci]
                unit: Optional[int] = None
                status = "conflict"
                for candidate in clause:
                    value = self._value(candidate)
                    if value > 0:
                        status = "satisfied"
                        break
                    if value == 0:
                        if unit is None:
                            unit = candidate
                            status = "unit"
                        else:
                            status = "open"
                            break
                if status == "conflict":
                    return ci
                if status == "unit":
                    assert unit is not None
                    self._enqueue(unit, ci)
        return None

    # -- conflict analysis -------------------------------------------------------

    def _analyse(self, conflict_index: int) -> (List[int], int):
        """First-UIP learning: returns (learnt clause, backjump level)."""
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        literal: Optional[int] = None
        clause = list(self.clauses[conflict_index])
        current_level = len(self._trail_lim)
        index = len(self._trail) - 1

        while True:
            for q in clause:
                var = abs(q)
                if seen[var] or self._level_of[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level_of[var] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # find the next seen literal on the trail
            while not seen[abs(self._trail[index])]:
                index -= 1
            literal = self._trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(literal)]
            assert reason is not None
            clause = [q for q in self.clauses[reason] if q != literal]
            seen[abs(literal)] = False

        learnt.insert(0, -literal)
        if len(learnt) == 1:
            return learnt, 0
        backjump = max(self._level_of[abs(q)] for q in learnt[1:])
        return learnt, backjump

    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._activity_inc *= 1e-100

    def _decay(self) -> None:
        self._activity_inc /= 0.95

    # -- backtracking -----------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        for literal in reversed(self._trail[target:]):
            var = abs(literal)
            self._assign[var] = 0
            self._reason[var] = None
        del self._trail[target:]
        del self._trail_lim[level:]
        self._head = min(self._head, len(self._trail))

    def _decide(self) -> Optional[int]:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == 0 and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var == 0:
            return None
        return best_var if self._phase[best_var] else -best_var

    # -- main loop ----------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> SatResult:
        """Solve under the given assumption literals.

        With tracing enabled, each call's wall time accumulates into the
        ``sat.solve`` timer and its decision/conflict/propagation deltas
        into the ``sat.*`` counters (model enumeration calls many times —
        the timer's ``calls`` field counts the invocations).
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._solve(assumptions, conflict_budget)
        started = perf_counter()
        decisions0 = self.decisions
        conflicts0 = self.conflicts
        propagations0 = self.propagations
        try:
            return self._solve(assumptions, conflict_budget)
        finally:
            tracer.add_time("sat.solve", perf_counter() - started)
            tracer.incr("sat.decisions", self.decisions - decisions0)
            tracer.incr("sat.conflicts", self.conflicts - conflicts0)
            tracer.incr("sat.propagations", self.propagations - propagations0)

    def _solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: Optional[int] = None,
    ) -> SatResult:
        if self._unsat:
            return SatResult(False, None, self.conflicts, self.decisions, 0)
        self._cancel_until(0)
        self._head = 0
        conflict = self._propagate()
        if conflict is not None:
            return SatResult(False, None, self.conflicts, self.decisions,
                             self.propagations)
        restart_limit = 100
        conflicts_here = 0

        for assumption in assumptions:
            if self._value(assumption) < 0:
                return SatResult(False, None, self.conflicts, self.decisions,
                                 self.propagations)
            if self._value(assumption) == 0:
                self._trail_lim.append(len(self._trail))
                self._enqueue(assumption, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._cancel_until(0)
                    return SatResult(
                        False, None, self.conflicts, self.decisions,
                        self.propagations,
                    )
        assumption_level = len(self._trail_lim)

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if conflict_budget is not None and conflicts_here > conflict_budget:
                    raise SolverLimitError("SAT conflict budget exhausted")
                if len(self._trail_lim) <= assumption_level:
                    self._cancel_until(0)
                    return SatResult(
                        False, None, self.conflicts, self.decisions,
                        self.propagations,
                    )
                learnt, backjump = self._analyse(conflict)
                self._cancel_until(max(backjump, assumption_level))
                index = len(self.clauses)
                self.clauses.append(learnt)
                self._attach(learnt, index)
                self._enqueue(learnt[0], index)
                self._decay()
                if conflicts_here >= restart_limit:
                    restart_limit = int(restart_limit * 1.5)
                    self._cancel_until(assumption_level)
                continue
            decision = self._decide()
            if decision is None:
                model = {
                    v: self._assign[v] > 0 for v in range(1, self.num_vars + 1)
                }
                self._cancel_until(0)
                return SatResult(
                    True, model, self.conflicts, self.decisions,
                    self.propagations,
                )
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def enumerate_models(
        self,
        interesting: Sequence[int],
        limit: Optional[int] = None,
        conflict_budget: Optional[int] = None,
    ):
        """Yield models, blocking each projection onto ``interesting`` vars."""
        count = 0
        while True:
            result = self.solve(conflict_budget=conflict_budget)
            if not result.satisfiable:
                return
            yield result.model
            count += 1
            if limit is not None and count >= limit:
                return
            blocking = [
                (-v if result.model[v] else v) for v in interesting
            ]
            self.add_clause(blocking)
