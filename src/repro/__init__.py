"""Reproduction of "Detecting State Coding Conflicts in STGs Using Integer
Programming" (Khomenko, Koutny, Yakovlev; DATE 2002).

Public entry points:

* :func:`repro.core.check_usc` / :func:`repro.core.check_csc` /
  :func:`repro.core.check_normalcy` -- the paper's unfolding+IP method;
* :func:`repro.unfolding.unfold` -- complete-prefix construction;
* :mod:`repro.stg` -- STGs, consistency, the explicit state-graph baseline;
* :mod:`repro.symbolic` -- the BDD (Petrify-style) baseline;
* :mod:`repro.models` -- the benchmark suite, including the paper's VME
  controllers;
* :mod:`repro.bench` -- the experiment harness (Table 1 etc.).
"""

import logging

__version__ = "1.0.0"

__all__ = ["__version__"]

# Library logging convention: every module logs under the "repro." namespace
# and the package installs a NullHandler, so importing applications see no
# output unless they (or the CLI's --verbose flag) configure handlers.
logging.getLogger(__name__).addHandler(logging.NullHandler())
