"""The analysis driver: one :class:`FactBase` per canonical STG hash.

:func:`analyze` computes the whole-net structural facts (relations, traps,
siphons, trigger/lock structure) exactly once per STG content hash — an
in-process memo keyed by :meth:`repro.stg.stg.STG.content_hash` makes the
repeated calls from lint rules, the verifier's ``use_facts`` path and the
CLI free; an optional :class:`~repro.engine.cache.ResultCache` round-trips
the serialized facts across processes.  Everything is deterministic:
deterministic invariant bases (``petri.analysis._integer_kernel``),
index-ordered enumeration, sorted outputs.

Observability (all guarded, zero overhead untraced):

* span ``analysis.compute`` — fact computation wall time;
* counters ``analysis.runs``, ``analysis.facts``, ``analysis.cache_hits``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro import obs
from repro.analysis.facts import (
    FACT_DEAD_TRANSITION,
    FACT_LOCK,
    FACT_NEVER_COENABLED,
    FACT_SIPHON,
    FACT_STRUCTURAL_CONFLICT,
    FACT_TRAP,
    FACT_TRIGGER,
    Fact,
    _justification,
    verify_fact,
)
from repro.stg.stg import STG


@dataclass
class AnalysisOptions:
    """Budgets for the enumerative parts (relations are always complete)."""

    trap_max_size: int = 16
    trap_max_count: int = 32
    siphon_max_size: int = 16
    siphon_max_count: int = 32


@dataclass
class FactBase:
    """All structural facts of one STG, with derived relation views.

    The relation accessors are *sound over-approximations*: they answer
    "might this happen?" and only say no when a verified-style fact proves
    impossibility.  The facts themselves carry the proofs (see
    :mod:`repro.analysis.facts`).
    """

    stg_name: str
    content_hash: str
    facts: List[Fact] = field(default_factory=list)
    #: ``may_follow[t1]`` — transition names reachable from ``t1`` through
    #: the flow graph (derived causality over-approximation).
    may_follow: Dict[str, List[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._exclusive: Set[FrozenSet[str]] = set()
        self._conflicts: Set[FrozenSet[str]] = set()
        self._dead: Set[str] = set()
        for fact in self.facts:
            if fact.kind == FACT_NEVER_COENABLED:
                self._exclusive.add(frozenset(fact.subjects))
            elif fact.kind == FACT_STRUCTURAL_CONFLICT:
                self._conflicts.add(frozenset(fact.subjects))
            elif fact.kind == FACT_DEAD_TRANSITION:
                self._dead.add(fact.subjects[0])

    # -- relation views --------------------------------------------------------

    def of_kind(self, kind: str) -> List[Fact]:
        return [f for f in self.facts if f.kind == kind]

    def never_coenabled(self, t1: str, t2: str) -> bool:
        """Proven: no reachable marking enables both transitions."""
        if t1 in self._dead or t2 in self._dead:
            return True
        return frozenset((t1, t2)) in self._exclusive

    def may_be_coenabled(self, t1: str, t2: str) -> bool:
        """Sound over-approximation of simultaneous enabledness (and hence
        of concurrency): False only under a ``never-coenabled`` or
        ``dead-transition`` proof."""
        return not self.never_coenabled(t1, t2)

    def in_structural_conflict(self, t1: str, t2: str) -> bool:
        return frozenset((t1, t2)) in self._conflicts

    def is_dead(self, transition: str) -> bool:
        return transition in self._dead

    def may_cause(self, t1: str, t2: str) -> bool:
        """Sound over-approximation of "t2 can fire causally after t1"."""
        return t2 in self.may_follow.get(t1, ())

    def proves_dynamic_conflict_freeness(self) -> bool:
        """Every structural-conflict pair is proven never co-enabled.

        This is exactly the precondition of the paper's Proposition 1
        (Section 7): no reachable marking enables two transitions sharing
        an input place.  Conflict pairs are enumerated exhaustively by the
        builder, so coverage here is coverage of the net.
        """
        return all(
            pair & self._dead or pair in self._exclusive
            for pair in self._conflicts
        )

    # -- summaries & serialization ---------------------------------------------

    def counts(self) -> Dict[str, int]:
        result: Dict[str, int] = {}
        for fact in self.facts:
            result[fact.kind] = result.get(fact.kind, 0) + 1
        return result

    def verify_all(self, stg: STG) -> List[Fact]:
        """Replay every justification; the (hopefully empty) list of fakes."""
        return [f for f in self.facts if not verify_fact(stg, f)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stg_name": self.stg_name,
            "content_hash": self.content_hash,
            "facts": [f.to_dict() for f in self.facts],
            "may_follow": {k: list(v) for k, v in self.may_follow.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FactBase":
        return cls(
            stg_name=str(payload["stg_name"]),
            content_hash=str(payload["content_hash"]),
            facts=[Fact.from_dict(f) for f in payload.get("facts", [])],
            may_follow={
                str(k): [str(t) for t in v]
                for k, v in payload.get("may_follow", {}).items()
            },
        )


#: In-process memo: content hash -> FactBase (bounded FIFO).
_MEMO: "OrderedDict[str, FactBase]" = OrderedDict()
_MEMO_LIMIT = 64


def clear_memo() -> None:
    """Drop the in-process facts memo (tests)."""
    _MEMO.clear()


def analyze(
    stg: STG,
    options: Optional[AnalysisOptions] = None,
    cache: Optional[Any] = None,
) -> FactBase:
    """The FactBase of ``stg``, computed once per content hash.

    ``cache`` may be a :class:`repro.engine.cache.ResultCache`; computed
    facts are stored under the STG hash (schema-versioned) and later calls
    — including ones in other processes — load them back instead of
    recomputing.
    """
    key = stg.content_hash()
    hit = _MEMO.get(key)
    if hit is not None:
        obs.incr("analysis.cache_hits")
        return hit
    if cache is not None:
        payload = cache.get_facts(key)
        if payload is not None:
            facts = FactBase.from_dict(payload)
            obs.incr("analysis.cache_hits")
            _remember(key, facts)
            return facts
    with obs.trace("analysis.compute"):
        facts = _compute(stg, key, options or AnalysisOptions())
    obs.incr("analysis.runs")
    obs.incr("analysis.facts", len(facts.facts))
    _remember(key, facts)
    if cache is not None:
        cache.put_facts(key, facts.to_dict())
    return facts


def _remember(key: str, facts: FactBase) -> None:
    _MEMO[key] = facts
    while len(_MEMO) > _MEMO_LIMIT:
        _MEMO.popitem(last=False)


def _compute(stg: STG, content_hash: str, options: AnalysisOptions) -> FactBase:
    from repro.analysis import relations, structure, triggers

    net = stg.net
    facts: List[Fact] = []

    # structural conflicts (complete — the DCF proof quantifies over these)
    facts.extend(relations.structural_conflict_facts(net))

    # traps / siphons, then the dead transitions unmarked siphons imply
    traps = structure.minimal_traps(
        net, max_size=options.trap_max_size, max_count=options.trap_max_count
    )
    siphons = structure.minimal_siphons(
        net, max_size=options.siphon_max_size, max_count=options.siphon_max_count
    )
    initial = net.initial_marking
    for kind, sets in ((FACT_TRAP, traps), (FACT_SIPHON, siphons)):
        for places in sets:
            names = sorted(net.place_name(p) for p in places)
            marked = any(int(initial[p]) > 0 for p in places)
            word = "marked" if marked else "unmarked"
            noun = "trap" if kind == FACT_TRAP else "siphon"
            facts.append(
                Fact(
                    kind=kind,
                    subjects=tuple(names),
                    claim=f"minimal {word} {noun} {{{', '.join(names)}}}",
                    justification=_justification(
                        kind, places=names, marked=marked
                    ),
                )
            )
    dead_siphons = structure.unmarked_siphons(net, siphons)
    facts.extend(relations.dead_transition_facts(net, dead_siphons))

    # invariant exclusions for every structural-conflict pair plus every
    # same-signal pair (the autoconcurrency question lint asks about)
    pairs = sorted(
        set(relations.structural_conflict_pairs(net))
        | set(relations.same_signal_pairs(stg))
    )
    facts.extend(relations.never_coenabled_facts(net, pairs))

    # signal-edge trigger / lock structure
    facts.extend(triggers.trigger_facts(stg))
    facts.extend(triggers.lock_facts(stg))

    reach = relations.may_follow_relation(net)
    may_follow = {
        net.transition_name(t): sorted(net.transition_name(u) for u in reach[t])
        for t in range(net.num_transitions)
        if reach[t]
    }
    return FactBase(
        stg_name=stg.name,
        content_hash=content_hash,
        facts=facts,
        may_follow=may_follow,
    )
