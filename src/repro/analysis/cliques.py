"""Conflict-clique capacity tables for the branch-and-bound searches.

The searches bound the undecided suffix's possible contribution to a signal
balance by *counting* the remaining edges of that signal
(``SolverContext.suffix_plus`` / ``suffix_minus``).  But the contributing
positions — a difference window ``D = C'' \\ C'`` — always form a
*conflict-free* set, and the prefix's conflict relation proves many of the
counted positions mutually incompatible: a window can contain at most one
member of any clique of pairwise-conflicting events.

So, per ``(signal, polarity)``, we greedily cover the positions with
conflict cliques and replace the suffix count by the number of cliques that
still intersect the suffix: ``capacity[i][s] = #{cliques with a member at
position >= i}``.  This never exceeds the plain count (every clique is
non-empty), so the resulting bounds are at least as tight; it is sound
because any conflict-free choice picks at most one member per clique.  The
tables slot directly into the ``lim_pos``/``lim_neg`` intervals of
:class:`~repro.core.search.PairSearch` (nested mode) and
:class:`~repro.core.window.WindowSearch` — only *bounds* change, never the
branching order, so verdicts, witnesses and the solution stream stay
byte-identical (only dead subtrees are cut earlier).

On conflict-free prefixes (marked graphs) every clique is a singleton and
the capacities equal the suffix counts — the tables are then pure overhead,
which the benchmark harness's ``--facts`` axis makes visible.
"""

from __future__ import annotations

from typing import List, Tuple

#: ``(plus_capacity, minus_capacity)`` — each shaped like the suffix tables:
#: ``cap[i][s]`` bounds the positions ``>= i`` of signal ``s`` with the given
#: edge polarity that a conflict-free set can contain.
CapacityTables = Tuple[List[List[int]], List[List[int]]]


def conflict_clique_capacities(context) -> CapacityTables:
    """Greedy clique-cover capacities over ``context``'s conflict relation.

    ``context`` is a :class:`~repro.core.context.SolverContext` (or snapshot):
    only ``num_vars``, ``num_signals``, ``signal_of``, ``delta_of`` and
    ``conf_pos`` are touched.  Positions are scanned in branching order and
    joined to the first clique they fully conflict with, so the cover — and
    therefore the capacity tables — is deterministic.
    """
    num_vars = context.num_vars
    num_signals = context.num_signals
    signal_of = context.signal_of
    delta_of = context.delta_of
    conf_pos = context.conf_pos

    # cliques[(polarity>0)][signal] -> list of (member_mask, max_position)
    cliques: List[List[List[List[int]]]] = [
        [[] for _ in range(num_signals)] for _ in range(2)
    ]
    for position in range(num_vars):
        signal = signal_of[position]
        if signal is None:
            continue
        side = 1 if delta_of[position] > 0 else 0
        conflicts = conf_pos[position]
        bucket = cliques[side][signal]
        for clique in bucket:
            if conflicts & clique[0] == clique[0]:
                clique[0] |= 1 << position
                clique[1] = position
                break
        else:
            bucket.append([1 << position, position])

    def tables(side: int) -> List[List[int]]:
        cap = [[0] * num_signals for _ in range(num_vars + 1)]
        ends = [[0] * num_signals for _ in range(num_vars)]
        for signal in range(num_signals):
            for _, last in cliques[side][signal]:
                ends[last][signal] += 1
        for i in range(num_vars - 1, -1, -1):
            row = cap[i]
            nxt = cap[i + 1]
            for signal in range(num_signals):
                row[signal] = nxt[signal] + ends[i][signal]
        return cap

    return tables(1), tables(0)
