"""Transition-level relation facts: conflicts, exclusions, causality.

Builds the negative knowledge that refines the concurrency / conflict
over-approximations of the :class:`~repro.analysis.engine.FactBase`:

* ``structural-conflict`` facts: every pair of distinct transitions sharing
  an input place (enumerated exhaustively — the DCF proof needs coverage);
* ``never-coenabled`` facts: pairs excluded by a non-negative P-invariant
  ``y`` (``y^T I = 0``) whose budget ``y · M0`` cannot pay for the joint
  preset ``y · max(pre(t1), pre(t2))`` — the invariant-exclusion argument,
  which subsumes the classic "safe shared place" case;
* ``dead-transition`` facts from initially unmarked siphons (the trap/siphon
  refinement: a dead transition kills every conflict pair it appears in);
* the *may-follow* causal reach relation (transitive closure of the
  transition graph ``t1 → p → t2``), a derived over-approximation used by
  the trigger analysis and diagnostics — kept as a relation, not as facts,
  because only refutations carry justifications.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.facts import (
    FACT_DEAD_TRANSITION,
    FACT_NEVER_COENABLED,
    FACT_STRUCTURAL_CONFLICT,
    Fact,
    _justification,
)
from repro.petri.net import PetriNet
from repro.stg.stg import STG


def structural_conflict_facts(net: PetriNet) -> List[Fact]:
    """All distinct consumer pairs of every multi-consumer place."""
    facts: List[Fact] = []
    seen: Set[Tuple[int, int]] = set()
    for p in range(net.num_places):
        consumers = sorted(net.place_postset(p))
        for i, t1 in enumerate(consumers):
            for t2 in consumers[i + 1:]:
                if (t1, t2) in seen:
                    continue
                seen.add((t1, t2))
                n1, n2 = net.transition_name(t1), net.transition_name(t2)
                place = net.place_name(p)
                facts.append(
                    Fact(
                        kind=FACT_STRUCTURAL_CONFLICT,
                        subjects=(n1, n2),
                        claim=f"{n1} and {n2} compete for place {place}",
                        justification=_justification(
                            FACT_STRUCTURAL_CONFLICT,
                            transitions=[n1, n2],
                            place=place,
                        ),
                    )
                )
    return facts


def _nonneg_invariants(net: PetriNet) -> List[np.ndarray]:
    """Sign-definite basis P-invariants, flipped non-negative."""
    from repro.petri.analysis import place_invariants

    result = []
    for vector in place_invariants(net):
        if (vector >= 0).all():
            result.append(vector)
        elif (vector <= 0).all():
            result.append(-vector)
    return result


def never_coenabled_facts(
    net: PetriNet, pairs: List[Tuple[int, int]]
) -> List[Fact]:
    """Invariant exclusions for the given transition pairs.

    For each pair the first (basis order) non-negative P-invariant whose
    initial budget cannot cover the joint preset yields a fact.  Pairs the
    basis cannot separate get a second chance: an exact-rational LP searches
    the full invariant cone for a separating ``y`` (see
    :func:`_lp_exclusion_invariant`), scaled back to integers so the
    resulting fact still verifies by pure integer arithmetic.  Pairs with no
    separating invariant at all are skipped — they may still be dynamically
    exclusive; the relation is an over-approximation either way.
    """
    invariants = _nonneg_invariants(net)
    initial = net.initial_marking
    budgets = [
        sum(int(y[p]) * int(initial[p]) for p in range(net.num_places))
        for y in invariants
    ]
    facts: List[Fact] = []
    for t1, t2 in pairs:
        joint: Dict[int, int] = dict(net.preset(t1))
        for p, w in net.preset(t2).items():
            joint[p] = max(joint.get(p, 0), w)
        witness: Optional[List[int]] = None
        for y, budget in zip(invariants, budgets):
            needed = sum(int(y[p]) * w for p, w in joint.items())
            if needed > budget:
                witness = [int(v) for v in y]
                break
        if witness is None:
            witness = _lp_exclusion_invariant(net, joint)
        if witness is None:
            continue
        budget = sum(
            witness[p] * int(initial[p]) for p in range(net.num_places)
        )
        needed = sum(witness[p] * w for p, w in joint.items())
        n1, n2 = net.transition_name(t1), net.transition_name(t2)
        facts.append(
            Fact(
                kind=FACT_NEVER_COENABLED,
                subjects=(n1, n2),
                claim=(
                    f"{n1} and {n2} are never co-enabled "
                    f"(P-invariant budget {budget} < joint preset "
                    f"cost {needed})"
                ),
                justification=_justification(
                    FACT_NEVER_COENABLED,
                    transitions=[n1, n2],
                    places=list(net.places),
                    invariant=witness,
                ),
            )
        )
    return facts


def _lp_exclusion_invariant(
    net: PetriNet, joint: Dict[int, int]
) -> Optional[List[int]]:
    """A separating invariant from the full cone, as integers.

    Feasibility of ``y >= 0, y^T I = 0, y·joint >= y·M0 + 1`` over the
    rationals yields an invariant whose budget is strictly below the joint
    preset cost; scaling by the common denominator keeps the strict
    inequality, so the returned integer vector passes the independent
    :func:`repro.analysis.facts.verify_fact` replay.  ``None`` when the cone
    holds no separator (or the solution fails the exact recheck).
    """
    from math import gcd

    from repro.lp import LinearProgram, solve_lp

    num_places = net.num_places
    from repro.petri.incidence import incidence_matrix

    incidence = incidence_matrix(net)
    constraints = []
    for t in range(net.num_transitions):
        column = [int(incidence[p, t]) for p in range(num_places)]
        if any(column):
            constraints.append((column, "==", 0))
    initial = net.initial_marking
    gap = [joint.get(p, 0) - int(initial[p]) for p in range(num_places)]
    if not any(gap):
        return None
    constraints.append((gap, ">=", 1))
    result = solve_lp(LinearProgram.feasibility(num_places, constraints))
    if not result.feasible or result.solution is None:
        return None
    scale = 1
    for value in result.solution:
        scale = scale * value.denominator // gcd(scale, value.denominator)
    witness = [int(value * scale) for value in result.solution]
    # exact integer recheck (defence against any simplex slip)
    if any(v < 0 for v in witness):
        return None
    for t in range(net.num_transitions):
        if sum(witness[p] * int(incidence[p, t]) for p in range(num_places)):
            return None
    needed = sum(witness[p] * w for p, w in joint.items())
    budget = sum(witness[p] * int(initial[p]) for p in range(num_places))
    if needed <= budget:
        return None
    return witness


def dead_transition_facts(
    net: PetriNet, unmarked_siphons: List[FrozenSet[int]]
) -> List[Fact]:
    """Transitions fed by an initially unmarked siphon never fire."""
    facts: List[Fact] = []
    claimed: Set[int] = set()
    for siphon in sorted(unmarked_siphons, key=lambda s: (len(s), sorted(s))):
        names = sorted(net.place_name(p) for p in siphon)
        for t in range(net.num_transitions):
            if t in claimed:
                continue
            if any(p in siphon for p in net.preset(t)):
                claimed.add(t)
                name = net.transition_name(t)
                facts.append(
                    Fact(
                        kind=FACT_DEAD_TRANSITION,
                        subjects=(name,),
                        claim=(
                            f"{name} is dead: its preset meets the "
                            f"unmarked siphon {{{', '.join(names)}}}"
                        ),
                        justification=_justification(
                            FACT_DEAD_TRANSITION,
                            transition=name,
                            siphon=names,
                        ),
                    )
                )
    return facts


def may_follow_relation(net: PetriNet) -> List[Set[int]]:
    """Transitive closure of the transition graph ``t1 → p → t2``.

    ``result[t1]`` is the set of transitions reachable from ``t1`` through
    the net's flow arcs — a sound over-approximation of "some firing of
    ``t2`` is causally after some firing of ``t1``".
    """
    direct: List[Set[int]] = [set() for _ in range(net.num_transitions)]
    for t in range(net.num_transitions):
        for p in net.postset(t):
            direct[t].update(net.place_postset(p))
    # iterative closure (nets are small; |T|^2 bitsets would be overkill)
    reach = [set(s) for s in direct]
    changed = True
    while changed:
        changed = False
        for t in range(net.num_transitions):
            extension: Set[int] = set()
            for u in reach[t]:
                extension |= reach[u]
            if not extension <= reach[t]:
                reach[t] |= extension
                changed = True
    return reach


def structural_conflict_pairs(net: PetriNet) -> List[Tuple[int, int]]:
    """Index pairs (sorted, deduplicated) sharing an input place."""
    pairs: Set[Tuple[int, int]] = set()
    for p in range(net.num_places):
        consumers = sorted(net.place_postset(p))
        for i, t1 in enumerate(consumers):
            for t2 in consumers[i + 1:]:
                pairs.add((t1, t2))
    return sorted(pairs)


def same_signal_pairs(stg: STG) -> List[Tuple[int, int]]:
    """Distinct transition pairs labelled by the same signal (either edge)."""
    pairs: List[Tuple[int, int]] = []
    for signal in stg.signals:
        transitions = sorted(stg.transitions_of(signal))
        for i, t1 in enumerate(transitions):
            for t2 in transitions[i + 1:]:
                pairs.append((t1, t2))
    return pairs
