"""Traps and siphons via the standard iterated-pruning fixpoint.

A *trap* is a place set ``S`` with ``S• ⊆ •S``: every transition consuming
from ``S`` also produces into it, so a marked trap can never be emptied.  A
*siphon* is the dual (``•S ⊆ S•``): every producer also consumes, so an
unmarked siphon stays empty forever — which kills every transition fed by
it.  Both closure operators are computed by the classical fixpoint: start
from a candidate set and repeatedly discard places that violate the
condition; what survives is the *maximal* trap (siphon) inside the seed.

Minimal traps/siphons are found by greedy shrinking: for each place ``p``
still contained in the maximal fixpoint, repeatedly re-run the fixpoint on
the set minus one other place while ``p`` survives.  The result is
inclusion-minimal among traps (siphons) containing ``p``.  Everything is
iterated in index order, so the output is deterministic; ``max_size`` /
``max_count`` budgets bound the enumeration on large nets.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set

from repro.petri.net import PetriNet


def maximal_trap(net: PetriNet, seed: Set[int]) -> Set[int]:
    """The largest trap contained in ``seed`` (possibly empty)."""
    current = set(seed)
    changed = True
    while changed:
        changed = False
        for p in sorted(current):
            ok = True
            for t in net.place_postset(p):  # consumers of p
                if not any(q in current for q in net.postset(t)):
                    ok = False
                    break
            if not ok:
                current.discard(p)
                changed = True
    return current


def maximal_siphon(net: PetriNet, seed: Set[int]) -> Set[int]:
    """The largest siphon contained in ``seed`` (possibly empty)."""
    current = set(seed)
    changed = True
    while changed:
        changed = False
        for p in sorted(current):
            ok = True
            for t in net.place_preset(p):  # producers of p
                if not any(q in current for q in net.preset(t)):
                    ok = False
                    break
            if not ok:
                current.discard(p)
                changed = True
    return current


def is_trap(net: PetriNet, places: Set[int]) -> bool:
    return bool(places) and maximal_trap(net, places) == places


def is_siphon(net: PetriNet, places: Set[int]) -> bool:
    return bool(places) and maximal_siphon(net, places) == places


def _minimal_containing(net: PetriNet, fixpoint, keep: int, start: Set[int]) -> Set[int]:
    """Shrink ``start`` to an inclusion-minimal trap/siphon containing
    ``keep`` by retrying the fixpoint with one place removed at a time."""
    current = set(start)
    progress = True
    while progress:
        progress = False
        for q in sorted(current):
            if q == keep:
                continue
            smaller = fixpoint(net, current - {q})
            if keep in smaller and smaller:
                current = smaller
                progress = True
                break
    return current


def _minimal_sets(
    net: PetriNet, fixpoint, max_size: int, max_count: int
) -> List[FrozenSet[int]]:
    base = fixpoint(net, set(range(net.num_places)))
    found: List[FrozenSet[int]] = []
    seen: Set[FrozenSet[int]] = set()
    for p in sorted(base):
        candidate = frozenset(_minimal_containing(net, fixpoint, p, base))
        if candidate in seen or len(candidate) > max_size:
            continue
        seen.add(candidate)
        found.append(candidate)
        if len(found) >= max_count:
            break
    return found


def minimal_traps(
    net: PetriNet, max_size: int = 16, max_count: int = 32
) -> List[FrozenSet[int]]:
    """Inclusion-minimal traps containing each place, deduplicated, capped."""
    return _minimal_sets(net, maximal_trap, max_size, max_count)


def minimal_siphons(
    net: PetriNet, max_size: int = 16, max_count: int = 32
) -> List[FrozenSet[int]]:
    """Inclusion-minimal siphons containing each place, deduplicated, capped."""
    return _minimal_sets(net, maximal_siphon, max_size, max_count)


def unmarked_siphons(net: PetriNet, siphons: List[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """The initially token-free ones (these stay empty forever)."""
    initial = net.initial_marking
    return [s for s in siphons if all(int(initial[p]) == 0 for p in s)]
