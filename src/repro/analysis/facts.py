"""The fact data model and its independent checker.

A :class:`Fact` is one piece of *negative* structural knowledge about an STG
— "these two transitions are never co-enabled", "these places form a trap" —
together with a machine-checkable justification.  Facts follow the same
philosophy as :mod:`repro.lint.certificates`: nothing asks to be trusted.
Every justification is a JSON-safe dict an independent checker
(:func:`verify_fact`) can replay against the STG with exact integer
arithmetic; identity is bound by embedding the full name lists the claim
quantifies over, so a fact cannot be verified against the wrong net.

Fact kinds and their justifications:

``never-coenabled``
    Transitions ``t1, t2`` are never simultaneously enabled at any reachable
    marking.  Justification: a non-negative integer place vector ``y`` with
    ``y^T I = 0`` (a P-invariant) and ``y · max(pre(t1), pre(t2)) > y · M0``.
    Any reachable ``M`` has ``y · M = y · M0``; co-enabling would require
    ``M >= max(pre(t1), pre(t2))`` pointwise, contradiction.

``structural-conflict``
    ``t1, t2`` share the named input place (a potential choice).

``trap`` / ``siphon``
    The named place set ``S`` satisfies ``S• ⊆ •S`` (every consumer of a
    place in ``S`` also produces into ``S``) — dually ``•S ⊆ S•`` for
    siphons — plus the claimed initial markedness.  A marked trap stays
    marked forever; an unmarked siphon stays empty forever.

``dead-transition``
    The transition has an input place inside an initially unmarked siphon,
    hence can never become enabled.

``trigger`` / ``lock``
    Edge-level enabling structure: a transition of the first signal edge
    produces into (trigger) or competes for (lock) an input place of a
    transition of the second edge.  Justification names the witnessing
    transition pair and place.

``conflict-core``
    A replayable shrunk witness: firing ``base`` from the initial marking
    and then ``window`` stays enabled, the window's signal-change vector
    vanishes, and the two end markings differ (USC) — with differing
    output-excitation sets for CSC cores.

The soundness contract: a fact whose justification passes
:func:`verify_fact` is true of the net, unconditionally.  Advisory claims
that the checker does *not* establish (e.g. minimality of a trap) live only
in the human-readable ``claim`` string, never in the justification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.stg.stg import STG

#: Bump when a justification payload layout changes.
FACT_VERSION = 1

FACT_NEVER_COENABLED = "never-coenabled"
FACT_STRUCTURAL_CONFLICT = "structural-conflict"
FACT_TRAP = "trap"
FACT_SIPHON = "siphon"
FACT_DEAD_TRANSITION = "dead-transition"
FACT_TRIGGER = "trigger"
FACT_LOCK = "lock"
FACT_CONFLICT_CORE = "conflict-core"

FACT_KINDS = (
    FACT_NEVER_COENABLED,
    FACT_STRUCTURAL_CONFLICT,
    FACT_TRAP,
    FACT_SIPHON,
    FACT_DEAD_TRANSITION,
    FACT_TRIGGER,
    FACT_LOCK,
    FACT_CONFLICT_CORE,
)


@dataclass(frozen=True)
class Fact:
    """One structural fact with its machine-checkable justification."""

    kind: str
    #: Names of the net/STG elements the fact is about (render order).
    subjects: Tuple[str, ...]
    #: One-line human-readable statement (may carry advisory qualifiers).
    claim: str
    #: JSON-safe payload replayed by :func:`verify_fact`.
    justification: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "subjects": list(self.subjects),
            "claim": self.claim,
            "justification": dict(self.justification),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Fact":
        return cls(
            kind=str(payload["kind"]),
            subjects=tuple(payload["subjects"]),
            claim=str(payload["claim"]),
            justification=dict(payload.get("justification", {})),
        )


def _justification(kind: str, **payload: Any) -> Dict[str, Any]:
    """The standard envelope every builder uses."""
    return {"kind": kind, "version": FACT_VERSION, **payload}


# -- the independent checker ---------------------------------------------------


def verify_fact(stg: STG, fact: Fact) -> bool:
    """Replay ``fact``'s justification against ``stg``.

    True iff the claim checks out under exact integer arithmetic.  Like
    :func:`repro.lint.certificates.verify_certificate` this is deliberately
    independent of the builders: it recomputes everything from the net.
    """
    just = fact.justification
    if not isinstance(just, dict):
        return False
    if just.get("version") != FACT_VERSION or just.get("kind") != fact.kind:
        return False
    checker = _CHECKERS.get(fact.kind)
    if checker is None:
        return False
    try:
        return checker(stg, fact)
    except (KeyError, IndexError, TypeError, ValueError):
        return False


def _name_indices(names: List[str], universe: List[str]) -> List[int]:
    """Map names to indices in ``universe`` (raises KeyError on strangers)."""
    index = {name: i for i, name in enumerate(universe)}
    return [index[name] for name in names]


def _check_never_coenabled(stg: STG, fact: Fact) -> bool:
    from repro.petri.incidence import incidence_matrix

    just = fact.justification
    net = stg.net
    if just.get("places") != list(net.places):
        return False
    t1, t2 = _name_indices(list(just["transitions"]), list(net.transitions))
    if t1 == t2:
        return False
    invariant = [int(v) for v in just["invariant"]]
    if len(invariant) != net.num_places or any(v < 0 for v in invariant):
        return False
    if not any(invariant):
        return False
    incidence = incidence_matrix(net)
    for t in range(net.num_transitions):
        if sum(invariant[p] * int(incidence[p, t]) for p in range(net.num_places)):
            return False  # not a P-invariant
    pre1, pre2 = net.preset(t1), net.preset(t2)
    joint = {p: w for p, w in pre1.items()}
    for p, w in pre2.items():
        joint[p] = max(joint.get(p, 0), w)
    needed = sum(invariant[p] * w for p, w in joint.items())
    initial = net.initial_marking
    budget = sum(invariant[p] * int(initial[p]) for p in range(net.num_places))
    return needed > budget


def _check_structural_conflict(stg: STG, fact: Fact) -> bool:
    just = fact.justification
    net = stg.net
    t1, t2 = _name_indices(list(just["transitions"]), list(net.transitions))
    if t1 == t2:
        return False
    (p,) = _name_indices([just["place"]], list(net.places))
    return p in net.preset(t1) and p in net.preset(t2)


def _check_trap(stg: STG, fact: Fact) -> bool:
    just = fact.justification
    net = stg.net
    places = set(_name_indices(list(just["places"]), list(net.places)))
    if not places:
        return False
    for p in places:
        for t in net.place_postset(p):  # consumers of p
            if not any(q in places for q in net.postset(t)):
                return False
    marked = any(int(net.initial_marking[p]) > 0 for p in places)
    return bool(just["marked"]) == marked


def _check_siphon(stg: STG, fact: Fact) -> bool:
    just = fact.justification
    net = stg.net
    places = set(_name_indices(list(just["places"]), list(net.places)))
    if not places:
        return False
    for p in places:
        for t in net.place_preset(p):  # producers of p
            if not any(q in places for q in net.preset(t)):
                return False
    marked = any(int(net.initial_marking[p]) > 0 for p in places)
    return bool(just["marked"]) == marked


def _check_dead_transition(stg: STG, fact: Fact) -> bool:
    just = fact.justification
    net = stg.net
    (t,) = _name_indices([just["transition"]], list(net.transitions))
    places = set(_name_indices(list(just["siphon"]), list(net.places)))
    if not places:
        return False
    # the named set must be a genuinely unmarked siphon ...
    for p in places:
        if int(net.initial_marking[p]) > 0:
            return False
        for producer in net.place_preset(p):
            if not any(q in places for q in net.preset(producer)):
                return False
    # ... feeding the transition: it then never gains a token to consume
    return any(p in places for p in net.preset(t))


def _check_edge_pair(stg: STG, fact: Fact, trigger: bool) -> bool:
    just = fact.justification
    net = stg.net
    t1, t2 = _name_indices(list(just["transitions"]), list(net.transitions))
    (p,) = _name_indices([just["place"]], list(net.places))
    e1, e2 = just["edges"]
    label1, label2 = stg.label(t1), stg.label(t2)
    if label1 is None or label2 is None:
        return False
    if str(label1) != e1 or str(label2) != e2:
        return False
    if trigger:
        return p in net.postset(t1) and p in net.preset(t2)
    return t1 != t2 and p in net.preset(t1) and p in net.preset(t2)


def _check_trigger(stg: STG, fact: Fact) -> bool:
    return _check_edge_pair(stg, fact, trigger=True)


def _check_lock(stg: STG, fact: Fact) -> bool:
    return _check_edge_pair(stg, fact, trigger=False)


def _check_conflict_core(stg: STG, fact: Fact) -> bool:
    just = fact.justification
    net = stg.net
    prop = just["property"]
    if prop not in ("usc", "csc"):
        return False
    base = [str(t) for t in just["base"]]
    window = [str(t) for t in just["window"]]
    if not window:
        return False
    from repro.exceptions import ReproError

    try:
        marking = net.initial_marking
        for name in base:
            marking = net.fire_by_name(marking, name)
        mark_a = marking
        for name in window:
            marking = net.fire_by_name(marking, name)
        mark_b = marking
    except ReproError:
        return False  # not replayable
    # the window must be code-balanced (equal codes at both end markings)
    balance = [0] * len(stg.signals)
    for name in window:
        signal, delta = stg.signal_change(net.transition_index(name))
        if signal is not None:
            balance[signal] += delta
    if any(balance):
        return False
    if mark_a == mark_b:
        return False
    if prop == "csc":
        from repro.stg.nextstate import enabled_outputs

        if enabled_outputs(stg, mark_a, weak=True) == enabled_outputs(
            stg, mark_b, weak=True
        ):
            return False
    return True


_CHECKERS = {
    FACT_NEVER_COENABLED: _check_never_coenabled,
    FACT_STRUCTURAL_CONFLICT: _check_structural_conflict,
    FACT_TRAP: _check_trap,
    FACT_SIPHON: _check_siphon,
    FACT_DEAD_TRANSITION: _check_dead_transition,
    FACT_TRIGGER: _check_trigger,
    FACT_LOCK: _check_lock,
    FACT_CONFLICT_CORE: _check_conflict_core,
}
