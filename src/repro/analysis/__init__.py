"""repro.analysis — the structural facts engine (docs/analysis.md).

Computes, once per canonical STG hash, a :class:`FactBase` of whole-net
structural facts: concurrency/conflict/causality relation
over-approximations refined by place invariants and trap/siphon arguments,
minimal traps and siphons, signal trigger/lock structure, and conflict-core
extraction for verifier witnesses.  Every fact carries a machine-checkable
justification replayed by the independent :func:`verify_fact` — the same
no-trust contract as :mod:`repro.lint.certificates`.

Consumers: the ``A4xx`` lint tier (:mod:`repro.lint.rules_analysis`), the
``use_facts=`` search path of :mod:`repro.core.verifier`, and the
``repro-stg analyze`` CLI subcommand.
"""

from repro.analysis.cliques import conflict_clique_capacities
from repro.analysis.cores import ConflictCore, extract_core
from repro.analysis.engine import (
    AnalysisOptions,
    FactBase,
    analyze,
    clear_memo,
)
from repro.analysis.facts import (
    FACT_CONFLICT_CORE,
    FACT_DEAD_TRANSITION,
    FACT_KINDS,
    FACT_LOCK,
    FACT_NEVER_COENABLED,
    FACT_SIPHON,
    FACT_STRUCTURAL_CONFLICT,
    FACT_TRAP,
    FACT_TRIGGER,
    FACT_VERSION,
    Fact,
    verify_fact,
)
from repro.analysis.structure import (
    is_siphon,
    is_trap,
    maximal_siphon,
    maximal_trap,
    minimal_siphons,
    minimal_traps,
)

__all__ = [
    "AnalysisOptions",
    "ConflictCore",
    "FACT_CONFLICT_CORE",
    "FACT_DEAD_TRANSITION",
    "FACT_KINDS",
    "FACT_LOCK",
    "FACT_NEVER_COENABLED",
    "FACT_SIPHON",
    "FACT_STRUCTURAL_CONFLICT",
    "FACT_TRAP",
    "FACT_TRIGGER",
    "FACT_VERSION",
    "Fact",
    "FactBase",
    "analyze",
    "clear_memo",
    "conflict_clique_capacities",
    "extract_core",
    "is_siphon",
    "is_trap",
    "maximal_siphon",
    "maximal_trap",
    "minimal_siphons",
    "minimal_traps",
    "verify_fact",
]
