"""Signal-edge trigger/lock relations — the raw material of CSC reasoning.

An edge ``e1`` *triggers* ``e2`` when some transition labelled ``e1``
produces into an input place of some transition labelled ``e2``: firing
``e1`` can (help) enable ``e2``.  Two edges are *locked* when transitions
carrying them compete for a common input place: firing one can disable the
other.  Both relations are purely structural (no reachability), one fact
per edge pair with the first witnessing transition pair and place attached.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.facts import FACT_LOCK, FACT_TRIGGER, Fact, _justification
from repro.stg.stg import STG


def _edge_transitions(stg: STG) -> List[Tuple[str, int]]:
    """``(edge token, transition index)`` for every labelled transition."""
    result = []
    for t in range(stg.net.num_transitions):
        label = stg.label(t)
        if label is not None:
            result.append((str(label), t))
    return result


def trigger_facts(stg: STG) -> List[Fact]:
    """One fact per (edge1, edge2) pair where edge1 can enable edge2."""
    net = stg.net
    labelled = _edge_transitions(stg)
    witnesses: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
    for e1, t1 in labelled:
        post = set(net.postset(t1))
        for e2, t2 in labelled:
            key = (e1, e2)
            if key in witnesses:
                continue
            shared = sorted(post & set(net.preset(t2)))
            if shared:
                witnesses[key] = (t1, t2, shared[0])
    return [
        _edge_pair_fact(stg, FACT_TRIGGER, e1, e2, t1, t2, p, "can trigger")
        for (e1, e2), (t1, t2, p) in sorted(witnesses.items())
    ]


def lock_facts(stg: STG) -> List[Fact]:
    """One fact per unordered edge pair competing for an input place."""
    net = stg.net
    labelled = _edge_transitions(stg)
    witnesses: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
    for i, (e1, t1) in enumerate(labelled):
        pre = set(net.preset(t1))
        for e2, t2 in labelled[i + 1:]:
            if t1 == t2:
                continue
            key = (e1, e2) if e1 <= e2 else (e2, e1)
            if key in witnesses:
                continue
            shared = sorted(pre & set(net.preset(t2)))
            if shared:
                if e1 <= e2:
                    witnesses[key] = (t1, t2, shared[0])
                else:
                    witnesses[key] = (t2, t1, shared[0])
    return [
        _edge_pair_fact(stg, FACT_LOCK, e1, e2, t1, t2, p, "is locked with")
        for (e1, e2), (t1, t2, p) in sorted(witnesses.items())
    ]


def _edge_pair_fact(
    stg: STG, kind: str, e1: str, e2: str, t1: int, t2: int, p: int, verb: str
) -> Fact:
    net = stg.net
    n1, n2 = net.transition_name(t1), net.transition_name(t2)
    place = net.place_name(p)
    return Fact(
        kind=kind,
        subjects=(e1, e2),
        claim=f"{e1} {verb} {e2} (via {n1}/{n2} at place {place})",
        justification=_justification(
            kind, transitions=[n1, n2], place=place, edges=[e1, e2]
        ),
    )
