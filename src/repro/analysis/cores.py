"""Conflict-core extraction: shrink a USC/CSC witness to the guilty few.

A verifier witness is a pair of configurations; on the paper's nested form
(``C' ⊆ C''``) the interesting part is the difference window ``D`` — a
code-balanced event set whose firing changes the marking (and for CSC the
output excitation).  Diagnostics want the *minimal* such story: which
events, hence which signals, are actually responsible.

The extractor replays the witness on the original net and greedily drops
whole per-signal event groups from the window (a balanced window stays
balanced when all edges of one signal leave together), keeping a group out
only when the rest still (a) fires from the base marking and (b) violates
the separating constraint.  The result rides in a ``conflict-core`` fact
whose justification is *self-contained and replayable* — the independent
checker re-fires base and window and re-evaluates the constraint, so a core
is itself a verified conflict witness.

Non-nested witnesses (the general pair search with ``C' ⊄ C''``) have no
window; for those the extractor falls back to reporting the unshrunk
difference signals and emits no fact.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.facts import FACT_CONFLICT_CORE, Fact, _justification
from repro.exceptions import ReproError
from repro.petri.marking import Marking
from repro.stg.stg import STG


@dataclass(frozen=True)
class ConflictCore:
    """A shrunk witness: fire ``base``, then ``window`` — still a conflict."""

    property_name: str              # "usc" or "csc"
    base: Tuple[str, ...]           # transition names reaching C'
    window: Tuple[str, ...]         # the minimal difference window D
    signals: Tuple[str, ...]        # signals with an edge in the window
    fact: Optional[Fact]            # replayable justification (None: fallback)

    def describe(self) -> str:
        culprits = ", ".join(self.signals) if self.signals else "(dummies only)"
        return (
            f"{self.property_name.upper()} core: {len(self.window)} events "
            f"over signals {{{culprits}}} after [{', '.join(self.base)}]"
        )


def extract_core(stg: STG, witness) -> Optional[ConflictCore]:
    """Shrink ``witness`` (a :class:`~repro.core.verifier.ConflictWitness`).

    Returns ``None`` when the witness kind is not usc/csc or the traces are
    not replayable as base ⊆ extension (non-nested pair witnesses).
    """
    prop = witness.kind
    if prop not in ("usc", "csc"):
        return None
    base = list(witness.trace_a)
    extension = list(witness.trace_b)
    window = _difference_window(base, extension)
    if window is None or not window:
        return None
    if _replay(stg, base, window, prop) is None:
        return None

    changed = True
    while changed:
        changed = False
        for signal in sorted({_signal_of(stg, name) for name in window} - {None}):
            group = [n for n in window if _signal_of(stg, n) == signal]
            candidate = [n for n in window if _signal_of(stg, n) != signal]
            if not group or not candidate:
                continue
            if _replay(stg, base, candidate, prop) is not None:
                window = candidate
                changed = True
                break

    signals = sorted({s for s in (_signal_of(stg, n) for n in window) if s is not None})
    fact = Fact(
        kind=FACT_CONFLICT_CORE,
        subjects=tuple(signals) if signals else tuple(window),
        claim=(
            f"minimal {prop.upper()} conflict core: window of "
            f"{len(window)} events over {{{', '.join(signals)}}}"
        ),
        justification=_justification(
            FACT_CONFLICT_CORE,
            property=prop,
            base=list(base),
            window=list(window),
        ),
    )
    return ConflictCore(
        property_name=prop,
        base=tuple(base),
        window=tuple(window),
        signals=tuple(signals),
        fact=fact,
    )


def _difference_window(base: List[str], extension: List[str]) -> Optional[List[str]]:
    """``extension``'s events not in ``base`` (by name multiset), in
    ``extension`` order; None when ``base ⊄ extension``."""
    surplus = Counter(extension) - Counter(base)
    if sum(surplus.values()) != len(extension) - len(base):
        return None  # base is not a sub-multiset of extension
    remaining = dict(surplus)
    window: List[str] = []
    for name in reversed(extension):
        if remaining.get(name, 0) > 0:
            remaining[name] -= 1
            window.append(name)
    window.reverse()
    return window


def _signal_of(stg: STG, transition_name: str) -> Optional[str]:
    label = stg.label(stg.net.transition_index(transition_name))
    return label.signal if label is not None else None


def _replay(
    stg: STG, base: List[str], window: List[str], prop: str
) -> Optional[Tuple[Marking, Marking]]:
    """Fire base then window; the end-marking pair if it is still a
    ``prop`` conflict (balanced window, markings differ, Out differ for
    csc), else None."""
    net = stg.net
    try:
        marking = net.initial_marking
        for name in base:
            marking = net.fire_by_name(marking, name)
        mark_a = marking
        for name in window:
            marking = net.fire_by_name(marking, name)
    except ReproError:
        return None
    mark_b = marking
    balance = [0] * len(stg.signals)
    for name in window:
        signal, delta = stg.signal_change(net.transition_index(name))
        if signal is not None:
            balance[signal] += delta
    if any(balance) or mark_a == mark_b:
        return None
    if prop == "csc":
        from repro.stg.nextstate import enabled_outputs

        if enabled_outputs(stg, mark_a, weak=True) == enabled_outputs(
            stg, mark_b, weak=True
        ):
            return None
    return mark_a, mark_b
