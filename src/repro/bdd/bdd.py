"""Reduced ordered binary decision diagrams with hash-consing and ite.

Nodes are integers: 0 and 1 are the terminals; every other node is an index
into the manager's node table holding ``(level, low, high)`` triples, where
``level`` is the variable's position in the global order (lower level = closer
to the root).  The structure is canonical: equal functions are equal node ids.

The implementation follows the classic Brace/Rudell/Bryant design:

* a *unique table* hash-consing ``(level, low, high)`` triples,
* the ``ite`` (if-then-else) operator with a computed table,
* all binary connectives expressed through ``ite``,
* existential/universal quantification and variable substitution built
  recursively with their own memo tables.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Terminal nodes (shared by all managers).
FALSE = 0
TRUE = 1


class BDD:
    """A BDD manager over a growable ordered set of variables.

    >>> m = BDD()
    >>> x, y = m.var(0), m.var(1)
    >>> f = m.and_(x, y)
    >>> m.evaluate(f, {0: 1, 1: 1})
    True
    >>> m.evaluate(f, {0: 1, 1: 0})
    False
    """

    def __init__(self):
        # node id -> (level, low, high); ids 0/1 reserved for terminals
        self._nodes: List[Tuple[int, int, int]] = [(-1, 0, 0), (-1, 1, 1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._and_cache: Dict[Tuple[int, int], int] = {}
        self._or_cache: Dict[Tuple[int, int], int] = {}
        self._xor_cache: Dict[Tuple[int, int], int] = {}
        self._not_cache: Dict[int, int] = {}

    # -- node store -------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def level_of(self, node: int) -> int:
        return self._nodes[node][0]

    def node(self, node: int) -> Tuple[int, int, int]:
        return self._nodes[node]

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def size(self, node: int) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n <= 1 or n in seen:
                continue
            seen.add(n)
            _, low, high = self._nodes[n]
            stack.append(low)
            stack.append(high)
        return len(seen)

    # -- basic constructors -----------------------------------------------------

    def var(self, level: int) -> int:
        """The literal for variable at ``level``."""
        return self._mk(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        """The negated literal."""
        return self._mk(level, TRUE, FALSE)

    def const(self, value: bool) -> int:
        return TRUE if value else FALSE

    # -- the ite kernel -----------------------------------------------------------

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h`` in canonical form."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(
            level
            for level in (
                self.level_of(f),
                self.level_of(g),
                self.level_of(h),
            )
            if level >= 0
        )
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, level: int) -> Tuple[int, int]:
        if node <= 1:
            return node, node
        node_level, low, high = self._nodes[node]
        if node_level == level:
            return low, high
        return node, node

    # -- connectives ---------------------------------------------------------------

    def not_(self, f: int) -> int:
        if f <= 1:
            return f ^ 1
        cached = self._not_cache.get(f)
        if cached is not None:
            return cached
        level, low, high = self._nodes[f]
        result = self._mk(level, self.not_(low), self.not_(high))
        self._not_cache[f] = result
        return result

    def _and2(self, f: int, g: int) -> int:
        # dedicated binary apply: ~3x cheaper than the general ite path
        if f == g:
            return f
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        key = (f, g) if f <= g else (g, f)
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        f_level = self._nodes[f][0]
        g_level = self._nodes[g][0]
        top = f_level if f_level <= g_level else g_level
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        result = self._mk(top, self._and2(f0, g0), self._and2(f1, g1))
        self._and_cache[key] = result
        return result

    def _or2(self, f: int, g: int) -> int:
        if f == g:
            return f
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        key = (f, g) if f <= g else (g, f)
        cached = self._or_cache.get(key)
        if cached is not None:
            return cached
        f_level = self._nodes[f][0]
        g_level = self._nodes[g][0]
        top = f_level if f_level <= g_level else g_level
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        result = self._mk(top, self._or2(f0, g0), self._or2(f1, g1))
        self._or_cache[key] = result
        return result

    def and_(self, *fs: int) -> int:
        result = TRUE
        for f in fs:
            result = self._and2(result, f)
        return result

    def or_(self, *fs: int) -> int:
        result = FALSE
        for f in fs:
            result = self._or2(result, f)
        return result

    def xor_(self, f: int, g: int) -> int:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == TRUE:
            return self.not_(g)
        if g == TRUE:
            return self.not_(f)
        key = (f, g) if f <= g else (g, f)
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        f_level = self._nodes[f][0]
        g_level = self._nodes[g][0]
        top = f_level if f_level <= g_level else g_level
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        result = self._mk(top, self.xor_(f0, g0), self.xor_(f1, g1))
        self._xor_cache[key] = result
        return result

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    def iff(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def diff(self, f: int, g: int) -> int:
        """``f & ~g``."""
        return self._and2(f, self.not_(g))

    # -- quantification ---------------------------------------------------------------

    def exists(self, levels: Iterable[int], f: int) -> int:
        level_set = frozenset(levels)
        if not level_set:
            return f
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            low_r = walk(low)
            high_r = walk(high)
            if level in level_set:
                result = self.or_(low_r, high_r)
            else:
                result = self._mk(level, low_r, high_r)
            memo[node] = result
            return result

        return walk(f)

    def forall(self, levels: Iterable[int], f: int) -> int:
        return self.not_(self.exists(levels, self.not_(f)))

    # -- substitution -------------------------------------------------------------------

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Substitute variables by variables: ``mapping[old_level] = new_level``.

        Levels are re-ordered on the fly (the result is rebuilt bottom-up
        through ``ite``), so the mapping need not be order-preserving.
        """
        if not mapping:
            return f
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            target = mapping.get(level, level)
            result = self.ite(self.var(target), walk(high), walk(low))
            memo[node] = result
            return result

        return walk(f)

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor: fix some variables to constants."""
        if not assignment:
            return f
        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            if node <= 1:
                return node
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            if level in assignment:
                result = walk(high if assignment[level] else low)
            else:
                result = self._mk(level, walk(low), walk(high))
            memo[node] = result
            return result

        return walk(f)

    # -- evaluation / models ----------------------------------------------------------------

    def evaluate(self, f: int, assignment: Dict[int, int]) -> bool:
        node = f
        while node > 1:
            level, low, high = self._nodes[node]
            node = high if assignment.get(level, 0) else low
        return node == TRUE

    def any_sat(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment over the variables on the path, or None."""
        if f == FALSE:
            return None
        result: Dict[int, bool] = {}
        node = f
        while node > 1:
            level, low, high = self._nodes[node]
            if low != FALSE:
                result[level] = False
                node = low
            else:
                result[level] = True
                node = high
        return result

    def sat_count(self, f: int, num_vars: int) -> int:
        """Number of satisfying assignments over variables ``0..num_vars-1``."""
        memo: Dict[int, int] = {}

        def walk(node: int) -> Tuple[int, int]:
            """Returns (count, level) where count is over vars below level."""
            if node == FALSE:
                return 0, num_vars
            if node == TRUE:
                return 1, num_vars
            if node in memo:
                return memo[node]
            level, low, high = self._nodes[node]
            low_count, low_level = walk(low)
            high_count, high_level = walk(high)
            count = low_count * (1 << (low_level - level - 1)) + high_count * (
                1 << (high_level - level - 1)
            )
            memo[node] = (count, level)
            return count, level

        count, level = walk(f)
        return count * (1 << level)

    def iter_sats(self, f: int, levels: Sequence[int]) -> Iterator[Dict[int, bool]]:
        """All satisfying assignments, expanded over exactly ``levels``."""
        level_list = sorted(levels)

        def walk(node: int, index: int) -> Iterator[Dict[int, bool]]:
            if index == len(level_list):
                if node == TRUE:
                    yield {}
                return
            if node == FALSE:
                return
            level = level_list[index]
            node_level = self.level_of(node) if node > 1 else None
            if node > 1 and node_level == level:
                _, low, high = self._nodes[node]
                for rest in walk(low, index + 1):
                    yield {level: False, **rest}
                for rest in walk(high, index + 1):
                    yield {level: True, **rest}
            else:
                for rest in walk(node, index + 1):
                    yield {level: False, **rest}
                    yield {level: True, **rest}

        return walk(f, 0)
