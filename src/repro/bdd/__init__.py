"""A from-scratch reduced ordered binary decision diagram (ROBDD) engine.

Petrify — the tool the paper benchmarks against — detects coding conflicts by
symbolic (BDD-based) traversal of the STG's reachability graph.  This package
provides the BDD substrate for our reimplementation of that baseline:
a hash-consed node store, the ``ite`` kernel with memoisation, boolean
connectives, quantification, variable substitution and satisfying-assignment
extraction.
"""

from repro.bdd.bdd import BDD, FALSE, TRUE

__all__ = ["BDD", "TRUE", "FALSE"]
