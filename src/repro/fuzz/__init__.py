"""``repro.fuzz`` — deterministic differential fuzzing of the verifiers.

The subsystem turns the repo's redundancy into an oracle: four engines, a
ground-truth state graph, determinism contracts across config axes, and a
set of metamorphic identities (reordering, renaming, round-tripping,
witness replay) that every correct implementation must satisfy.  Cases are
regenerated from ``(seed, index)`` on demand, so every recorded failure
replays with ``repro-stg fuzz repro <case-id>`` — no serialized state to go
stale.  See docs/fuzzing.md for the campaign anatomy and the oracle
catalogue.
"""

from repro.fuzz.campaign import (
    CampaignResult,
    CampaignSummary,
    reproduce_case,
    reproduce_outcome,
    run_campaign,
)
from repro.fuzz.corpus import CorpusStore, default_corpus_dir
from repro.fuzz.generate import (
    MUTATORS,
    FuzzCase,
    case_id,
    derive_rng,
    generate_case,
    iter_cases,
    parse_case_id,
    rebuild_stg,
    renamed_copy,
    shuffled_copy,
)
from repro.fuzz.oracle import (
    CaseOutcome,
    Divergence,
    OracleConfig,
    run_oracles,
)
from repro.fuzz.shrink import ShrinkResult, shrink_case, shrink_stg

__all__ = [
    "CampaignResult",
    "CampaignSummary",
    "CaseOutcome",
    "CorpusStore",
    "Divergence",
    "FuzzCase",
    "MUTATORS",
    "OracleConfig",
    "ShrinkResult",
    "case_id",
    "default_corpus_dir",
    "derive_rng",
    "generate_case",
    "iter_cases",
    "parse_case_id",
    "rebuild_stg",
    "renamed_copy",
    "reproduce_case",
    "reproduce_outcome",
    "run_campaign",
    "run_oracles",
    "shrink_case",
    "shrink_stg",
    "shuffled_copy",
]
