"""Seeded STG generation and semantics-aware mutation for the fuzzer.

Every case is identified by ``(seed, index)`` and regenerated from scratch
on demand: :func:`derive_rng` hashes the pair (plus a purpose tag) into an
independent :class:`random.Random` stream, so case ``s7-c123`` is
byte-identical whether it is produced during a campaign, replayed by
``repro-stg fuzz repro``, or rebuilt inside the shrinker — in this process
or any other (``random.Random`` with version-2 seeding is specified to be
platform-independent).

A case starts from one of the benchmark families (:mod:`repro.models` knobs
drawn from the stream) and applies a small number of mutation operators.
Each operator is tagged with whether it *preserves well-formedness*
(boundedness, safety, consistency): preserving mutations yield cases the
differential oracles can check end to end, non-preserving ones exercise the
guard rails (unboundedness detection, consistency checking, parser
round-trips) where crashes like to hide.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.models import (
    lazy_ring,
    muller_pipeline,
    muller_ring,
    parallel_forks,
    service_ring,
    toggle_bank,
    token_ring,
    vme_bus,
    vme_chain,
)
from repro.stg.stg import STG, SignalEdge

#: Bump when generation changes incompatibly: old case ids stop replaying.
GENERATION_VERSION = 1

_DERIVE_TAG = f"repro-fuzz:v{GENERATION_VERSION}"


def derive_rng(seed: int, *path: object) -> random.Random:
    """An independent, cross-process-stable RNG for ``(seed, *path)``.

    The seed material is hashed so that nearby ``(seed, index)`` pairs give
    unrelated streams, and so that the stream depends only on the printable
    path — never on interpreter hash randomisation or process state.
    """
    material = ":".join([_DERIVE_TAG, str(seed)] + [str(part) for part in path])
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def case_id(seed: int, index: int) -> str:
    return f"s{seed}-c{index}"


def parse_case_id(text: str) -> Tuple[int, int]:
    """Invert :func:`case_id`; raises ``ValueError`` on malformed ids."""
    if not text.startswith("s") or "-c" not in text:
        raise ValueError(f"malformed case id {text!r}; expected s<seed>-c<index>")
    seed_text, _, index_text = text[1:].partition("-c")
    return int(seed_text), int(index_text)


# -- STG rebuilding -----------------------------------------------------------


def rebuild_stg(
    stg: STG,
    name: Optional[str] = None,
    place_order: Optional[Sequence[int]] = None,
    transition_order: Optional[Sequence[int]] = None,
    rename_transitions: Optional[Dict[int, str]] = None,
    relabel: Optional[Dict[int, Optional[SignalEdge]]] = None,
    rename_signals: Optional[Dict[str, str]] = None,
    drop_places: Sequence[int] = (),
    drop_transitions: Sequence[int] = (),
) -> STG:
    """Reconstruct an STG with elements reordered, renamed, relabelled or
    dropped — the one surgery primitive behind the mutators, the metamorphic
    transforms and the shrinker.

    Arcs touching a dropped element vanish with it; everything else (tokens,
    arc weights, declared initial code) is carried over.  When signals are
    renamed, transition names following the astg ``z+/k`` convention are
    rewritten to match so the result still round-trips through the parser.
    """
    net = stg.net
    rename_transitions = dict(rename_transitions or {})
    relabel = dict(relabel or {})
    signal_map = dict(rename_signals or {})
    dropped_p = set(drop_places)
    dropped_t = set(drop_transitions)

    def map_signal(sig: str) -> str:
        return signal_map.get(sig, sig)

    def map_label(label: Optional[SignalEdge]) -> Optional[SignalEdge]:
        if label is None or label.signal not in signal_map:
            return label
        return SignalEdge(signal_map[label.signal], label.polarity)

    def map_name(t: int) -> str:
        original = net.transition_name(t)
        if t in rename_transitions:
            return rename_transitions[t]
        label = stg.label(t)
        if label is not None and label.signal in signal_map:
            # rewrite astg-style names ("a+", "a-/2") along with the label
            edge = str(label)
            if original == edge or original.startswith(edge + "/"):
                return str(map_label(label)) + original[len(edge):]
        return original

    rebuilt = STG(
        name or stg.name,
        inputs=[map_signal(s) for s in stg.inputs],
        outputs=[map_signal(s) for s in stg.outputs],
        internal=[map_signal(s) for s in stg.internal],
    )
    initial = net.initial_marking
    p_order = list(place_order) if place_order is not None else list(
        range(net.num_places)
    )
    t_order = list(transition_order) if transition_order is not None else list(
        range(net.num_transitions)
    )
    kept_places = set()
    for p in p_order:
        if p in dropped_p:
            continue
        rebuilt.add_place(net.place_name(p), tokens=initial[p])
        kept_places.add(net.place_name(p))
    kept_transitions = {}
    for t in t_order:
        if t in dropped_t:
            continue
        label = map_label(relabel[t] if t in relabel else stg.label(t))
        new_name = map_name(t)
        rebuilt.add_transition(new_name, label)
        kept_transitions[net.transition_name(t)] = new_name
    for source, target, weight in net.arcs():
        if net.has_place(source):
            if source not in kept_places or target not in kept_transitions:
                continue
            rebuilt.net.add_arc(source, kept_transitions[target], weight)
        else:
            if source not in kept_transitions or target not in kept_places:
                continue
            rebuilt.net.add_arc(kept_transitions[source], target, weight)
    for signal, value in stg.declared_initial_code.items():
        rebuilt.set_initial_value(map_signal(signal), value)
    return rebuilt


def shuffled_copy(stg: STG, rng: random.Random) -> STG:
    """The same STG with place and transition declaration order shuffled —
    the identity transform of the canonical-hash metamorphic oracle."""
    p_order = list(range(stg.net.num_places))
    t_order = list(range(stg.net.num_transitions))
    rng.shuffle(p_order)
    rng.shuffle(t_order)
    return rebuild_stg(stg, place_order=p_order, transition_order=t_order)


def renamed_copy(stg: STG, prefix: str = "ren_") -> Tuple[STG, Dict[str, str]]:
    """The same STG with every signal renamed (partition preserved) — the
    identity transform of the verdict-invariance metamorphic oracle."""
    mapping = {signal: f"{prefix}{signal}" for signal in stg.signals}
    return rebuild_stg(stg, rename_signals=mapping), mapping


# -- mutation operators -------------------------------------------------------


@dataclass(frozen=True)
class MutationOp:
    """One semantics-aware rewrite.

    ``apply`` returns the mutated STG or ``None`` when the operator does not
    apply to this STG (e.g. nothing to remove); ``preserving`` records
    whether the rewrite keeps well-formed inputs well-formed.
    """

    name: str
    preserving: bool
    apply: Callable[[STG, random.Random], Optional[STG]]


def _mutate_duplicate_transition(stg: STG, rng: random.Random) -> Optional[STG]:
    """Clone one transition (same label, same pre/post sets).

    The clone is bisimilar to the original, so reachable markings, codes and
    ``Out`` sets — hence all verdicts — are untouched; only the amount of
    (spurious) choice grows.
    """
    net = stg.net
    if net.num_transitions == 0:
        return None
    t = rng.randrange(net.num_transitions)
    label = stg.label(t)
    mutated = stg.copy()
    if label is not None:
        name = mutated.unique_transition_name(label)
    else:
        base = net.transition_name(t)
        k = 1
        while mutated.net.has_transition(f"{base}_dup{k}"):
            k += 1
        name = f"{base}_dup{k}"
    mutated.add_transition(name, label)
    for p, weight in net.preset(t).items():
        mutated.net.add_arc(net.place_name(p), name, weight)
    for p, weight in net.postset(t).items():
        mutated.net.add_arc(name, net.place_name(p), weight)
    return mutated


def _mutate_split_place(stg: STG, rng: random.Random) -> Optional[STG]:
    """Split one place by routing its tokens through a fresh dummy.

    ``p -> (consumers)`` becomes ``p -> tau -> p' -> (consumers)``: token
    counts are conserved, the dummy is silent, so boundedness, safety and
    consistency all survive (verdicts may legitimately change only through
    the extra interleaving point, which the paper's semantics ignores for
    coding properties — codes depend on signal edges alone).
    """
    net = stg.net
    candidates = [
        p for p in range(net.num_places) if net.place_postset(p)
    ]
    if not candidates:
        return None
    p = rng.choice(candidates)
    p_name = net.place_name(p)
    consumers = [
        (net.transition_name(t), weight)
        for t, weight in net.place_postset(p).items()
    ]
    mutated = stg.copy()
    # names must stay inside the astg grammar: dummies are plain identifiers
    k = 1
    while mutated.net.has_place(f"psplit{k}") or mutated.net.has_transition(
        f"tausplit{k}"
    ):
        k += 1
    new_place = f"psplit{k}"
    dummy = f"tausplit{k}"
    mutated.add_place(new_place)
    mutated.add_transition(dummy, None)
    for t_name, weight in consumers:
        mutated.net.remove_arc(p_name, t_name)
        mutated.net.add_arc(new_place, t_name, weight)
    mutated.add_arc(p_name, dummy)
    mutated.add_arc(dummy, new_place)
    return mutated


def _mutate_add_arc(stg: STG, rng: random.Random) -> Optional[STG]:
    """Add one random place<->transition arc (either direction)."""
    net = stg.net
    if net.num_places == 0 or net.num_transitions == 0:
        return None
    p = net.place_name(rng.randrange(net.num_places))
    t = net.transition_name(rng.randrange(net.num_transitions))
    mutated = stg.copy()
    if rng.random() < 0.5:
        mutated.net.add_arc(p, t)
    else:
        mutated.net.add_arc(t, p)
    return mutated


def _mutate_remove_arc(stg: STG, rng: random.Random) -> Optional[STG]:
    """Remove one existing arc."""
    arcs = list(stg.net.arcs())
    if not arcs:
        return None
    source, target, _ = arcs[rng.randrange(len(arcs))]
    mutated = stg.copy()
    mutated.net.remove_arc(source, target)
    return mutated


def _mutate_flip_signal_edge(stg: STG, rng: random.Random) -> Optional[STG]:
    """Flip the polarity of one signal edge label (``z+`` <-> ``z-``).

    Rebuilds so the transition *name* follows the new label — the parser
    classifies graph tokens by name, so name and label must stay in sync
    for the round-trip oracles to be meaningful.
    """
    labelled = [t for t in range(stg.net.num_transitions) if stg.label(t) is not None]
    if not labelled:
        return None
    t = rng.choice(labelled)
    label = stg.label(t)
    assert label is not None
    flipped = SignalEdge(label.signal, -label.polarity)
    taken = set(stg.net.transitions)
    name = str(flipped)
    k = 1
    while name in taken:
        name = f"{flipped}/{k}"
        k += 1
    return rebuild_stg(
        stg, rename_transitions={t: name}, relabel={t: flipped}
    )


def _mutate_toggle_token(stg: STG, rng: random.Random) -> Optional[STG]:
    """Flip the initial token of one place (1 -> 0 or 0 -> 1)."""
    net = stg.net
    if net.num_places == 0:
        return None
    p = rng.randrange(net.num_places)
    mutated = stg.copy()
    current = net.initial_marking[p]
    mutated.net.set_tokens(net.place_name(p), 0 if current else 1)
    return mutated


def _mutate_remove_transition(stg: STG, rng: random.Random) -> Optional[STG]:
    """Drop one transition and its arcs."""
    if stg.net.num_transitions == 0:
        return None
    t = rng.randrange(stg.net.num_transitions)
    return rebuild_stg(stg, drop_transitions=[t])


#: All operators, in the fixed order the generator's RNG draws from.
MUTATORS: Tuple[MutationOp, ...] = (
    MutationOp("duplicate_transition", True, _mutate_duplicate_transition),
    MutationOp("split_place", True, _mutate_split_place),
    MutationOp("add_arc", False, _mutate_add_arc),
    MutationOp("remove_arc", False, _mutate_remove_arc),
    MutationOp("flip_signal_edge", False, _mutate_flip_signal_edge),
    MutationOp("toggle_token", False, _mutate_toggle_token),
    MutationOp("remove_transition", False, _mutate_remove_transition),
)

MUTATORS_BY_NAME: Dict[str, MutationOp] = {op.name: op for op in MUTATORS}


# -- base families ------------------------------------------------------------


def _base_builders() -> List[Callable[[random.Random], Tuple[str, STG]]]:
    return [
        lambda rng: _knob("muller_pipeline", rng.randint(1, 4), muller_pipeline),
        lambda rng: _mring(rng),
        lambda rng: _knob("parallel_forks", rng.randint(1, 3), parallel_forks),
        lambda rng: _knob("toggle_bank", rng.randint(1, 4), toggle_bank),
        lambda rng: _knob("vme_chain", rng.randint(1, 2), vme_chain),
        lambda rng: _knob("service_ring", rng.randint(2, 4), service_ring),
        lambda rng: _knob("token_ring", rng.randint(2, 3), token_ring),
        lambda rng: _knob("lazy_ring", rng.randint(2, 3), lazy_ring),
        lambda rng: ("vme_bus()", vme_bus()),
    ]


def _knob(name: str, value: int, builder: Callable[[int], STG]) -> Tuple[str, STG]:
    return f"{name}({value})", builder(value)


def _mring(rng: random.Random) -> Tuple[str, STG]:
    stages = rng.randint(3, 5)
    waves = rng.randint(1, min(2, stages - 1))
    return f"muller_ring({stages}, {waves})", muller_ring(stages, waves)


# -- case generation ----------------------------------------------------------


@dataclass
class FuzzCase:
    """One generated input: the STG plus everything needed to regenerate it."""

    seed: int
    index: int
    base: str
    mutations: Tuple[str, ...]
    preserving: bool
    stg: STG = field(repr=False)

    @property
    def case_id(self) -> str:
        return case_id(self.seed, self.index)

    def describe(self) -> str:
        chain = " | ".join(self.mutations) if self.mutations else "(none)"
        kind = "preserving" if self.preserving else "non-preserving"
        return f"{self.case_id}: base={self.base} mutations={chain} [{kind}]"


#: Mutation-count distribution: biased towards lightly-mutated cases, which
#: stay checkable end to end, while keeping a tail of heavier rewrites.
_MUTATION_COUNTS = (0, 0, 1, 1, 1, 2, 2, 3)


def generate_case(seed: int, index: int) -> FuzzCase:
    """Regenerate case ``(seed, index)`` — bit-identical in any process."""
    rng = derive_rng(seed, index)
    builders = _base_builders()
    base_desc, stg = builders[rng.randrange(len(builders))](rng)
    applied: List[str] = []
    preserving = True
    for _ in range(rng.choice(_MUTATION_COUNTS)):
        op = MUTATORS[rng.randrange(len(MUTATORS))]
        mutated = op.apply(stg, rng)
        if mutated is None:
            continue
        stg = mutated
        applied.append(op.name)
        preserving = preserving and op.preserving
    stg.net.name = f"fuzz_{case_id(seed, index)}"
    return FuzzCase(
        seed=seed,
        index=index,
        base=base_desc,
        mutations=tuple(applied),
        preserving=preserving,
        stg=stg,
    )


def iter_cases(seed: int, budget: int):
    """The campaign stream: cases ``(seed, 0) .. (seed, budget - 1)``."""
    for index in range(budget):
        yield generate_case(seed, index)
