"""Counterexample minimization: greedy delta debugging over STG structure.

The shrinker never trusts the failure to be stable by luck: a candidate
reduction is kept only if re-running the oracles on the reduced STG still
produces a divergence with the *same signature* (same oracle, same subject,
same coarse cause).  Reductions are attempted coarsest-first — whole
signals (with every transition of that signal), then transitions, then
places — and the loop restarts after every accepted reduction until a full
pass removes nothing, i.e. the result is 1-minimal with respect to these
operations.

Oracle runs dominate the cost, so the shrinker is budgeted: ``max_checks``
caps the number of predicate evaluations and the partially-shrunk STG is
returned when the budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro import obs
from repro.fuzz.generate import FuzzCase, rebuild_stg
from repro.fuzz.oracle import OracleConfig, run_oracles
from repro.stg.stg import STG


@dataclass
class ShrinkResult:
    """The minimized STG plus the bookkeeping of how it got there."""

    stg: STG
    signature: str
    accepted: int          # reductions kept
    checks: int            # predicate evaluations spent
    exhausted: bool        # True when max_checks stopped a pass early

    def stats(self) -> str:
        suffix = " (budget exhausted)" if self.exhausted else ""
        return (
            f"{self.accepted} reduction(s) in {self.checks} oracle "
            f"run(s){suffix}"
        )


def divergence_predicate(
    case: FuzzCase, signature: str, config: Optional[OracleConfig] = None
) -> Callable[[STG], bool]:
    """True iff oracles on ``stg`` still produce ``signature``.

    The replacement STG is wrapped in a clone of the original case so the
    oracles see the same ``(seed, index)`` — the sampled axes and derived
    metamorphic/parser streams stay identical to the failing run.
    """

    def predicate(stg: STG) -> bool:
        probe = FuzzCase(
            seed=case.seed,
            index=case.index,
            base=case.base,
            mutations=case.mutations,
            preserving=case.preserving,
            stg=stg,
        )
        outcome = run_oracles(probe, config)
        return any(d.signature == signature for d in outcome.divergences)

    return predicate


def shrink_stg(
    stg: STG,
    predicate: Callable[[STG], bool],
    max_checks: int = 200,
) -> Optional["_Shrunk"]:
    """Greedy fixpoint reduction of ``stg`` under ``predicate``.

    Returns ``None`` when the predicate does not even hold on the input
    (the failure is not reproducible — nothing to shrink).
    """
    if not predicate(stg):
        return None
    checks = 1
    accepted = 0
    exhausted = False
    current = stg
    changed = True
    while changed and not exhausted:
        changed = False
        for candidate in _reductions(current):
            if checks >= max_checks:
                exhausted = True
                break
            checks += 1
            try:
                keep = predicate(candidate)
            except Exception:
                continue  # a reduction that crashes the predicate is no good
            if keep:
                current = candidate
                accepted += 1
                changed = True
                break  # restart from the shrunk STG, coarsest-first again
    return _Shrunk(current, accepted, checks, exhausted)


@dataclass
class _Shrunk:
    stg: STG
    accepted: int
    checks: int
    exhausted: bool


def _reductions(stg: STG):
    """Candidate one-step reductions, coarsest first."""
    net = stg.net
    # whole signals: drop the signal and every transition labelled with it
    for signal in list(stg.signals):
        doomed = stg.transitions_of(signal)
        reduced = rebuild_stg(stg, drop_transitions=doomed)
        yield _drop_signal(reduced, signal)
    # single transitions
    for t in range(net.num_transitions):
        yield rebuild_stg(stg, drop_transitions=[t])
    # single places
    for p in range(net.num_places):
        yield rebuild_stg(stg, drop_places=[p])


def _drop_signal(stg: STG, signal: str) -> STG:
    """Remove ``signal`` from the declarations of a transition-free STG."""
    clone = STG(
        stg.name,
        inputs=[s for s in stg.inputs if s != signal],
        outputs=[s for s in stg.outputs if s != signal],
        internal=[s for s in stg.internal if s != signal],
    )
    net = stg.net
    initial = net.initial_marking
    for p in range(net.num_places):
        clone.add_place(net.place_name(p), tokens=initial[p])
    for t in range(net.num_transitions):
        clone.add_transition(net.transition_name(t), stg.label(t))
    for source, target, weight in net.arcs():
        clone.net.add_arc(source, target, weight)
    for name, value in stg.declared_initial_code.items():
        if name != signal:
            clone.set_initial_value(name, value)
    return clone


def shrink_case(
    case: FuzzCase,
    signature: str,
    config: Optional[OracleConfig] = None,
    max_checks: int = 200,
) -> Optional[ShrinkResult]:
    """Minimize ``case`` while the divergence ``signature`` persists.

    Returns ``None`` when the signature does not reproduce on the
    unmodified case (stale corpus entry, changed code, wrong id).
    """
    with obs.trace("fuzz.shrink"):
        predicate = divergence_predicate(case, signature, config)
        shrunk = shrink_stg(case.stg, predicate, max_checks=max_checks)
    if shrunk is None:
        return None
    obs.incr("fuzz.shrunk")
    return ShrinkResult(
        stg=shrunk.stg,
        signature=signature,
        accepted=shrunk.accepted,
        checks=shrunk.checks,
        exhausted=shrunk.exhausted,
    )
