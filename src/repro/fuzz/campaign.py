"""Campaign orchestration: generate, check, record, summarise.

A campaign is fully described by ``(seed, budget, config)``: the case
stream, the per-case oracle schedule and every derived RNG are functions of
those three values alone, so two runs of the same campaign produce the same
:class:`CampaignSummary` — byte-identical once serialized — on any machine.
Wall-clock time is deliberately excluded from the summary (the CLI reports
it separately) so summaries can be compared with ``==``/``diff``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.fuzz.corpus import CorpusStore
from repro.fuzz.generate import FuzzCase, generate_case, parse_case_id
from repro.fuzz.oracle import CaseOutcome, Divergence, OracleConfig, run_oracles


@dataclass
class CampaignSummary:
    """The deterministic outcome of one campaign."""

    seed: int
    budget: int
    cases: int = 0
    checkable: int = 0
    skipped: Dict[str, int] = field(default_factory=dict)
    oracle_runs: int = 0
    divergences: int = 0
    unique_signatures: int = 0
    corpus_new: int = 0
    corpus_dup: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "cases": self.cases,
            "checkable": self.checkable,
            "skipped": dict(sorted(self.skipped.items())),
            "oracle_runs": self.oracle_runs,
            "divergences": self.divergences,
            "unique_signatures": self.unique_signatures,
            "corpus_new": self.corpus_new,
            "corpus_dup": self.corpus_dup,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


@dataclass
class CampaignResult:
    summary: CampaignSummary
    divergences: List[Divergence]
    outcomes: List[CaseOutcome] = field(repr=False, default_factory=list)


def run_campaign(
    seed: int,
    budget: int,
    config: Optional[OracleConfig] = None,
    corpus: Optional[CorpusStore] = None,
    progress: Optional[Callable[[CaseOutcome], None]] = None,
) -> CampaignResult:
    """Run cases ``(seed, 0) .. (seed, budget - 1)`` through the oracles.

    ``corpus=None`` disables persistence (the summary's corpus counters stay
    zero); ``progress`` is called once per finished case.
    """
    config = config or OracleConfig()
    summary = CampaignSummary(seed=seed, budget=budget)
    all_divergences: List[Divergence] = []
    outcomes: List[CaseOutcome] = []
    signatures = set()
    with obs.trace("fuzz.campaign"):
        for index in range(budget):
            case = generate_case(seed, index)
            outcome = run_oracles(case, config)
            outcomes.append(outcome)
            summary.cases += 1
            summary.oracle_runs += outcome.oracle_runs
            if outcome.checkable:
                summary.checkable += 1
            elif outcome.skip_reason:
                summary.skipped[outcome.skip_reason] = (
                    summary.skipped.get(outcome.skip_reason, 0) + 1
                )
            for divergence in outcome.divergences:
                summary.divergences += 1
                signatures.add(divergence.signature)
                all_divergences.append(divergence)
                if corpus is not None:
                    _key, is_new = corpus.record(case, divergence)
                    if is_new:
                        summary.corpus_new += 1
                    else:
                        summary.corpus_dup += 1
            if progress is not None:
                progress(outcome)
    summary.unique_signatures = len(signatures)
    return CampaignResult(
        summary=summary, divergences=all_divergences, outcomes=outcomes
    )


def reproduce_case(case_id: str) -> FuzzCase:
    """Regenerate the case behind ``case_id`` (``s<seed>-c<index>``)."""
    seed, index = parse_case_id(case_id)
    return generate_case(seed, index)


def reproduce_outcome(
    case_id: str, config: Optional[OracleConfig] = None
) -> CaseOutcome:
    """Regenerate a case and re-run every oracle on it."""
    return run_oracles(reproduce_case(case_id), config)
