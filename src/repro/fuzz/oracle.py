"""The fuzzer's oracles: differential, configuration-axis and metamorphic.

A case first passes through three *guards* — boundedness (a capped
reachability probe), safety and consistency — because the verification
engines only promise answers on bounded, safe, consistent STGs.  A guard
rejecting a case is not a failure; a guard *crashing* (anything other than a
:class:`~repro.exceptions.ReproError` subclass escaping) is.

Checkable cases then run:

* **differential**: every configured engine against the explicit state
  graph ground truth, per property — sound verdicts must agree;
* **config axes**: the ilp engine re-run with ``use_facts``,
  ``use_refinement``, ``workers`` and the result cache toggled, asserting
  the determinism contracts pinned by the engine docs (byte-identical
  verdicts and witnesses everywhere; exact ``SearchStats`` parity on the
  workers axis for fully consumed searches — a found conflict cancels
  shards mid-walk, so node counts are only pinned when the property holds);
* **metamorphic**: verdict invariance under element reordering and signal
  renaming, canonical-hash stability, write/parse round-trips, and witness
  replay through the net's firing rule.

Every failed expectation becomes a :class:`Divergence` with a *signature*
that is stable across cases triggering the same underlying bug — the corpus
dedup key.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.verifier import CodingReport, check_csc, check_usc
from repro.engine.cache import ResultCache
from repro.engine.jobs import ENGINES, VerificationJob, execute_engine
from repro.exceptions import (
    InconsistentSTGError,
    ParseError,
    ReproError,
    UnboundedNetError,
)
from repro.fuzz.generate import FuzzCase, derive_rng, renamed_copy, shuffled_copy
from repro.petri.reachability import explore
from repro.stg.hashing import canonical_stg_hash
from repro.stg.nextstate import enabled_outputs
from repro.stg.parser import parse_stg, round_trippable, write_stg
from repro.stg.stategraph import StateGraph, build_state_graph
from repro.stg.stg import STG
from repro.unfolding.unfolder import UnfoldingOptions

#: Guard-rejection reasons (the ``skipped`` breakdown of a campaign).
SKIP_UNBOUNDED = "unbounded"
SKIP_UNSAFE = "unsafe"
SKIP_INCONSISTENT = "inconsistent"
SKIP_TOO_LARGE = "too-large"


@dataclass(frozen=True)
class OracleConfig:
    """Bounds and sampling rates for one campaign.

    The expensive axes are sampled by case index rather than run on every
    case: the workers axis forks processes (hundreds of ms per case), the
    cache axis writes to disk.  Sampling by index keeps the schedule
    deterministic — case ``s7-c64`` runs the same oracles in every campaign
    that reaches it.
    """

    engines: Tuple[str, ...] = ("ilp", "sat", "bdd")
    properties: Tuple[str, ...] = ("usc", "csc")
    #: Reachability guard: cases beyond this many states are skipped.
    max_states: int = 4096
    #: Search/unfolding budgets for the ilp engine (hitting them yields an
    #: undecided outcome, not a divergence).
    node_budget: int = 200_000
    max_events: int = 5_000
    facts_every: int = 4
    refine_every: int = 8
    cache_every: int = 8
    workers_every: int = 64
    #: Parser robustness probes per case (0 disables the parser oracle).
    parser_probes: int = 4


@dataclass(frozen=True)
class Divergence:
    """One broken expectation, with a dedup signature stable across cases."""

    case_id: str
    oracle: str      # "differential" | "axis" | "metamorphic" | "crash"
    subject: str     # e.g. "sat-vs-sg:csc", "workers:usc", "roundtrip"
    detail: str      # case-specific explanation
    signature: str   # (oracle, subject, coarse cause) — the corpus dedup key

    def describe(self) -> str:
        return f"[{self.case_id}] {self.oracle}/{self.subject}: {self.detail}"


@dataclass
class CaseOutcome:
    """Everything one case produced: guard verdict, oracle runs, divergences."""

    case_id: str
    checkable: bool = False
    skip_reason: Optional[str] = None
    oracle_runs: int = 0
    divergences: List[Divergence] = field(default_factory=list)


def _signature(oracle: str, subject: str, cause: str) -> str:
    return f"{oracle}:{subject}:{cause}"


def _crash(case_id: str, subject: str, exc: BaseException) -> Divergence:
    return Divergence(
        case_id=case_id,
        oracle="crash",
        subject=subject,
        detail=f"{type(exc).__name__}: {exc}",
        signature=_signature("crash", subject, type(exc).__name__),
    )


def _mismatch(case_id: str, oracle: str, subject: str, detail: str) -> Divergence:
    return Divergence(
        case_id=case_id,
        oracle=oracle,
        subject=subject,
        detail=detail,
        signature=_signature(oracle, subject, "mismatch"),
    )


# -- engine plumbing ----------------------------------------------------------


def _run_engine(
    case_id: str,
    engine: str,
    job: VerificationJob,
    divergences: List[Divergence],
) -> Optional[bool]:
    """One engine verdict, or ``None`` when undecided or crashed.

    Unlike :func:`repro.engine.jobs.execute_engine` this does *not* swallow
    unexpected exception types — seeing them is the whole point here.
    """
    try:
        holds, _witness, _stats = ENGINES[engine](job)
    except ReproError:
        return None  # engines may refuse inputs (budget, unsupported shape)
    except Exception as exc:
        divergences.append(_crash(case_id, f"engine.{engine}", exc))
        return None
    return holds


def _ilp_report(
    stg: STG,
    prop: str,
    config: OracleConfig,
    workers: int = 0,
    use_facts: bool = False,
    use_refinement: bool = False,
) -> CodingReport:
    check = check_usc if prop == "usc" else check_csc
    return check(
        stg,
        node_budget=config.node_budget,
        workers=workers,
        use_facts=use_facts,
        use_refinement=use_refinement,
        unfolding_options=UnfoldingOptions(max_events=config.max_events),
    )


def _report_fingerprint(report: CodingReport) -> Tuple[Any, ...]:
    """The byte-comparable part of a report (the determinism contract)."""
    witness = report.witness.describe() if report.witness is not None else None
    return (report.holds, witness, report.usc_only_candidates)


def _stats_fingerprint(report: CodingReport) -> Tuple[int, ...]:
    stats = report.search_stats
    return (
        stats.nodes,
        stats.leaves,
        stats.pruned_balance,
        stats.pruned_structure,
        stats.solutions,
    )


# -- the oracle pipeline ------------------------------------------------------


def run_oracles(case: FuzzCase, config: Optional[OracleConfig] = None) -> CaseOutcome:
    """Run every applicable oracle on one case."""
    config = config or OracleConfig()
    outcome = CaseOutcome(case_id=case.case_id)
    obs.incr("fuzz.cases")

    with obs.trace("fuzz.case"):
        # parser robustness runs even on cases the guards will reject —
        # malformed nets are exactly what a parser must survive
        if config.parser_probes:
            _parser_oracle(case, config, outcome)

        graph = _guards(case, config, outcome)
        if graph is None:
            obs.incr("fuzz.skipped")
            return outcome
        outcome.checkable = True
        obs.incr("fuzz.checkable")

        truth = {"usc": graph.has_usc(), "csc": graph.has_csc()}
        _differential_oracle(case, config, outcome, truth)
        _axis_oracles(case, config, outcome)
        _metamorphic_oracles(case, config, outcome, graph, truth)

    obs.incr("fuzz.oracle_runs", outcome.oracle_runs)
    if outcome.divergences:
        obs.incr("fuzz.divergences", len(outcome.divergences))
    return outcome


def _guards(
    case: FuzzCase, config: OracleConfig, outcome: CaseOutcome
) -> Optional[StateGraph]:
    """Boundedness, safety, consistency.  Returns the annotated state graph
    of checkable cases, ``None`` (with ``skip_reason`` set) otherwise."""
    stg = case.stg
    try:
        reach = explore(
            stg.net, max_states=config.max_states, max_tokens_per_place=8
        )
    except UnboundedNetError:
        outcome.skip_reason = SKIP_UNBOUNDED
        return None
    except ReproError:
        outcome.skip_reason = SKIP_TOO_LARGE
        return None
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, "guard.explore", exc))
        outcome.skip_reason = SKIP_TOO_LARGE
        return None
    if any(marking.max_count() > 1 for marking in reach.markings):
        outcome.skip_reason = SKIP_UNSAFE
        return None
    try:
        return build_state_graph(stg, max_states=config.max_states)
    except InconsistentSTGError:
        outcome.skip_reason = SKIP_INCONSISTENT
        return None
    except ReproError:
        outcome.skip_reason = SKIP_TOO_LARGE
        return None
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, "guard.stategraph", exc))
        outcome.skip_reason = SKIP_TOO_LARGE
        return None


def _differential_oracle(
    case: FuzzCase,
    config: OracleConfig,
    outcome: CaseOutcome,
    truth: Dict[str, bool],
) -> None:
    """Every engine against the state-graph ground truth, per property."""
    for prop in config.properties:
        for engine in config.engines:
            if engine == "sg":
                continue  # sg *is* the truth
            job = VerificationJob(
                stg=case.stg,
                property=prop,
                engines=(engine,),
                node_budget=config.node_budget,
            )
            outcome.oracle_runs += 1
            verdict = _run_engine(case.case_id, engine, job, outcome.divergences)
            if verdict is not None and verdict != truth[prop]:
                outcome.divergences.append(
                    _mismatch(
                        case.case_id,
                        "differential",
                        f"{engine}-vs-sg:{prop}",
                        f"{engine} says {prop} "
                        f"{'holds' if verdict else 'violated'}, "
                        f"state graph says "
                        f"{'holds' if truth[prop] else 'violated'}",
                    )
                )


def _axis_oracles(
    case: FuzzCase, config: OracleConfig, outcome: CaseOutcome
) -> None:
    """Re-run the ilp engine with config axes toggled; results must agree."""
    axes = []
    if config.facts_every and case.index % config.facts_every == 0:
        axes.append(("facts", {"use_facts": True}, False))
    if config.refine_every and case.index % config.refine_every == 0:
        axes.append(("refine", {"use_refinement": True}, False))
    if config.workers_every and case.index % config.workers_every == 0:
        axes.append(("workers", {"workers": 2}, True))
    run_cache = config.cache_every and case.index % config.cache_every == 0
    if not axes and not run_cache:
        return

    for prop in config.properties:
        baseline: Optional[CodingReport] = None
        if axes:
            try:
                baseline = _ilp_report(case.stg, prop, config)
            except ReproError:
                continue  # undecided baseline: nothing to compare against
            except Exception as exc:
                outcome.divergences.append(
                    _crash(case.case_id, f"axis.baseline:{prop}", exc)
                )
                continue
        for axis_name, kwargs, compare_stats in axes:
            outcome.oracle_runs += 1
            try:
                variant = _ilp_report(case.stg, prop, config, **kwargs)
            except ReproError:
                continue
            except Exception as exc:
                outcome.divergences.append(
                    _crash(case.case_id, f"axis.{axis_name}:{prop}", exc)
                )
                continue
            assert baseline is not None
            if _report_fingerprint(variant) != _report_fingerprint(baseline):
                outcome.divergences.append(
                    _mismatch(
                        case.case_id,
                        "axis",
                        f"{axis_name}:{prop}",
                        f"baseline {_report_fingerprint(baseline)!r} != "
                        f"{axis_name} {_report_fingerprint(variant)!r}",
                    )
                )
            # SearchStats parity is only pinned for fully consumed
            # enumerations (docs/parallelism.md): a found conflict cancels
            # shards mid-walk, so node counts legitimately differ there.
            if (
                compare_stats
                and baseline.holds
                and variant.holds
                and _stats_fingerprint(variant) != _stats_fingerprint(baseline)
            ):
                outcome.divergences.append(
                    _mismatch(
                        case.case_id,
                        "axis",
                        f"{axis_name}-stats:{prop}",
                        f"SearchStats {_stats_fingerprint(baseline)!r} != "
                        f"{_stats_fingerprint(variant)!r}",
                    )
                )
        if run_cache:
            _cache_axis(case, prop, config, outcome)


def _cache_axis(
    case: FuzzCase, prop: str, config: OracleConfig, outcome: CaseOutcome
) -> None:
    """Cold run -> cache -> warm read must reproduce the verdict exactly."""
    job = VerificationJob(
        stg=case.stg,
        property=prop,
        engines=("ilp",),
        node_budget=config.node_budget,
    )
    outcome.oracle_runs += 1
    try:
        cold = execute_engine(job, "ilp")
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, f"cache.cold:{prop}", exc))
        return
    if not cold.sound:
        return
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
        try:
            cache = ResultCache(tmp)
            cache.put(job, cold)
            warm = cache.get(job)
        except Exception as exc:
            outcome.divergences.append(
                _crash(case.case_id, f"cache.warm:{prop}", exc)
            )
            return
    if warm is None:
        outcome.divergences.append(
            _mismatch(
                case.case_id,
                "axis",
                f"cache:{prop}",
                "sound result did not survive a cache round-trip",
            )
        )
        return
    cold_fp = (cold.verdict, cold.holds, cold.witness)
    warm_fp = (warm.verdict, warm.holds, warm.witness)
    if cold_fp != warm_fp:
        outcome.divergences.append(
            _mismatch(
                case.case_id,
                "axis",
                f"cache:{prop}",
                f"cold {cold_fp!r} != warm {warm_fp!r}",
            )
        )


def _metamorphic_oracles(
    case: FuzzCase,
    config: OracleConfig,
    outcome: CaseOutcome,
    graph: StateGraph,
    truth: Dict[str, bool],
) -> None:
    stg = case.stg
    rng = derive_rng(case.seed, case.index, "metamorphic")

    # 1. canonical hash + verdicts invariant under declaration reordering
    outcome.oracle_runs += 1
    try:
        shuffled = shuffled_copy(stg, rng)
        if canonical_stg_hash(shuffled) != canonical_stg_hash(stg):
            outcome.divergences.append(
                _mismatch(
                    case.case_id,
                    "metamorphic",
                    "reorder-hash",
                    "canonical hash changed under element reordering",
                )
            )
        else:
            sgraph = build_state_graph(shuffled, max_states=config.max_states)
            got = {"usc": sgraph.has_usc(), "csc": sgraph.has_csc()}
            if got != truth:
                outcome.divergences.append(
                    _mismatch(
                        case.case_id,
                        "metamorphic",
                        "reorder-verdict",
                        f"verdicts {truth!r} became {got!r} after reordering",
                    )
                )
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, "metamorphic.reorder", exc))

    # 2. verdicts invariant under signal renaming
    outcome.oracle_runs += 1
    try:
        renamed, _mapping = renamed_copy(stg)
        rgraph = build_state_graph(renamed, max_states=config.max_states)
        got = {"usc": rgraph.has_usc(), "csc": rgraph.has_csc()}
        if got != truth:
            outcome.divergences.append(
                _mismatch(
                    case.case_id,
                    "metamorphic",
                    "rename-verdict",
                    f"verdicts {truth!r} became {got!r} after signal renaming",
                )
            )
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, "metamorphic.rename", exc))

    # 3. write/parse round-trip preserves the canonical form.  Guarded by
    # the dialect's expressibility limits (weights, arc-less places, names
    # that re-classify) — see :func:`repro.stg.parser.round_trippable`.
    if round_trippable(stg):
        outcome.oracle_runs += 1
        try:
            reparsed = parse_stg(write_stg(stg))
            if canonical_stg_hash(reparsed) != canonical_stg_hash(stg):
                outcome.divergences.append(
                    _mismatch(
                        case.case_id,
                        "metamorphic",
                        "roundtrip",
                        "canonical hash changed across write_stg/parse_stg",
                    )
                )
        except ParseError as exc:
            outcome.divergences.append(
                Divergence(
                    case_id=case.case_id,
                    oracle="metamorphic",
                    subject="roundtrip",
                    detail=f"write_stg produced unparseable text: {exc}",
                    signature=_signature("metamorphic", "roundtrip", "unparseable"),
                )
            )
        except Exception as exc:
            outcome.divergences.append(
                _crash(case.case_id, "metamorphic.roundtrip", exc)
            )

    # 4. witness replay: the ground-truth conflict must replay through the
    # net's firing rule to equal-code markings with the reported Out sets
    outcome.oracle_runs += 1
    try:
        _replay_oracle(case, outcome, graph)
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, "metamorphic.replay", exc))


def _replay_oracle(case: FuzzCase, outcome: CaseOutcome, graph: StateGraph) -> None:
    conflicts = graph.usc_conflicts(first_only=True)
    if not conflicts:
        return
    conflict = conflicts[0]
    stg = case.stg
    net = stg.net
    for state, expected_marking, expected_out in (
        (conflict.state_a, conflict.marking_a, conflict.out_a),
        (conflict.state_b, conflict.marking_b, conflict.out_b),
    ):
        marking = net.initial_marking
        for name in graph.trace_to(state):
            marking = net.fire_by_name(marking, name)
        if marking != expected_marking:
            outcome.divergences.append(
                _mismatch(
                    case.case_id,
                    "metamorphic",
                    "replay-marking",
                    f"replaying the trace to state {state} reached "
                    f"{marking!r}, witness says {expected_marking!r}",
                )
            )
            return
        out = enabled_outputs(stg, marking, weak=True)
        if out != expected_out:
            outcome.divergences.append(
                _mismatch(
                    case.case_id,
                    "metamorphic",
                    "replay-out",
                    f"Out at state {state} is {sorted(out)!r}, "
                    f"witness says {sorted(expected_out)!r}",
                )
            )
            return
    if graph.code(conflict.state_a) != graph.code(conflict.state_b):
        outcome.divergences.append(
            _mismatch(
                case.case_id,
                "metamorphic",
                "replay-code",
                "witnessed conflict states do not share a code",
            )
        )


def _parser_oracle(
    case: FuzzCase, config: OracleConfig, outcome: CaseOutcome
) -> None:
    """Feed mutated ``.g`` text to the parser: only ParseError may escape."""
    try:
        text = write_stg(case.stg)
    except Exception as exc:
        outcome.divergences.append(_crash(case.case_id, "parser.write", exc))
        return
    rng = derive_rng(case.seed, case.index, "parser")
    for probe in range(config.parser_probes):
        mutated = _mutate_text(text, rng)
        outcome.oracle_runs += 1
        try:
            parse_stg(mutated)
        except ParseError:
            continue  # rejecting garbage is the contract
        except Exception as exc:
            outcome.divergences.append(_crash(case.case_id, "parser.parse", exc))


_GARBAGE = (
    ".marking { <q,r> }",
    ".initial zz=1",
    ".graph",
    "p0 p1",
    "a+ b+ <",
    ".places x=-1",
    "\x00\x01",
    ".marking { p= }",
)


def _mutate_text(text: str, rng: random.Random) -> str:
    lines = text.splitlines()
    op = rng.randrange(5)
    if op == 0 and len(lines) > 1:  # delete a line
        del lines[rng.randrange(len(lines))]
    elif op == 1:  # duplicate a line
        i = rng.randrange(len(lines))
        lines.insert(i, lines[i])
    elif op == 2 and len(lines) > 1:  # swap two lines
        i, j = rng.randrange(len(lines)), rng.randrange(len(lines))
        lines[i], lines[j] = lines[j], lines[i]
    elif op == 3:  # insert garbage
        lines.insert(rng.randrange(len(lines) + 1), rng.choice(_GARBAGE))
    else:  # truncate
        lines = lines[: rng.randrange(1, len(lines) + 1)]
    return "\n".join(lines) + "\n"
