"""The persistent failure corpus: deduped, replayable divergence records.

Built on the shared :class:`repro.utils.filestore.FileStore` (the same
atomic-write/dotfile-hygiene layer as the result cache), so concurrent
campaigns can append safely.  Entries are keyed by the divergence
*signature* — ``(oracle, subject, coarse cause)`` — so one underlying bug
occupies one entry no matter how many cases trigger it; later hits only
bump the entry's ``hits`` counter (keeping the *first*, usually simplest,
triggering case).

Every entry stores the generation coordinates (``seed``/``index``) rather
than relying on the serialized STG: ``repro-stg fuzz repro <case-id>``
regenerates the case from scratch, which also re-validates that generation
is still deterministic.  The STG text is stored too, both for human eyes
and for the shrinker to persist its minimized form next to the original.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.fuzz.generate import FuzzCase
from repro.fuzz.oracle import Divergence
from repro.stg.parser import write_stg
from repro.utils.filestore import FileStore

#: Bump when the entry layout changes; old entries are ignored, not migrated.
CORPUS_SCHEMA = 1

#: Environment override for the corpus location.
CORPUS_ENV = "REPRO_FUZZ_CORPUS"


def default_corpus_dir() -> Path:
    env = os.environ.get(CORPUS_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-stg-fuzz"


class CorpusStore:
    """A :class:`FileStore`-backed collection of divergence entries."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self._store = FileStore(root if root is not None else default_corpus_dir())

    @property
    def root(self) -> Path:
        return self._store.root

    # -- keys ----------------------------------------------------------------

    def key_for(self, signature: str) -> str:
        material = f"repro-fuzz-corpus:v{CORPUS_SCHEMA}\n{signature}\n"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # -- recording -----------------------------------------------------------

    def record(self, case: FuzzCase, divergence: Divergence) -> Tuple[str, bool]:
        """Store one divergence; returns ``(key, is_new)``.

        A repeat signature keeps the existing entry (first trigger wins) and
        increments its ``hits`` count.
        """
        key = self.key_for(divergence.signature)
        existing = self._store.get(key)
        if existing is not None and existing.get("schema") == CORPUS_SCHEMA:
            existing["hits"] = int(existing.get("hits", 1)) + 1
            self._store.put(key, existing)
            return key, False
        try:
            stg_text = write_stg(case.stg)
        except Exception:
            stg_text = None  # the divergence may be exactly that it can't write
        entry: Dict[str, Any] = {
            "schema": CORPUS_SCHEMA,
            "key": key,
            "case_id": divergence.case_id,
            "seed": case.seed,
            "index": case.index,
            "base": case.base,
            "mutations": list(case.mutations),
            "preserving": case.preserving,
            "oracle": divergence.oracle,
            "subject": divergence.subject,
            "signature": divergence.signature,
            "detail": divergence.detail,
            "stg_text": stg_text,
            "minimized": False,
            "minimized_stg_text": None,
            "hits": 1,
        }
        self._store.put(key, entry)
        return key, True

    def mark_minimized(self, key: str, minimized_text: str) -> bool:
        """Attach the shrinker's output to an existing entry."""
        entry = self._store.get(key)
        if entry is None or entry.get("schema") != CORPUS_SCHEMA:
            return False
        entry["minimized"] = True
        entry["minimized_stg_text"] = minimized_text
        return self._store.put(key, entry)

    # -- reading -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self._store.get(key)
        if entry is None or entry.get("schema") != CORPUS_SCHEMA:
            return None
        return entry

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Every valid entry, ordered by key for stable listings."""
        loaded: List[Dict[str, Any]] = []
        for path in self._store.entries():
            entry = self._store.read_json(path)
            if entry is not None and entry.get("schema") == CORPUS_SCHEMA:
                loaded.append(entry)
        loaded.sort(key=lambda e: str(e.get("key", "")))
        yield from loaded

    def find(self, needle: str) -> List[Dict[str, Any]]:
        """Entries whose key or case id starts with ``needle``."""
        return [
            entry
            for entry in self.entries()
            if str(entry.get("key", "")).startswith(needle)
            or str(entry.get("case_id", "")) == needle
        ]

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> int:
        return self._store.clear()
