"""State-graph normalcy check (paper Section 6) — the baseline oracle.

An output signal ``z`` is *p-normal* if ``Code(M') <= Code(M'')``
(componentwise) implies ``Nxt_z(M') <= Nxt_z(M'')`` over all reachable pairs,
*n-normal* with the implication reversed, and *normal* if it is one or the
other.  Normalcy is necessary for implementing ``z`` with a gate whose
characteristic function is monotonic, and it implies CSC.

This module checks normalcy on the explicit state graph by examining all
state pairs — quadratic and memory-hungry, which is exactly what the
unfolding-based method of :mod:`repro.core.normalcy` avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.stg.stategraph import StateGraph, build_state_graph
from repro.stg.stg import STG


@dataclass
class NormalcyViolation:
    """A pair of states witnessing a violation of one normalcy direction.

    ``kind`` is ``"p"`` when the pair violates p-normalcy (codes ordered
    ``<=`` but next-state values strictly decreasing) and ``"n"`` for the
    n-normalcy dual.
    """

    signal: str
    kind: str
    state_low: int
    state_high: int
    code_low: Tuple[int, ...]
    code_high: Tuple[int, ...]
    nxt_low: int
    nxt_high: int


@dataclass
class SignalNormalcy:
    """Verdict for a single output signal."""

    signal: str
    p_normal: bool
    n_normal: bool
    p_witness: Optional[NormalcyViolation]
    n_witness: Optional[NormalcyViolation]

    @property
    def normal(self) -> bool:
        return self.p_normal or self.n_normal


@dataclass
class NormalcyReport:
    """Verdicts for every output signal of an STG."""

    per_signal: Dict[str, SignalNormalcy]

    @property
    def normal(self) -> bool:
        return all(v.normal for v in self.per_signal.values())

    def violating_signals(self) -> List[str]:
        return [s for s, v in self.per_signal.items() if not v.normal]


def check_normalcy_state_graph(
    stg: STG, state_graph: Optional[StateGraph] = None
) -> NormalcyReport:
    """Check normalcy of every non-input signal over the explicit state graph.

    For each signal we scan all ordered code pairs; the first violating pair
    in each direction is recorded as a witness.  A signal is normal iff at
    least one direction has no violation.
    """
    if state_graph is None:
        state_graph = build_state_graph(stg)

    num_states = state_graph.num_states
    codes = state_graph.codes
    report: Dict[str, SignalNormalcy] = {}

    for signal in stg.non_input_signals:
        nxt = [state_graph.next_state_vector(s, signal) for s in range(num_states)]
        p_witness: Optional[NormalcyViolation] = None
        n_witness: Optional[NormalcyViolation] = None
        for a in range(num_states):
            for b in range(num_states):
                if a == b:
                    continue
                if not _leq(codes[a], codes[b]):
                    continue
                # codes[a] <= codes[b] componentwise
                if nxt[a] > nxt[b] and p_witness is None:
                    p_witness = NormalcyViolation(
                        signal, "p", a, b, codes[a], codes[b], nxt[a], nxt[b]
                    )
                if nxt[a] < nxt[b] and n_witness is None:
                    n_witness = NormalcyViolation(
                        signal, "n", a, b, codes[a], codes[b], nxt[a], nxt[b]
                    )
                if p_witness is not None and n_witness is not None:
                    break
            if p_witness is not None and n_witness is not None:
                break
        report[signal] = SignalNormalcy(
            signal=signal,
            p_normal=p_witness is None,
            n_normal=n_witness is None,
            p_witness=p_witness,
            n_witness=n_witness,
        )
    return NormalcyReport(per_signal=report)


def _leq(a: Tuple[int, ...], b: Tuple[int, ...]) -> bool:
    return all(x <= y for x, y in zip(a, b))
