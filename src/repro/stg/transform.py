"""Structural STG transformations: dummy contraction and place simplification.

The paper's main text assumes STGs without dummy (τ) transitions and defers
the general case to the full version.  This library supports dummies end to
end (they are zero-weight events for every checker), but contracting them
away first is usually cheaper and is what production flows do.  Secure
transition contraction is implemented here, along with removal of redundant
(duplicate or loop-only) places.

Contraction of a dummy ``t`` merges each input place ``p ∈ •t`` with each
output place ``q ∈ t•`` into a product place carrying their token sum; it is
*secure* (behaviour-preserving for the properties we check) when

* ``t`` is the only consumer of each ``p ∈ •t`` and the only producer of
  each ``q ∈ t•`` does not additionally receive from elsewhere in a
  conflicting way — we implement the standard safe sufficient condition:
  ``|•t| = 1`` or ``|t•| = 1``, the single shared place has no other
  consumers/producers on the merging side, and no self-loop is involved.

Transformations return new STGs; the originals are never mutated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import ReproError
from repro.stg.stg import STG


class ContractionError(ReproError):
    """The requested dummy transition cannot be securely contracted."""


def _rebuild(
    stg: STG,
    keep_transition: List[bool],
    place_groups: List[List[int]],
    group_tokens: List[int],
    arcs: Set[Tuple[str, str]],
    name: str,
) -> STG:
    """Assemble a new STG from surviving transitions and merged places."""
    result = STG(
        name, inputs=stg.inputs, outputs=stg.outputs, internal=stg.internal
    )
    net = stg.net
    for t in range(net.num_transitions):
        if keep_transition[t]:
            result.add_transition(net.transition_name(t), stg.label(t))
    for gi, group in enumerate(place_groups):
        merged_name = "+".join(net.place_name(p) for p in group)
        result.add_place(merged_name, tokens=group_tokens[gi])
    for source, target in sorted(arcs):
        result.add_arc(source, target)
    for signal, value in stg.declared_initial_code.items():
        result.set_initial_value(signal, value)
    return result


def contract_dummy(stg: STG, transition_name: str) -> STG:
    """Securely contract one dummy transition; raises if not secure."""
    net = stg.net
    t = net.transition_index(transition_name)
    if not stg.is_dummy(t):
        raise ContractionError(f"{transition_name!r} is not a dummy transition")
    preset = list(net.preset(t))
    postset = list(net.postset(t))
    if not preset or not postset:
        raise ContractionError("contraction needs non-empty preset and postset")
    if set(preset) & set(postset):
        raise ContractionError("self-loop dummies cannot be contracted")
    if len(preset) > 1 and len(postset) > 1:
        raise ContractionError(
            "non-secure contraction: both |•t| > 1 and |t•| > 1"
        )
    # the side with the single place must have t as its only connection on
    # the merging direction, otherwise tokens could bypass the merge
    if len(preset) == 1:
        p = preset[0]
        if list(net.place_postset(p)) != [t]:
            raise ContractionError(
                f"place {net.place_name(p)!r} has other consumers"
            )
    if len(postset) == 1:
        q = postset[0]
        if list(net.place_preset(q)) != [t]:
            raise ContractionError(
                f"place {net.place_name(q)!r} has other producers"
            )

    initial = net.initial_marking
    keep_transition = [u != t for u in range(net.num_transitions)]
    # merged places: every (p, q) pair; untouched places stay singleton groups
    merged_pairs = [(p, q) for p in preset for q in postset]
    touched = set(preset) | set(postset)
    place_groups: List[List[int]] = [[(pl)] for pl in range(net.num_places)
                                     if pl not in touched]
    group_tokens = [initial[g[0]] for g in place_groups]
    for p, q in merged_pairs:
        place_groups.append([p, q])
        group_tokens.append(initial[p] + initial[q])

    def group_name(gi: int) -> str:
        return "+".join(net.place_name(pl) for pl in place_groups[gi])

    member_groups: Dict[int, List[int]] = {}
    for gi, group in enumerate(place_groups):
        for pl in group:
            member_groups.setdefault(pl, []).append(gi)

    arcs: Set[Tuple[str, str]] = set()
    for u in range(net.num_transitions):
        if u == t:
            continue
        u_name = net.transition_name(u)
        for pl in net.preset(u):
            for gi in member_groups[pl]:
                arcs.add((group_name(gi), u_name))
        for pl in net.postset(u):
            for gi in member_groups[pl]:
                arcs.add((u_name, group_name(gi)))
    return _rebuild(
        stg, keep_transition, place_groups, group_tokens, arcs,
        stg.name,
    )


def contract_all_dummies(stg: STG) -> STG:
    """Contract dummies greedily until none is securely contractible.

    Returns an STG with as few dummies as this transformation can remove
    (possibly none left); dummies that resist secure contraction are kept —
    all checkers handle them anyway.
    """
    current = stg
    progress = True
    while progress:
        progress = False
        for t in range(current.net.num_transitions):
            if not current.is_dummy(t):
                continue
            name = current.net.transition_name(t)
            try:
                current = contract_dummy(current, name)
            except ContractionError:
                continue
            progress = True
            break
    return current


def remove_duplicate_places(stg: STG) -> STG:
    """Drop places with identical preset, postset and initial marking.

    Duplicate places constrain nothing extra; parsers and transformations
    occasionally introduce them.
    """
    net = stg.net
    initial = net.initial_marking
    seen: Dict[Tuple, int] = {}
    drop: Set[int] = set()
    for p in range(net.num_places):
        key = (
            tuple(sorted(net.place_preset(p).items())),
            tuple(sorted(net.place_postset(p).items())),
            initial[p],
        )
        if key in seen:
            drop.add(p)
        else:
            seen[key] = p
    if not drop:
        return stg
    result = STG(
        stg.name, inputs=stg.inputs, outputs=stg.outputs, internal=stg.internal
    )
    for t in range(net.num_transitions):
        result.add_transition(net.transition_name(t), stg.label(t))
    for p in range(net.num_places):
        if p in drop:
            continue
        result.add_place(net.place_name(p), tokens=initial[p])
        for producer in net.place_preset(p):
            result.add_arc(net.transition_name(producer), net.place_name(p))
        for consumer in net.place_postset(p):
            result.add_arc(net.place_name(p), net.transition_name(consumer))
    for signal, value in stg.declared_initial_code.items():
        result.set_initial_value(signal, value)
    return result
