"""Signal Transition Graphs: labelled nets, consistency, state coding.

An STG is a net system whose transitions are labelled with rising/falling
signal edges ``z+`` / ``z-`` (or the silent label ``tau``), paper Section 2.1.
This package provides the STG class, the consistency check, the explicit
state-graph baseline for USC/CSC detection, next-state functions and the
state-graph normalcy check.
"""

from repro.stg.stg import STG, SignalEdge, TAU
from repro.stg.hashing import canonical_stg_form, canonical_stg_hash
from repro.stg.consistency import check_consistency, ConsistencyResult
from repro.stg.stategraph import StateGraph, build_state_graph
from repro.stg.nextstate import enabled_signals, enabled_outputs, next_state_value
from repro.stg.normalcy import (
    NormalcyReport,
    SignalNormalcy,
    check_normalcy_state_graph,
)
from repro.stg.parser import parse_stg, write_stg
from repro.stg.implementability import (
    check_autoconcurrency,
    check_output_persistency,
    is_output_persistent,
)
from repro.stg.compose import (
    parallel_compose,
    hide,
    internalise,
    rename_signals,
)
from repro.stg.transform import (
    contract_all_dummies,
    contract_dummy,
    remove_duplicate_places,
)

__all__ = [
    "parallel_compose",
    "hide",
    "internalise",
    "rename_signals",
    "contract_all_dummies",
    "contract_dummy",
    "remove_duplicate_places",
    "check_autoconcurrency",
    "check_output_persistency",
    "is_output_persistent",
    "STG",
    "SignalEdge",
    "TAU",
    "canonical_stg_form",
    "canonical_stg_hash",
    "check_consistency",
    "ConsistencyResult",
    "StateGraph",
    "build_state_graph",
    "enabled_signals",
    "enabled_outputs",
    "next_state_value",
    "NormalcyReport",
    "SignalNormalcy",
    "check_normalcy_state_graph",
    "parse_stg",
    "write_stg",
]
