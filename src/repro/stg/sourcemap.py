"""Source locations of ``.g`` file constituents.

The ``.g`` parser records where every signal declaration and every node
(place/transition) first appears, so downstream consumers — most notably the
:mod:`repro.lint` diagnostics — can point at the offending input line instead
of only naming a node.  Programmatically-built STGs have no source map; all
consumers must treat spans as optional.

Lines and columns are 1-based, matching the ``file:line:col`` convention of
compiler diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class SourceSpan:
    """A half-open token span inside one line of a source file."""

    line: int
    column: int
    length: int = 1
    file: Optional[str] = None

    def __str__(self) -> str:
        prefix = f"{self.file}:" if self.file else ""
        return f"{prefix}{self.line}:{self.column}"

    def with_file(self, file: Optional[str]) -> "SourceSpan":
        return replace(self, file=file)


#: Span-map kinds (the namespaces of :class:`SourceMap`).
KIND_SIGNAL = "signal"
KIND_PLACE = "place"
KIND_TRANSITION = "transition"


class SourceMap:
    """Definition spans of the constituents of one parsed STG.

    Each namespace maps a name to the span of its *first* occurrence: for
    signals the declaration token in ``.inputs``/``.outputs``/``.internal``,
    for places and transitions the first ``.graph`` token that created the
    node.  Implicit places (``<t,u>``) map to the span of the arc line that
    introduced them.
    """

    def __init__(self, file: Optional[str] = None):
        self.file = file
        self._spans: Dict[str, Dict[str, SourceSpan]] = {
            KIND_SIGNAL: {},
            KIND_PLACE: {},
            KIND_TRANSITION: {},
        }

    def record(self, kind: str, name: str, span: SourceSpan) -> None:
        """Record the definition span of ``name`` unless already known."""
        namespace = self._spans[kind]
        if name not in namespace:
            namespace[name] = span

    def get(self, kind: str, name: str) -> Optional[SourceSpan]:
        span = self._spans[kind].get(name)
        if span is not None and span.file is None and self.file is not None:
            return span.with_file(self.file)
        return span

    def signal(self, name: str) -> Optional[SourceSpan]:
        return self.get(KIND_SIGNAL, name)

    def place(self, name: str) -> Optional[SourceSpan]:
        return self.get(KIND_PLACE, name)

    def transition(self, name: str) -> Optional[SourceSpan]:
        return self.get(KIND_TRANSITION, name)

    def __len__(self) -> int:
        return sum(len(ns) for ns in self._spans.values())

    def copy(self) -> "SourceMap":
        clone = SourceMap(self.file)
        for kind, namespace in self._spans.items():
            clone._spans[kind] = dict(namespace)
        return clone
