"""STG composition: parallel composition, signal hiding, renaming.

Controllers are specified compositionally: an STG for the device, one for
the environment, one per channel — combined by *parallel composition*, which
synchronises transitions of shared signals, and *hiding*, which internalises
or silences signals after composition.  These are the standard operations of
the STG literature (and of tools like pcomp); the duplex/ring benchmarks in
`repro.models` were hand-composed in exactly this style.

Rules of :func:`parallel_compose` for a shared signal ``s``:

* I/O typing: input+input -> input; input+output -> output (the outputting
  side drives, the other observes); output+output is a composition error;
  internal signals must not be shared at all (hide or rename them first);
* transitions: every ``s±``-labelled transition of one component pairs with
  every same-polarity ``s±`` transition of the other; the pair fires as one
  transition consuming/producing both components' places.  Non-shared
  transitions (and dummies) are copied verbatim;
* places and initial markings are the disjoint union.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.stg.stg import STG, SignalEdge


class CompositionError(ReproError):
    """The components cannot be composed (signal typing clash)."""


def _signal_kind(stg: STG, signal: str) -> Optional[str]:
    if signal in stg.inputs:
        return "input"
    if signal in stg.outputs:
        return "output"
    if signal in stg.internal:
        return "internal"
    return None


def parallel_compose(a: STG, b: STG, name: Optional[str] = None) -> STG:
    """The parallel composition of two STGs (synchronising shared signals)."""
    shared = set(a.signals) & set(b.signals)
    for signal in shared:
        kind_a, kind_b = _signal_kind(a, signal), _signal_kind(b, signal)
        if "internal" in (kind_a, kind_b):
            raise CompositionError(
                f"internal signal {signal!r} cannot be shared; hide or "
                "rename it first"
            )
        if kind_a == kind_b == "output":
            raise CompositionError(
                f"signal {signal!r} is an output of both components"
            )

    inputs, outputs = [], []
    for stg in (a, b):
        for signal in stg.inputs:
            kind_other = _signal_kind(b if stg is a else a, signal)
            if kind_other == "output":
                continue  # becomes an output, added from the other side
            if signal not in inputs:
                inputs.append(signal)
        for signal in stg.outputs:
            if signal not in outputs:
                outputs.append(signal)
    internal = list(dict.fromkeys(a.internal + b.internal))
    inputs = [s for s in inputs if s not in outputs]

    result = STG(
        name or f"({a.name}||{b.name})",
        inputs=inputs,
        outputs=outputs,
        internal=internal,
    )

    # places: disjoint union, prefixed by component
    def place_name(tag: str, stg: STG, p: int) -> str:
        return f"{tag}:{stg.net.place_name(p)}"

    for tag, stg in (("A", a), ("B", b)):
        initial = stg.net.initial_marking
        for p in range(stg.net.num_places):
            result.add_place(place_name(tag, stg, p), tokens=initial[p])

    def add_copy(tag: str, stg: STG, t: int, new_name: str) -> None:
        result.add_transition(new_name, stg.label(t))
        for p in stg.net.preset(t):
            result.add_arc(place_name(tag, stg, p), new_name)
        for p in stg.net.postset(t):
            result.add_arc(new_name, place_name(tag, stg, p))

    # non-shared (and dummy) transitions are copied
    used_names: Dict[str, int] = {}

    def fresh(base: str) -> str:
        if base not in used_names and not result.net.has_transition(base):
            used_names[base] = 0
            return base
        used_names[base] = used_names.get(base, 0) + 1
        return f"{base}/{used_names[base]}"

    for tag, stg in (("A", a), ("B", b)):
        for t in range(stg.net.num_transitions):
            label = stg.label(t)
            if label is not None and label.signal in shared:
                continue
            add_copy(tag, stg, t, fresh(stg.net.transition_name(t)))

    # shared signals: synchronise same-polarity transition pairs
    for signal in sorted(shared):
        for polarity in (+1, -1):
            edge = SignalEdge(signal, polarity)
            for ta in a.edge_transitions(signal, polarity):
                for tb in b.edge_transitions(signal, polarity):
                    new_name = fresh(str(edge))
                    result.add_transition(new_name, edge)
                    for p in a.net.preset(ta):
                        result.add_arc(place_name("A", a, p), new_name)
                    for p in a.net.postset(ta):
                        result.add_arc(new_name, place_name("A", a, p))
                    for p in b.net.preset(tb):
                        result.add_arc(place_name("B", b, p), new_name)
                    for p in b.net.postset(tb):
                        result.add_arc(new_name, place_name("B", b, p))

    for signal, value in {**a.declared_initial_code, **b.declared_initial_code}.items():
        if signal in result.signals:
            result.set_initial_value(signal, value)
    return result


def hide(stg: STG, signals: Iterable[str], name: Optional[str] = None) -> STG:
    """Silence the given signals: their transitions become dummies.

    Hiding is how composed internal channels disappear from the interface;
    combine with :func:`repro.stg.transform.contract_all_dummies` to remove
    the silent transitions structurally.
    """
    hidden = set(signals)
    unknown = hidden - set(stg.signals)
    if unknown:
        raise ReproError(f"cannot hide unknown signals: {sorted(unknown)}")
    result = STG(
        name or stg.name,
        inputs=[s for s in stg.inputs if s not in hidden],
        outputs=[s for s in stg.outputs if s not in hidden],
        internal=[s for s in stg.internal if s not in hidden],
    )
    net = stg.net
    initial = net.initial_marking
    for p in range(net.num_places):
        result.add_place(net.place_name(p), tokens=initial[p])
    for t in range(net.num_transitions):
        label = stg.label(t)
        if label is not None and label.signal in hidden:
            label = None
        result.add_transition(net.transition_name(t), label)
        for p in net.preset(t):
            result.add_arc(net.place_name(p), net.transition_name(t))
        for p in net.postset(t):
            result.add_arc(net.transition_name(t), net.place_name(p))
    for signal, value in stg.declared_initial_code.items():
        if signal not in hidden:
            result.set_initial_value(signal, value)
    return result


def internalise(stg: STG, signals: Iterable[str], name: Optional[str] = None) -> STG:
    """Move the given output signals to the internal set (keeps the edges)."""
    moved = set(signals)
    bad = moved - set(stg.outputs)
    if bad:
        raise ReproError(
            f"only outputs can be internalised; not outputs: {sorted(bad)}"
        )
    result = stg.copy(name or stg.name)
    result.outputs = [s for s in result.outputs if s not in moved]
    result.internal = result.internal + sorted(moved)
    return result


def rename_signals(
    stg: STG, mapping: Dict[str, str], name: Optional[str] = None
) -> STG:
    """Rename signals (e.g. to wire components together before composing)."""
    for old, new in mapping.items():
        if old not in stg.signals:
            raise ReproError(f"unknown signal {old!r}")
        if new in stg.signals and new not in mapping:
            raise ReproError(f"renaming {old!r} collides with existing {new!r}")

    def rename(s: str) -> str:
        return mapping.get(s, s)

    result = STG(
        name or stg.name,
        inputs=[rename(s) for s in stg.inputs],
        outputs=[rename(s) for s in stg.outputs],
        internal=[rename(s) for s in stg.internal],
    )
    net = stg.net
    initial = net.initial_marking
    for p in range(net.num_places):
        result.add_place(net.place_name(p), tokens=initial[p])
    for t in range(net.num_transitions):
        label = stg.label(t)
        if label is not None:
            label = SignalEdge(rename(label.signal), label.polarity)
        # transition names keep their old text (names are free-form)
        result.add_transition(net.transition_name(t), label)
        for p in net.preset(t):
            result.add_arc(net.place_name(p), net.transition_name(t))
        for p in net.postset(t):
            result.add_arc(net.transition_name(t), net.place_name(p))
    for signal, value in stg.declared_initial_code.items():
        result.set_initial_value(rename(signal), value)
    return result
