"""Explicit state graphs with binary codes — the baseline conflict detector.

Paper Section 2.1: the state graph ``SG = (S, A, s0, Code)`` annotates every
reachable marking with its binary signal code.  Two distinct states are in

* **USC conflict** if they carry the same code;
* **CSC conflict** if additionally their sets of enabled output signals
  (``Out``) differ.

This module builds the full state graph explicitly — exactly the approach
whose memory blow-up motivates the paper — and detects conflicts by hashing
states on their codes.  It serves as (a) the explicit baseline in the
benchmark harness and (b) the ground-truth oracle for the unfolding/IP
method in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.petri.marking import Marking
from repro.stg.consistency import ConsistencyResult, check_consistency
from repro.stg.nextstate import enabled_outputs, next_state_value
from repro.stg.stg import STG


@dataclass
class CodingConflict:
    """A witnessed pair of states in USC (and possibly CSC) conflict."""

    code: Tuple[int, ...]
    state_a: int
    state_b: int
    marking_a: Marking
    marking_b: Marking
    out_a: FrozenSet[str]
    out_b: FrozenSet[str]

    @property
    def is_csc_conflict(self) -> bool:
        return self.out_a != self.out_b

    def describe(self, stg: STG) -> str:
        code = "".join(map(str, self.code))
        return (
            f"code {code}: states {self.state_a} and {self.state_b}, "
            f"Out={{{', '.join(sorted(self.out_a))}}} vs "
            f"Out={{{', '.join(sorted(self.out_b))}}}"
        )


@dataclass
class StateGraph:
    """The annotated state graph of a consistent STG."""

    stg: STG
    consistency: ConsistencyResult
    codes: List[Tuple[int, ...]] = field(default_factory=list)
    out_sets: List[FrozenSet[str]] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        return self.consistency.graph.num_states

    @property
    def num_arcs(self) -> int:
        return self.consistency.graph.num_edges

    @property
    def initial_code(self) -> Tuple[int, ...]:
        return self.consistency.initial_code

    def marking(self, state: int) -> Marking:
        return self.consistency.graph.markings[state]

    def code(self, state: int) -> Tuple[int, ...]:
        return self.codes[state]

    def out(self, state: int) -> FrozenSet[str]:
        return self.out_sets[state]

    def next_state_vector(self, state: int, signal: str) -> int:
        return next_state_value(
            self.stg, self.marking(state), self.codes[state], signal
        )

    # -- conflict detection ----------------------------------------------------

    def _code_classes(self) -> Dict[Tuple[int, ...], List[int]]:
        classes: Dict[Tuple[int, ...], List[int]] = {}
        for state, code in enumerate(self.codes):
            classes.setdefault(code, []).append(state)
        return classes

    def usc_conflicts(self, first_only: bool = False) -> List[CodingConflict]:
        """All (or the first) pairs of distinct states sharing a code."""
        conflicts: List[CodingConflict] = []
        for code, states in self._code_classes().items():
            for i, a in enumerate(states):
                for b in states[i + 1:]:
                    conflicts.append(self._make_conflict(code, a, b))
                    if first_only:
                        return conflicts
        return conflicts

    def csc_conflicts(self, first_only: bool = False) -> List[CodingConflict]:
        """USC conflicts whose ``Out`` sets differ."""
        conflicts: List[CodingConflict] = []
        for code, states in self._code_classes().items():
            for i, a in enumerate(states):
                for b in states[i + 1:]:
                    if self.out_sets[a] != self.out_sets[b]:
                        conflicts.append(self._make_conflict(code, a, b))
                        if first_only:
                            return conflicts
        return conflicts

    def has_usc(self) -> bool:
        """True iff the STG satisfies the Unique State Coding property."""
        return not self.usc_conflicts(first_only=True)

    def has_csc(self) -> bool:
        """True iff the STG satisfies the Complete State Coding property."""
        return not self.csc_conflicts(first_only=True)

    def _make_conflict(
        self, code: Tuple[int, ...], a: int, b: int
    ) -> CodingConflict:
        return CodingConflict(
            code=code,
            state_a=a,
            state_b=b,
            marking_a=self.marking(a),
            marking_b=self.marking(b),
            out_a=self.out_sets[a],
            out_b=self.out_sets[b],
        )

    # -- diagnostics -------------------------------------------------------------

    def trace_to(self, state: int) -> List[str]:
        """Transition names along a shortest path from the initial state."""
        path = self.consistency.graph.path_to(state)
        return [self.stg.net.transition_name(t) for t in path]


def build_state_graph(
    stg: STG,
    consistency: Optional[ConsistencyResult] = None,
    max_states: int = 500_000,
) -> StateGraph:
    """Explore the STG, check consistency and annotate states with codes and
    ``Out`` sets."""
    if consistency is None:
        consistency = check_consistency(stg, max_states=max_states)
    graph = StateGraph(stg=stg, consistency=consistency)
    for state in range(consistency.graph.num_states):
        code = consistency.code_of_state(state)
        graph.codes.append(code)
        graph.out_sets.append(
            # weak excitation only differs on STGs with dummies
            enabled_outputs(stg, consistency.graph.markings[state], weak=True)
        )
    return graph
