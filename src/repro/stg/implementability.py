"""Further implementability conditions: autoconcurrency and persistency.

The paper's step (a) — "checking the necessary and sufficient conditions for
STG's implementability as a logic circuit" — bundles several conditions
besides USC/CSC.  This module adds the two standard behavioural ones:

* **no autoconcurrency** — two edges of the *same* signal must never be
  concurrently enabled (a circuit cannot fire one signal twice at once;
  together with consistency this keeps the code well defined).  We check it
  structurally on the unfolding prefix: autoconcurrency is exactly a pair of
  concurrent events with the same signal label — a nice showcase of prefix
  reasoning (no state traversal needed);
* **output persistency** — an enabled *output* edge may not be disabled by
  firing any other transition (a disabled excited output is a potential
  hazard).  Checked on the explicit state graph, which doubles as the test
  oracle for the prefix-based autoconcurrency check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.stg.stategraph import StateGraph, build_state_graph
from repro.stg.stg import STG
from repro.unfolding.occurrence_net import Prefix
from repro.unfolding.relations import PrefixRelations
from repro.unfolding.unfolder import unfold


@dataclass
class AutoconcurrencyWitness:
    """Two concurrent events carrying edges of the same signal."""

    signal: str
    event_a: int
    event_b: int
    trace: List[str]  # a firing sequence enabling both


@dataclass
class PersistencyViolation:
    """An excited output edge disabled by another transition firing."""

    signal: str                 # the disabled output signal
    disabled_edge: str          # transition name of the disabled edge
    disabling_transition: str   # what fired
    trace: List[str]            # path to the state where it happens


def check_autoconcurrency(
    source: Union[STG, Prefix],
    relations: Optional[PrefixRelations] = None,
) -> Optional[AutoconcurrencyWitness]:
    """Return a witness of autoconcurrency, or ``None`` if there is none.

    Two events are autoconcurrent iff they are concurrent in the prefix and
    carry the same signal.  Completeness: any reachable marking enabling two
    same-signal transitions yields two concurrent events somewhere in the
    full unfolding, and the complete prefix preserves at least one such pair
    below its cut-offs (both events extend a common cut-off-free
    configuration).
    """
    prefix = source if isinstance(source, Prefix) else unfold(source)
    if prefix.stg is None:
        raise ValueError("autoconcurrency is an STG property")
    stg = prefix.stg
    relations = relations or PrefixRelations(prefix)
    by_signal = {}
    for event in prefix.events:
        label = stg.label(event.transition)
        if label is None:
            continue
        by_signal.setdefault(label.signal, []).append(event.index)
    for signal, events in by_signal.items():
        for i, e in enumerate(events):
            for f in events[i + 1:]:
                if relations.concurrent(e, f):
                    trace = _joint_trace(prefix, e, f)
                    return AutoconcurrencyWitness(signal, e, f, trace)
    return None


def _joint_trace(prefix: Prefix, e: int, f: int) -> List[str]:
    """A firing sequence executing [e] ∪ [f] minus the two events themselves
    (reaching a marking at which both are enabled)."""
    from repro.unfolding.configurations import linearise
    from repro.utils.bitset import BitSet

    joint = BitSet(
        (prefix.events[e].history.bits | prefix.events[f].history.bits)
        & ~(1 << e)
        & ~(1 << f)
    )
    return [prefix.net.transition_name(t) for t in linearise(prefix, joint)]


def check_output_persistency(
    stg: STG, state_graph: Optional[StateGraph] = None
) -> List[PersistencyViolation]:
    """All output-persistency violations (empty list = persistent).

    A violation is a state ``M`` with an enabled output edge ``t`` and a
    transition ``u`` (of a different signal) such that ``M[u>M'`` and ``t``
    is not enabled at ``M'``.
    """
    if state_graph is None:
        state_graph = build_state_graph(stg)
    graph = state_graph.consistency.graph
    net = stg.net
    non_inputs = set(stg.non_input_signals)
    violations: List[PersistencyViolation] = []
    seen: set = set()
    for state in range(graph.num_states):
        marking = graph.markings[state]
        enabled = net.enabled(marking)
        output_edges = [
            t
            for t in enabled
            if (label := stg.label(t)) is not None and label.signal in non_inputs
        ]
        if not output_edges:
            continue
        for u, target in graph.successors[state]:
            label_u = stg.label(u)
            target_marking = graph.markings[target]
            for t in output_edges:
                if t == u:
                    continue
                label_t = stg.label(t)
                if label_u is not None and label_u.signal == label_t.signal:
                    continue  # the same signal firing is not a disabling
                if not net.is_enabled(target_marking, t):
                    key = (label_t.signal, t, u)
                    if key in seen:
                        continue
                    seen.add(key)
                    violations.append(
                        PersistencyViolation(
                            signal=label_t.signal,
                            disabled_edge=net.transition_name(t),
                            disabling_transition=net.transition_name(u),
                            trace=[
                                net.transition_name(x)
                                for x in graph.path_to(state)
                            ],
                        )
                    )
    return violations


def is_output_persistent(stg: STG) -> bool:
    return not check_output_persistency(stg)
