"""Enabled signals, output excitation and the next-state function ``Nxt_z``.

Paper Section 2.1 defines ``Out(M)``, the set of *output* signals with an
enabled edge at marking ``M`` — the ingredient that distinguishes CSC from
USC.  Section 6 defines the boolean next-state function ``Nxt_z`` used by the
normalcy property: ``Nxt_z(M)`` is the code bit of ``z`` at ``M`` flipped iff
an edge of ``z`` is enabled at ``M``.
"""

from __future__ import annotations

from typing import FrozenSet, Sequence

from repro.petri.marking import Marking
from repro.stg.stg import STG


def enabled_signals(stg: STG, marking: Marking) -> FrozenSet[str]:
    """All signals (input or output) with an enabled edge at ``marking``."""
    result = set()
    for transition in stg.net.enabled(marking):
        label = stg.label(transition)
        if label is not None:
            result.add(label.signal)
    return frozenset(result)


def enabled_outputs(
    stg: STG, marking: Marking, weak: bool = False
) -> FrozenSet[str]:
    """``Out(M)``: non-input signals with an enabled edge at ``marking``.

    With ``weak=True`` the excitation is taken modulo silent moves: an
    output counts as enabled if some sequence of dummy transitions enables
    it.  This is the appropriate notion for STGs with dummies (two markings
    related only by silent moves should not constitute a CSC conflict — the
    τ-case the paper defers to its full version).
    """
    non_inputs = set(stg.non_input_signals)
    if not weak or not stg.has_dummies():
        return frozenset(
            s for s in enabled_signals(stg, marking) if s in non_inputs
        )
    result = set()
    for m in silent_closure(stg, marking):
        for s in enabled_signals(stg, m):
            if s in non_inputs:
                result.add(s)
    return frozenset(result)


def silent_closure(stg: STG, marking: Marking) -> FrozenSet[Marking]:
    """All markings reachable from ``marking`` by dummy transitions only."""
    seen = {marking}
    stack = [marking]
    while stack:
        current = stack.pop()
        for t in stg.net.enabled(current):
            if stg.label(t) is not None:
                continue
            successor = stg.net.fire(current, t)
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return frozenset(seen)


def enabled_edge_polarities(stg: STG, marking: Marking, signal: str) -> FrozenSet[int]:
    """The set of enabled edge directions (+1/-1) of ``signal`` at ``marking``."""
    result = set()
    for transition in stg.net.enabled(marking):
        label = stg.label(transition)
        if label is not None and label.signal == signal:
            result.add(label.polarity)
    return frozenset(result)


def next_state_value(
    stg: STG, marking: Marking, code: Sequence[int], signal: str
) -> int:
    """``Nxt_z(M)`` for ``z = signal`` given the code of ``M``.

    Per the paper: with ``u = Code(M)``, ``Nxt_z(M) = 0`` if ``u_z = 0`` and
    no ``z+`` is enabled, or ``u_z = 1`` and a ``z-`` is enabled; dually for
    value 1.  This collapses to XOR-ing the code bit with "an edge of ``z``
    is enabled" — on consistent STGs the enabled edge always has the polarity
    that flips the current bit, so both formulations agree.
    """
    bit = code[stg.signal_index(signal)]
    polarities = enabled_edge_polarities(stg, marking, signal)
    if bit == 0:
        return 1 if +1 in polarities else 0
    return 0 if -1 in polarities else 1
