"""STG consistency: well-definedness of the binary state code.

Paper Section 2.1: an STG is *consistent* if for every reachable marking all
firing sequences from ``M0`` yield the same signal-change vector, and the
resulting code ``Code(M) = v0 + v_sigma`` is binary.  Equivalently, per
signal, rising and falling edges strictly alternate along every firing
sequence, starting with the edge direction fixed by ``v0``.

The check explores the reachability graph once, propagating signal-change
vectors; the initial vector ``v0`` is inferred (or validated, if declared on
the STG) from the requirement that all codes be in ``{0,1}``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InconsistentSTGError
from repro.petri.marking import Marking
from repro.petri.reachability import ReachabilityGraph, explore
from repro.stg.stg import STG


@dataclass
class ConsistencyResult:
    """Outcome of :func:`check_consistency`.

    ``initial_code`` maps each signal to its inferred/declared initial value.
    ``deltas`` maps each reachable state index to its signal-change vector
    relative to the initial marking.  ``graph`` is the reachability graph the
    check walked (reused by the state-graph builder to avoid re-exploration).
    """

    stg: STG
    graph: ReachabilityGraph
    initial_code: Tuple[int, ...]
    deltas: List[Tuple[int, ...]]

    def code_of_state(self, state: int) -> Tuple[int, ...]:
        return tuple(
            v + d for v, d in zip(self.initial_code, self.deltas[state])
        )


def check_consistency(
    stg: STG, max_states: int = 500_000
) -> ConsistencyResult:
    """Verify consistency and return codes; raise
    :class:`InconsistentSTGError` otherwise.

    Consistency failures reported:

    * *path-dependent code*: two firing sequences reach the same marking with
      different signal-change vectors;
    * *non-binary code*: some signal's change vector spans more than the two
      values a binary signal can take;
    * *declared value contradiction*: an explicitly declared initial value is
      incompatible with the observed edge directions.
    """
    graph = explore(stg.net, max_states=max_states)
    num_signals = len(stg.signals)
    deltas: List[Optional[Tuple[int, ...]]] = [None] * graph.num_states
    deltas[0] = (0,) * num_signals
    queue = deque([0])
    while queue:
        state = queue.popleft()
        delta = deltas[state]
        assert delta is not None
        for transition, target in graph.successors[state]:
            signal, change = stg.signal_change(transition)
            if signal is None:
                new_delta = delta
            else:
                new_delta = (
                    delta[:signal] + (delta[signal] + change,) + delta[signal + 1:]
                )
            if deltas[target] is None:
                deltas[target] = new_delta
                queue.append(target)
            elif deltas[target] != new_delta:
                raise InconsistentSTGError(
                    f"marking {_marking_str(stg, graph.markings[target])} is "
                    f"reached with different signal-change vectors "
                    f"{deltas[target]} and {new_delta}"
                )

    resolved: List[Tuple[int, ...]] = [d for d in deltas if d is not None]
    assert len(resolved) == graph.num_states

    initial_code: List[int] = []
    declared = stg.declared_initial_code
    for i, signal in enumerate(stg.signals):
        low = min(d[i] for d in resolved)
        high = max(d[i] for d in resolved)
        if high - low > 1:
            raise InconsistentSTGError(
                f"signal {signal!r} has non-binary code range [{low}, {high}]"
            )
        if low == -1:
            value = 1
        elif high == 1:
            value = 0
        else:  # signal never changes; take declared value or default 0
            value = declared.get(signal, 0)
        if signal in declared and declared[signal] != value and high != low:
            raise InconsistentSTGError(
                f"declared initial value {declared[signal]} of {signal!r} "
                f"contradicts observed edges (inferred {value})"
            )
        if signal in declared and high == low:
            value = declared[signal]
        initial_code.append(value)

    return ConsistencyResult(
        stg=stg,
        graph=graph,
        initial_code=tuple(initial_code),
        deltas=resolved,
    )


def is_consistent(stg: STG, max_states: int = 500_000) -> bool:
    """Boolean wrapper around :func:`check_consistency`."""
    try:
        check_consistency(stg, max_states=max_states)
    except InconsistentSTGError:
        return False
    return True


def _marking_str(stg: STG, marking: Marking) -> str:
    names = [stg.net.place_name(i) for i in marking.support()]
    return "{" + ", ".join(sorted(names)) + "}"
