"""Reader/writer for the standard astg ``.g`` STG interchange format.

The dialect understood here is the one used by SIS, petrify and punf:

.. code-block:: text

    .model vme
    .inputs dsr ldtack
    .outputs lds d dtack
    .graph
    dsr+ lds+
    lds+ ldtack+
    ldtack+ d+
    ...
    .marking { <dsr-,dsr+> }
    .end

Rules applied when classifying ``.graph`` tokens:

* ``z+``, ``z-`` (optionally with an instance suffix ``/k``) where ``z`` is a
  declared signal denote signal transitions;
* a bare name (optionally ``/k``) declared in ``.dummy`` denotes a silent
  transition;
* any other token is an (explicit) place;
* an arc written directly between two transitions goes through an *implicit*
  place named ``<src,dst>``, which is also how ``.marking`` refers to it.

Extensions: ``.internal`` declares internal signals (treated as outputs for
CSC purposes but written back as ``.internal``); ``.initial z=1 ...`` pins
initial signal values (non-standard but convenient for tests).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ParseError
from repro.stg.sourcemap import (
    KIND_PLACE,
    KIND_SIGNAL,
    KIND_TRANSITION,
    SourceMap,
    SourceSpan,
)
from repro.stg.stg import STG, SignalEdge

_EDGE_RE = re.compile(r"^(?P<signal>[A-Za-z_][\w.\[\]]*)(?P<dir>[+-])(?:/(?P<inst>\d+))?$")
_DUMMY_RE = re.compile(r"^(?P<name>[A-Za-z_][\w.\[\]]*)(?:/(?P<inst>\d+))?$")
_TOKEN_RE = re.compile(r"\S+")

#: The three signal declaration classes a ``.g`` header may use.
_SIGNAL_DIRECTIVES = (".inputs", ".outputs", ".internal")


def _classify(
    token: str, signals: set, dummies: set
) -> Tuple[str, Optional[SignalEdge]]:
    """Return ``(kind, edge)`` with kind in {'transition', 'place'}."""
    match = _EDGE_RE.match(token)
    if match and match.group("signal") in signals:
        edge = SignalEdge(match.group("signal"), +1 if match.group("dir") == "+" else -1)
        return "transition", edge
    match = _DUMMY_RE.match(token)
    if match and match.group("name") in dummies:
        return "transition", None
    return "place", None


def parse_stg(text: str, filename: Optional[str] = None) -> STG:
    """Parse astg text into an :class:`~repro.stg.stg.STG`.

    ``filename`` (purely informational) is recorded on the resulting STG's
    :class:`~repro.stg.sourcemap.SourceMap`, which maps every signal
    declaration and every place/transition to the line/column of its first
    occurrence — the anchor for ``repro-stg lint`` diagnostics.
    """
    model_name = "stg"
    inputs: List[str] = []
    outputs: List[str] = []
    internal: List[str] = []
    dummies: List[str] = []
    graph_lines: List[Tuple[int, str]] = []
    marking_tokens: List[Tuple[int, str]] = []
    initial_values: Dict[str, Tuple[int, int]] = {}
    mode = None
    saw_end = False
    source = SourceMap(filename)
    declared_signals: Dict[str, Tuple[str, int]] = {}
    signal_lists = {".inputs": inputs, ".outputs": outputs, ".internal": internal}

    for line_no, raw in enumerate(text.splitlines(), start=1):
        content = raw.split("#", 1)[0]
        line = content.strip()
        if not line:
            continue
        if saw_end:
            raise ParseError("content after .end", line_no)
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            rest = rest.strip()
            if directive in (".model", ".name"):
                model_name = rest or model_name
            elif directive in _SIGNAL_DIRECTIVES:
                for match in _TOKEN_RE.finditer(content):
                    name = match.group()
                    if name == directive:
                        continue
                    if name in declared_signals:
                        previous_class, previous_line = declared_signals[name]
                        where = (
                            f"also in {previous_class} (line {previous_line})"
                            if previous_class != directive
                            else f"already on line {previous_line}"
                        )
                        raise ParseError(
                            f"signal {name!r} declared twice: "
                            f"{directive} here, {where}",
                            line_no,
                        )
                    declared_signals[name] = (directive, line_no)
                    signal_lists[directive].append(name)
                    source.record(
                        KIND_SIGNAL,
                        name,
                        SourceSpan(line_no, match.start() + 1, len(name)),
                    )
            elif directive == ".dummy":
                dummies.extend(rest.split())
            elif directive == ".graph":
                mode = "graph"
            elif directive == ".marking":
                marking_tokens.extend(
                    (line_no, token) for token in _marking_tokens(rest, line_no)
                )
                mode = None
            elif directive == ".initial":
                for assignment in rest.split():
                    name, _, value = assignment.partition("=")
                    if value not in ("0", "1"):
                        raise ParseError(
                            f"bad initial value in {assignment!r}", line_no
                        )
                    initial_values[name] = (line_no, int(value))
            elif directive in (".capacity", ".slowenv", ".end"):
                if directive == ".end":
                    saw_end = True
                mode = None
            else:
                raise ParseError(f"unknown directive {directive!r}", line_no)
            continue
        if mode == "graph":
            graph_lines.append((line_no, content))
        else:
            raise ParseError(f"unexpected line {line!r}", line_no)

    if not saw_end:
        raise ParseError("missing .end")

    stg = STG(model_name, inputs=inputs, outputs=outputs, internal=internal)
    signals = set(stg.signals)
    dummy_set = set(dummies)

    def ensure_node(token: str, span: SourceSpan) -> Tuple[str, str]:
        """Create the node for ``token`` if new; return (kind, net_name)."""
        kind, edge = _classify(token, signals, dummy_set)
        if kind == "transition":
            if not stg.net.has_transition(token):
                stg.add_transition(token, edge)
            source.record(KIND_TRANSITION, token, span)
            return kind, token
        if not stg.net.has_place(token):
            stg.add_place(token)
        source.record(KIND_PLACE, token, span)
        return kind, token

    implicit: Dict[Tuple[str, str], str] = {}

    for line_no, content in graph_lines:
        matches = list(_TOKEN_RE.finditer(content))
        if len(matches) < 2:
            raise ParseError("graph line needs a source and targets", line_no)
        spans = [
            SourceSpan(line_no, m.start() + 1, len(m.group())) for m in matches
        ]
        src_kind, src = ensure_node(matches[0].group(), spans[0])
        for match, span in zip(matches[1:], spans[1:]):
            dst_kind, dst = ensure_node(match.group(), span)
            if src_kind == dst_kind == "transition":
                place = f"<{src},{dst}>"
                if (src, dst) not in implicit:
                    if stg.net.has_place(place):
                        raise ParseError(
                            f"implicit place {place!r} collides with an "
                            "explicit place of the same name",
                            line_no,
                        )
                    stg.add_place(place)
                    implicit[(src, dst)] = place
                    stg.add_arc(src, place)
                    stg.add_arc(place, dst)
                    source.record(KIND_PLACE, place, spans[0])
            elif src_kind == dst_kind == "place":
                raise ParseError(
                    f"arc between two places: {src!r} -> {dst!r}", line_no
                )
            else:
                stg.add_arc(src, dst)

    for line_no, token in marking_tokens:
        name, _, count_text = token.partition("=")
        if count_text:
            try:
                count = int(count_text)
            except ValueError:
                raise ParseError(
                    f"bad token count in marking token {token!r}", line_no
                ) from None
            if count < 0:
                raise ParseError(
                    f"negative token count in marking token {token!r}", line_no
                )
        else:
            count = 1
        if name.startswith("<") and name.endswith(">"):
            inner = name[1:-1]
            src, _, dst = inner.partition(",")
            place = implicit.get((src.strip(), dst.strip()))
            if place is None and stg.net.has_place(name):
                # an *explicit* place whose name uses the implicit-pair
                # syntax (write_stg emits these when a <src,dst> place
                # acquired extra producers/consumers)
                place = name
            if place is None:
                raise ParseError(
                    f"marking names unknown implicit place {name!r}", line_no
                )
            stg.net.set_tokens(place, count)
        else:
            if not stg.net.has_place(name):
                raise ParseError(
                    f"marking names unknown place {name!r}", line_no
                )
            stg.net.set_tokens(name, count)

    for signal, (line_no, value) in initial_values.items():
        if signal not in stg.signals:
            raise ParseError(
                f".initial names undeclared signal {signal!r}", line_no
            )
        stg.set_initial_value(signal, value)

    stg.source_map = source
    return stg


def _marking_tokens(rest: str, line_no: int) -> List[str]:
    body = rest.strip()
    if body.startswith("{"):
        body = body[1:]
    if body.endswith("}"):
        body = body[:-1]
    # implicit place tokens contain a comma inside <...>; protect them
    tokens: List[str] = []
    depth = 0
    current = ""
    for char in body:
        if char == "<":
            depth += 1
        elif char == ">":
            depth -= 1
            if depth < 0:
                raise ParseError("unbalanced '<' in .marking", line_no)
        if char.isspace() and depth == 0:
            if current:
                tokens.append(current)
                current = ""
        else:
            current += char
    if current:
        tokens.append(current)
    if depth != 0:
        raise ParseError("unbalanced '<' in .marking", line_no)
    return tokens


def round_trippable(stg: STG) -> bool:
    """Whether ``write_stg`` -> ``parse_stg`` can reproduce ``stg`` exactly.

    The astg dialect has expressibility limits the writer cannot work
    around without changing the net's identity:

    * arc weights (non-ordinary nets) have no syntax;
    * a place with no arcs at all never appears in ``.graph`` (and, if
      marked, would make ``.marking`` reference an unknown name);
    * names containing whitespace or ``#`` (the comment starter) do not
      survive tokenization;
    * a name that re-classifies differently on read — a place named like a
      declared signal's edge (``a+``), a non-dummy transition whose name
      does not spell its own label, a dummy whose name is not a plain
      identifier — comes back as a different kind of node.

    The fuzzer's round-trip oracle treats a ``False`` here as "skip"; a
    ``True`` followed by a failed round-trip is a bug.
    """
    net = stg.net
    if not net.is_ordinary():
        return False
    signals = set(stg.signals)
    dummies = {
        _DUMMY_RE.match(net.transition_name(t)).group("name")  # type: ignore[union-attr]
        for t in range(net.num_transitions)
        if stg.is_dummy(t) and _DUMMY_RE.match(net.transition_name(t))
    }

    def tokenizes(name: str) -> bool:
        return bool(name) and "#" not in name and not any(c.isspace() for c in name)

    for t in range(net.num_transitions):
        name = net.transition_name(t)
        if not tokenizes(name):
            return False
        kind, edge = _classify(name, signals, dummies)
        if kind != "transition" or edge != stg.label(t):
            return False
    for p in range(net.num_places):
        name = net.place_name(p)
        if not tokenizes(name):
            return False
        if not net.place_preset(p) and not net.place_postset(p):
            return False
        kind, _edge = _classify(name, signals, dummies)
        if kind != "place":
            return False
    return True


def write_stg(stg: STG) -> str:
    """Serialise an STG back to astg text accepted by :func:`parse_stg`.

    Implicit places (one producer, one consumer, name not needed elsewhere)
    are written as direct transition-to-transition arcs, matching the usual
    astg style; all other places are written explicitly.
    """
    net = stg.net
    lines = [f".model {stg.name}"]
    if stg.inputs:
        lines.append(".inputs " + " ".join(stg.inputs))
    if stg.outputs:
        lines.append(".outputs " + " ".join(stg.outputs))
    if stg.internal:
        lines.append(".internal " + " ".join(stg.internal))
    dummies = sorted(
        {net.transition_name(t) for t in range(net.num_transitions) if stg.is_dummy(t)}
    )
    if dummies:
        lines.append(".dummy " + " ".join(dummies))
    lines.append(".graph")

    initial = net.initial_marking
    marked: List[str] = []
    written_pairs = set()
    for p in range(net.num_places):
        producers = list(net.place_preset(p))
        consumers = list(net.place_postset(p))
        name = net.place_name(p)
        implicit = False
        if len(producers) == 1 and len(consumers) == 1:
            src = net.transition_name(producers[0])
            dst = net.transition_name(consumers[0])
            # the implicit form renames the place to <src,dst> on re-read, so
            # only use it when that *is* the name (parallel places between the
            # same transitions also stay explicit — they would collapse into
            # one on re-read, but only the first can carry the implicit name)
            pair = (producers[0], consumers[0])
            implicit = name == f"<{src},{dst}>" and pair not in written_pairs
            if implicit:
                written_pairs.add(pair)
        if implicit:
            lines.append(f"{src} {dst}")
            if initial[p]:
                marked.append(name if initial[p] == 1 else f"{name}={initial[p]}")
        else:
            for producer in producers:
                lines.append(f"{net.transition_name(producer)} {name}")
            for consumer in consumers:
                lines.append(f"{name} {net.transition_name(consumer)}")
            if initial[p]:
                marked.append(name if initial[p] == 1 else f"{name}={initial[p]}")

    lines.append(".marking { " + " ".join(marked) + " }")
    declared = stg.declared_initial_code
    if declared:
        lines.append(
            ".initial "
            + " ".join(f"{signal}={value}" for signal, value in sorted(declared.items()))
        )
    lines.append(".end")
    return "\n".join(lines) + "\n"
