"""The STG class: a net system plus signal edge labelling.

Following the paper, an STG is a triple ``(Sigma, Z, lambda)`` where ``Sigma``
is a net system, ``Z`` a finite signal set and ``lambda`` labels each
transition with ``z+``, ``z-`` or the silent label ``tau``.  Signals are
partitioned into inputs and outputs (outputs include internal signals for the
purposes of CSC; we additionally track the internal set so that writers can
round-trip ``.g`` files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NetStructureError
from repro.petri.net import PetriNet
from repro.stg.sourcemap import SourceMap

#: The silent (dummy) label of the paper's ``lambda : T -> Z± ∪ {tau}``.
TAU = None


@dataclass(frozen=True)
class SignalEdge:
    """A signal transition label ``z+`` or ``z-``.

    ``polarity`` is ``+1`` for a rising edge and ``-1`` for a falling edge.
    """

    signal: str
    polarity: int

    def __post_init__(self):
        if self.polarity not in (+1, -1):
            raise ValueError("polarity must be +1 or -1")

    def __str__(self) -> str:
        return f"{self.signal}{'+' if self.polarity > 0 else '-'}"

    @classmethod
    def parse(cls, token: str) -> "SignalEdge":
        """Parse ``z+`` / ``z-`` (no instance suffix)."""
        if len(token) < 2 or token[-1] not in "+-":
            raise ValueError(f"not a signal edge: {token!r}")
        return cls(token[:-1], +1 if token[-1] == "+" else -1)


class STG:
    """A Signal Transition Graph.

    The underlying net is built through this class so that every transition
    receives a label at creation time.  Transition *names* are distinct from
    labels: several transitions may carry the same edge label (``lds+/1``,
    ``lds+/2`` in astg notation).

    >>> stg = STG("tiny", inputs=["a"], outputs=["b"])
    >>> stg.add_place("p0", tokens=1)
    0
    >>> stg.add_transition("a+", SignalEdge("a", +1))
    0
    >>> stg.net.num_transitions
    1
    >>> str(stg.label(0))
    'a+'
    """

    def __init__(
        self,
        name: str = "stg",
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
        internal: Iterable[str] = (),
    ):
        self.net = PetriNet(name)
        self.inputs: List[str] = list(dict.fromkeys(inputs))
        self.outputs: List[str] = list(dict.fromkeys(outputs))
        self.internal: List[str] = list(dict.fromkeys(internal))
        overlap = (set(self.inputs) & set(self.outputs)) | (
            set(self.inputs) & set(self.internal)
        ) | (set(self.outputs) & set(self.internal))
        if overlap:
            raise NetStructureError(f"signals declared twice: {sorted(overlap)}")
        self._labels: List[Optional[SignalEdge]] = []
        self._initial_code: Dict[str, int] = {}
        #: Definition spans when parsed from a ``.g`` file; ``None`` for
        #: programmatically-built STGs.  Not part of the content identity
        #: (excluded from :func:`~repro.stg.hashing.canonical_stg_hash`).
        self.source_map: Optional[SourceMap] = None

    # -- signal sets ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self.net.name

    @property
    def signals(self) -> List[str]:
        """All signals in declaration order: inputs, outputs, internal."""
        return self.inputs + self.outputs + self.internal

    @property
    def non_input_signals(self) -> List[str]:
        """Outputs plus internal signals — the ``Z_O`` of the CSC definition."""
        return self.outputs + self.internal

    def signal_index(self, signal: str) -> int:
        try:
            return self.signals.index(signal)
        except ValueError:
            raise NetStructureError(f"unknown signal: {signal!r}") from None

    def is_output_like(self, signal: str) -> bool:
        return signal in self.outputs or signal in self.internal

    # -- construction --------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> int:
        return self.net.add_place(name, tokens)

    def add_transition(self, name: str, label: Optional[SignalEdge]) -> int:
        """Add a transition carrying ``label`` (``TAU``/None for dummies)."""
        if label is not None and label.signal not in self.signals:
            raise NetStructureError(
                f"label {label} uses undeclared signal {label.signal!r}"
            )
        index = self.net.add_transition(name)
        self._labels.append(label)
        return index

    def add_arc(self, source: str, target: str) -> None:
        self.net.add_arc(source, target)

    def relabel_transition(self, transition: int, label: Optional[SignalEdge]) -> None:
        """Replace the edge label of an existing transition.

        Used by structural rewrites (e.g. the fuzz mutators flipping an edge
        polarity); the transition *name* is untouched, so it may no longer
        match the astg convention — :func:`~repro.stg.parser.write_stg` does
        not rely on names agreeing with labels.
        """
        if not 0 <= transition < len(self._labels):
            raise NetStructureError(f"no transition with index {transition}")
        if label is not None and label.signal not in self.signals:
            raise NetStructureError(
                f"label {label} uses undeclared signal {label.signal!r}"
            )
        self._labels[transition] = label

    def set_initial_value(self, signal: str, value: int) -> None:
        """Pin a component of the initial code vector ``v0`` explicitly."""
        if signal not in self.signals:
            raise NetStructureError(f"unknown signal: {signal!r}")
        if value not in (0, 1):
            raise NetStructureError("initial signal value must be 0 or 1")
        self._initial_code[signal] = value

    @property
    def declared_initial_code(self) -> Dict[str, int]:
        return dict(self._initial_code)

    # -- labelling accessors ---------------------------------------------------

    def label(self, transition: int) -> Optional[SignalEdge]:
        return self._labels[transition]

    @property
    def labels(self) -> Sequence[Optional[SignalEdge]]:
        return tuple(self._labels)

    def is_dummy(self, transition: int) -> bool:
        return self._labels[transition] is None

    def has_dummies(self) -> bool:
        return any(label is None for label in self._labels)

    def transitions_of(self, signal: str) -> List[int]:
        """All transitions labelled ``signal±``."""
        return [
            t
            for t, label in enumerate(self._labels)
            if label is not None and label.signal == signal
        ]

    def edge_transitions(self, signal: str, polarity: int) -> List[int]:
        """All transitions labelled exactly ``signal+`` or ``signal-``."""
        return [
            t
            for t, label in enumerate(self._labels)
            if label is not None
            and label.signal == signal
            and label.polarity == polarity
        ]

    def signal_change(self, transition: int) -> Tuple[Optional[int], int]:
        """``(signal_index, delta)`` of firing ``transition``; dummies give
        ``(None, 0)``."""
        label = self._labels[transition]
        if label is None:
            return None, 0
        return self.signal_index(label.signal), label.polarity

    # -- convenience -----------------------------------------------------------

    def unique_transition_name(self, edge: SignalEdge) -> str:
        """A fresh astg-style name ``z+/k`` not yet used in the net."""
        base = str(edge)
        if not self.net.has_transition(base):
            return base
        k = 1
        while self.net.has_transition(f"{base}/{k}"):
            k += 1
        return f"{base}/{k}"

    def add_edge_transition(self, edge: SignalEdge) -> int:
        """Add a transition with an auto-generated astg-style name."""
        return self.add_transition(self.unique_transition_name(edge), edge)

    def copy(self, name: Optional[str] = None) -> "STG":
        clone = STG(
            name or self.name,
            inputs=self.inputs,
            outputs=self.outputs,
            internal=self.internal,
        )
        clone.net = self.net.copy(name or self.name)
        clone._labels = list(self._labels)
        clone._initial_code = dict(self._initial_code)
        clone.source_map = self.source_map.copy() if self.source_map else None
        return clone

    def content_hash(self) -> str:
        """Canonical, declaration-order-insensitive SHA-256 of the STG.

        Delegates to :func:`repro.stg.hashing.canonical_stg_hash`; used as
        the cache key of :mod:`repro.engine.cache`.
        """
        from repro.stg.hashing import canonical_stg_hash

        return canonical_stg_hash(self)

    def stats(self) -> Dict[str, int]:
        """The ``|S|, |T|, |Z|`` triple reported in the paper's Table 1."""
        return {
            "places": self.net.num_places,
            "transitions": self.net.num_transitions,
            "signals": len(self.signals),
        }

    def __repr__(self) -> str:
        return (
            f"STG({self.name!r}, |S|={self.net.num_places}, "
            f"|T|={self.net.num_transitions}, |Z|={len(self.signals)})"
        )
