"""Canonical, order-insensitive content hashing of STGs.

The hash is the cache key of :mod:`repro.engine.cache`: two STG objects that
describe the same labelled net system — regardless of the *order* in which
places, transitions, arcs or signals were added — must hash identically, and
the digest must be stable across processes and Python versions (so it is
built on :mod:`hashlib`, never on :func:`hash`).

The canonical form serialises every constituent as a *sorted* sequence:

* the signal declarations, as ``(kind, name)`` pairs plus the explicitly
  pinned components of the initial code ``v0``;
* the places, as ``(name, initial_tokens)`` pairs;
* the transitions, as ``(name, label)`` pairs (``~tau~`` for dummies);
* the arcs, as ``(source, target, weight)`` triples.

Node *names* are deliberately part of the identity: witness traces in cached
:class:`repro.engine.jobs.JobResult` objects name transitions, so two nets
that are isomorphic only up to renaming must *not* share a cache entry.  The
net's display *name* is metadata and is excluded.  Because names key every
node, the sorted serialisation is exact (injective on STG content): unlike
refinement-based graph hashing there are no collisions between
non-isomorphic nets beyond SHA-256 itself.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stg.stg import STG

#: Bump when the canonical form changes; invalidates every content hash.
HASH_SCHEME_VERSION = 1

_DUMMY_LABEL = "~tau~"


def canonical_stg_form(stg: "STG") -> str:
    """The canonical textual form whose SHA-256 is :func:`canonical_stg_hash`.

    Exposed separately so tests (and humans debugging cache misses) can diff
    two forms directly.
    """
    net = stg.net
    lines = [f"stg-content:v{HASH_SCHEME_VERSION}"]

    signals = sorted(
        [("input", s) for s in stg.inputs]
        + [("output", s) for s in stg.outputs]
        + [("internal", s) for s in stg.internal]
    )
    lines.append("signals:" + ";".join(f"{kind},{name}" for kind, name in signals))
    initial = sorted(stg.declared_initial_code.items())
    lines.append("v0:" + ";".join(f"{name}={value}" for name, value in initial))

    places = sorted(
        (net.place_name(p), net.initial_marking.counts[p])
        for p in range(net.num_places)
    )
    lines.append("places:" + ";".join(f"{name},{tokens}" for name, tokens in places))

    transitions = sorted(
        (
            net.transition_name(t),
            _DUMMY_LABEL if stg.label(t) is None else str(stg.label(t)),
        )
        for t in range(net.num_transitions)
    )
    lines.append(
        "transitions:" + ";".join(f"{name},{label}" for name, label in transitions)
    )

    arcs = sorted(net.arcs())
    lines.append(
        "arcs:" + ";".join(f"{src}>{dst},{weight}" for src, dst, weight in arcs)
    )
    return "\n".join(lines)


def canonical_stg_hash(stg: "STG") -> str:
    """A 64-hex-digit SHA-256 of the canonical form of ``stg``.

    Invariant under the order in which places, transitions, arcs and signals
    were declared; sensitive to every piece of verification-relevant content
    (structure, labelling, initial marking, signal kinds, initial code).
    """
    form = canonical_stg_form(stg)
    return hashlib.sha256(form.encode("utf-8")).hexdigest()
