"""Shared on-disk JSON entry store: atomic writes, fan-out, dotfile hygiene.

The pattern extracted from :mod:`repro.engine.cache` and reused by the fuzz
corpus (:mod:`repro.fuzz.corpus`): each entry is one JSON file named after a
hex key, fanned out over 256 two-hex-digit subdirectories so that even
millions of entries keep directory listings fast.  Writes go through
``mkstemp`` + ``os.replace`` so that

* concurrent writers are safe — readers only ever see a complete entry, and
  the last ``replace`` wins without torn files;
* a writer killed between ``mkstemp`` and ``replace`` leaves only a
  ``.tmp-*`` dotfile, which :meth:`FileStore.entries` filters out
  (``pathlib.glob`` matches dotfiles, unlike shell globs) and
  :meth:`FileStore.sweep_tmp` can reclaim.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

#: Prefix of in-flight temp files; never visible through :meth:`entries`.
TMP_PREFIX = ".tmp-"


class FileStore:
    """A directory of keyed JSON entries with atomic, crash-safe writes."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- layout --------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """Entry path for a hex ``key``: ``<root>/<key[:2]>/<key>.json``."""
        return self.root / key[:2] / f"{key}.json"

    # -- read/write ----------------------------------------------------------

    def write_atomic(self, path: Path, payload: Dict[str, object]) -> bool:
        """Write one entry via ``mkstemp`` + ``replace``; False on failure.

        Failures (disk full, permissions, unserialisable payload mid-dump)
        never leave a partial entry behind: the temp file is unlinked and
        the previous entry, if any, stays intact.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=TMP_PREFIX, suffix=".json"
        )
        try:
            with os.fdopen(handle, "w") as tmp:
                json.dump(payload, tmp)
            os.replace(tmp_name, path)
        except (OSError, TypeError, ValueError):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        return True

    def put(self, key: str, payload: Dict[str, object]) -> bool:
        """Store ``payload`` under ``key`` atomically."""
        return self.write_atomic(self.path_for(key), payload)

    def read_json(self, path: Path) -> Optional[Dict[str, Any]]:
        """Parse one entry file; ``None`` on missing/corrupt/non-object."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or ``None``."""
        return self.read_json(self.path_for(key))

    # -- listing -------------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        """Every finished entry file (in-flight ``.tmp-*`` files excluded)."""
        if not self.root.exists():
            return
        for path in self.root.glob("??/*.json"):
            if not path.name.startswith(TMP_PREFIX):
                yield path

    def tmp_files(self) -> Iterator[Path]:
        """Orphaned in-flight temp files (writers killed mid-write)."""
        if not self.root.exists():
            return
        yield from self.root.glob(f"??/{TMP_PREFIX}*")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    # -- maintenance ---------------------------------------------------------

    def sweep_tmp(self, older_than_mtime: Optional[float] = None) -> int:
        """Unlink orphaned temp files (optionally only those older than the
        given mtime cutoff); returns how many were removed."""
        removed = 0
        for path in self.tmp_files():
            try:
                if (
                    older_than_mtime is not None
                    and path.stat().st_mtime >= older_than_mtime
                ):
                    continue
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every finished entry; returns how many were removed."""
        removed = 0
        for entry in self.entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
