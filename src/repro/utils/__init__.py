"""Small shared utilities: bitsets, topological orders, table rendering."""

from repro.utils.bitset import BitSet
from repro.utils.tables import format_table

__all__ = ["BitSet", "format_table"]
