"""Small shared utilities: bitsets, table rendering, the atomic file store."""

from repro.utils.bitset import BitSet
from repro.utils.filestore import FileStore
from repro.utils.tables import format_table

__all__ = ["BitSet", "FileStore", "format_table"]
