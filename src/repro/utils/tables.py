"""Plain-text table rendering for benchmark reports.

The benchmark harness reproduces the paper's Table 1 as aligned monospace
text, so the output can be eyeballed next to the published table.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Numeric cells are right-aligned, everything else left-aligned.  Floats
    are shown with two decimal places (times in seconds, as in the paper).

    >>> print(format_table(["name", "n"], [["a", 1], ["bb", 22]]))
    name | n
    -----+---
    a    |  1
    bb   | 22
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, original: object, width: int) -> str:
        if isinstance(original, (int, float)):
            return cell.rjust(width)
        return cell.ljust(width)

    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row, raw in zip(rendered, rows):
        lines.append(
            " | ".join(align(c, o, w) for c, o, w in zip(row, raw, widths)).rstrip()
        )
    return "\n".join(lines)
