"""A compact fixed-universe bitset backed by a Python integer.

The unfolding engine manipulates many sets of events and conditions drawn from
a fixed, densely indexed universe (event 0..q-1, condition 0..p-1).  Python
integers give constant-factor-fast bitwise set algebra and hash support, which
is exactly what the causality/conflict/concurrency relations need.

The class is immutable: every operation returns a new :class:`BitSet`.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BitSet:
    """An immutable set of small non-negative integers.

    >>> a = BitSet.from_iterable([1, 3, 5])
    >>> b = BitSet.from_iterable([3, 4])
    >>> sorted(a | b)
    [1, 3, 4, 5]
    >>> 3 in (a & b)
    True
    >>> len(a - b)
    2
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: int = 0):
        if bits < 0:
            raise ValueError("BitSet cannot hold negative members")
        self._bits = bits

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_iterable(cls, items: Iterable[int]) -> "BitSet":
        bits = 0
        for item in items:
            if item < 0:
                raise ValueError("BitSet members must be non-negative")
            bits |= 1 << item
        return cls(bits)

    @classmethod
    def singleton(cls, item: int) -> "BitSet":
        if item < 0:
            raise ValueError("BitSet members must be non-negative")
        return cls(1 << item)

    @classmethod
    def empty(cls) -> "BitSet":
        return cls(0)

    # -- accessors ---------------------------------------------------------

    @property
    def bits(self) -> int:
        """The underlying integer mask."""
        return self._bits

    def __contains__(self, item: int) -> bool:
        return item >= 0 and (self._bits >> item) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        index = 0
        while bits:
            trailing = (bits & -bits).bit_length() - 1
            index = trailing
            yield index
            bits &= bits - 1

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    # -- set algebra ---------------------------------------------------------

    def __or__(self, other: "BitSet") -> "BitSet":
        return BitSet(self._bits | other._bits)

    def __and__(self, other: "BitSet") -> "BitSet":
        return BitSet(self._bits & other._bits)

    def __sub__(self, other: "BitSet") -> "BitSet":
        return BitSet(self._bits & ~other._bits)

    def __xor__(self, other: "BitSet") -> "BitSet":
        return BitSet(self._bits ^ other._bits)

    def add(self, item: int) -> "BitSet":
        """Return a new set with ``item`` included."""
        return BitSet(self._bits | (1 << item))

    def remove(self, item: int) -> "BitSet":
        """Return a new set with ``item`` excluded (no error if absent)."""
        return BitSet(self._bits & ~(1 << item))

    def isdisjoint(self, other: "BitSet") -> bool:
        return self._bits & other._bits == 0

    def issubset(self, other: "BitSet") -> bool:
        return self._bits & ~other._bits == 0

    def issuperset(self, other: "BitSet") -> bool:
        return other.issubset(self)

    def intersects(self, other: "BitSet") -> bool:
        return not self.isdisjoint(other)

    # -- dunder plumbing ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitSet) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        return f"BitSet({{{', '.join(map(str, self))}}})"
