"""Causality / conflict / concurrency relations over a prefix's events.

The integer-programming solver of the paper prunes its search with the
partial-order dependencies of Theorem 1:

* ``x(e) = 1`` forces ``x(f) = 1`` for every causal predecessor ``f < e``
  and ``x(g) = 0`` for every ``g # e``;
* ``x(e) = 0`` forces ``x(f) = 0`` for every causal successor ``f > e``.

This module precomputes those relations as integer bitmasks, one word-packed
row per event, so the solver's minimal-compatible-closure steps are a few
bitwise operations.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.unfolding.occurrence_net import Prefix


class PrefixRelations:
    """Bitmask rows of the causality and conflict relations of a prefix.

    ``pred[e]`` / ``succ[e]`` are the *strict* causal predecessor/successor
    masks; ``conf[e]`` the conflict mask; ``cutoff_mask`` the set of cut-off
    events.  All masks index events by their prefix index.
    """

    def __init__(self, prefix: Prefix):
        self.prefix = prefix
        q = prefix.num_events
        self.num_events = q
        self.pred: List[int] = [0] * q
        self.succ: List[int] = [0] * q
        self.conf: List[int] = [0] * q
        self.cutoff_mask = 0
        self.all_mask = (1 << q) - 1
        self._free_mask: int = -1
        self._compute()

    def _compute(self) -> None:
        prefix = self.prefix
        for event in prefix.events:
            bit = 1 << event.index
            history_mask = event.history.bits & ~bit
            self.pred[event.index] = history_mask
            rest = history_mask
            while rest:
                low = rest & -rest
                self.succ[low.bit_length() - 1] |= bit
                rest ^= low
            if event.is_cutoff:
                self.cutoff_mask |= bit

        # conflicts: every pair of distinct consumers of a condition is in
        # *direct* conflict, and conflict is inherited by causal successors
        # on both sides.  Collect the direct-conflict mask per event first
        # (deduplicating pairs that share several conditions), then propagate
        # the conflict cones once, in topological order: an event inherits
        # the full conflict mask of each immediate predecessor and adds the
        # cones of its own direct adversaries — each cone is OR-ed in exactly
        # once instead of being re-distributed per condition pair.
        direct = [0] * prefix.num_events
        for condition in prefix.conditions:
            consumers = condition.post_events
            for i, c1 in enumerate(consumers):
                for c2 in consumers[i + 1:]:
                    direct[c1] |= 1 << c2
                    direct[c2] |= 1 << c1
        cones = [
            (1 << e) | self.succ[e] for e in range(prefix.num_events)
        ]
        conditions = prefix.conditions
        for e in self.topological_order():
            acc = 0
            rest = direct[e]
            while rest:
                low = rest & -rest
                acc |= cones[low.bit_length() - 1]
                rest ^= low
            for b in prefix.events[e].preset:
                producer = conditions[b].pre_event
                if producer is not None:
                    acc |= self.conf[producer]
            self.conf[e] = acc

    # -- queries -------------------------------------------------------------

    def in_conflict(self, e: int, f: int) -> bool:
        """``e # f`` (inherited conflict)."""
        return (self.conf[e] >> f) & 1 == 1

    def causally_ordered(self, e: int, f: int) -> bool:
        """``e < f`` or ``f < e``."""
        return (self.succ[e] >> f) & 1 == 1 or (self.succ[f] >> e) & 1 == 1

    def concurrent(self, e: int, f: int) -> bool:
        """``e co f``: distinct, not ordered, not in conflict."""
        return e != f and not self.causally_ordered(e, f) and not self.in_conflict(e, f)

    def local_configuration_mask(self, e: int) -> int:
        return self.pred[e] | (1 << e)

    def topological_order(self) -> List[int]:
        """Events sorted by local-configuration size (a linearisation of <)."""
        return sorted(
            range(self.num_events),
            key=lambda e: (self.prefix.events[e].local_size, e),
        )

    def free_events_mask(self) -> int:
        """Events allowed in configurations: everything but cut-offs and
        their successors (a successor of a cut-off is unusable anyway since
        its history would contain the cut-off).  Memoised — callers hit this
        once per context but diagnostics query it repeatedly."""
        if self._free_mask < 0:
            blocked = self.cutoff_mask
            rest = self.cutoff_mask
            while rest:
                low = rest & -rest
                blocked |= self.succ[low.bit_length() - 1]
                rest ^= low
            self._free_mask = self.all_mask & ~blocked
        return self._free_mask
