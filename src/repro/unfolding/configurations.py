"""Configurations, cuts and their markings (paper Section 2.3).

A configuration of an occurrence net is a causally closed, conflict-free set
of events; its cut is the co-set of conditions reached by firing it, and
``Mark(C)`` is the original-net marking labelling that cut.  The integer
programming method identifies configurations with 0-1 Parikh vectors; these
helpers convert between the two views and are also used as test oracles.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from repro.petri.marking import Marking
from repro.unfolding.occurrence_net import Prefix
from repro.utils.bitset import BitSet

#: A configuration is represented as a BitSet of event indices.
Configuration = BitSet


def local_configuration(prefix: Prefix, event: int) -> Configuration:
    """``[e]``: the event together with all its causal predecessors."""
    return prefix.events[event].history


def is_configuration(prefix: Prefix, events: BitSet) -> bool:
    """Check causal closure and conflict-freeness of a set of events.

    Causal closure: for every event the producers of its preset conditions
    are in the set.  Conflict-freeness: no condition is consumed by two
    distinct events of the set.
    """
    consumed: Set[int] = set()
    for e in events:
        for b in prefix.events[e].preset:
            if b in consumed:
                return False
            consumed.add(b)
            producer = prefix.conditions[b].pre_event
            if producer is not None and producer not in events:
                return False
    return True


def cut_of(prefix: Prefix, events: BitSet) -> List[int]:
    """``Cut(C) = (Min ∪ C•) \\ •C`` as a sorted list of condition indices."""
    consumed: Set[int] = set()
    produced: Set[int] = set(prefix.min_conditions)
    for e in events:
        event = prefix.events[e]
        consumed.update(event.preset)
        produced.update(event.postset)
    return sorted(produced - consumed)

def marking_of(prefix: Prefix, events: BitSet) -> Marking:
    """``Mark(C)``: the original-net marking reached by configuration ``C``."""
    counts = [0] * prefix.net.num_places
    for b in cut_of(prefix, events):
        counts[prefix.conditions[b].place] += 1
    return Marking(counts)


def linearise(prefix: Prefix, events: BitSet) -> List[int]:
    """A firing sequence (list of *original* transition indices) executing
    the configuration — the "execution path leading to an encoding conflict"
    the paper extracts from a solution.

    Events are emitted in a topological order of the causality relation.
    """
    pending = set(events)
    available_tokens: Set[int] = set(prefix.min_conditions)
    order: List[int] = []
    while pending:
        fired_something = False
        for e in sorted(pending):
            event = prefix.events[e]
            if all(b in available_tokens for b in event.preset):
                order.append(event.transition)
                available_tokens.difference_update(event.preset)
                available_tokens.update(event.postset)
                pending.remove(e)
                fired_something = True
                break
        if not fired_something:
            raise ValueError("event set is not a configuration (not executable)")
    return order


def parikh_of(prefix: Prefix, events: Iterable[int]) -> List[int]:
    """The original-net Parikh vector of a set of prefix events."""
    counts = [0] * prefix.net.num_transitions
    for e in events:
        counts[prefix.events[e].transition] += 1
    return counts


def signal_change_of(prefix: Prefix, events: Iterable[int]) -> List[int]:
    """The signal-change vector ``v_C`` of a configuration of an STG prefix."""
    if prefix.stg is None:
        raise ValueError("prefix was not built from an STG")
    change = [0] * len(prefix.stg.signals)
    for e in events:
        signal, delta = prefix.stg.signal_change(prefix.events[e].transition)
        if signal is not None:
            change[signal] += delta
    return change
