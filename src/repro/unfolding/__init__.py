"""Petri net unfoldings: occurrence nets, branching processes, complete prefixes.

Implements the partial-order semantics of the paper's Sections 2.3 and 3:
the Esparza/Roemer/Vogler refinement of McMillan's complete-prefix algorithm
for bounded ordinary nets, plus the causality/conflict/concurrency relations
the integer-programming core exploits.
"""

from repro.unfolding.occurrence_net import Condition, Event, Prefix
from repro.unfolding.unfolder import unfold, UnfoldingOptions
from repro.unfolding.relations import PrefixRelations
from repro.unfolding.configurations import (
    Configuration,
    is_configuration,
    local_configuration,
    cut_of,
    marking_of,
    linearise,
)

__all__ = [
    "Condition",
    "Event",
    "Prefix",
    "unfold",
    "UnfoldingOptions",
    "PrefixRelations",
    "Configuration",
    "is_configuration",
    "local_configuration",
    "cut_of",
    "marking_of",
    "linearise",
]
