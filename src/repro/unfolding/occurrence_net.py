"""Occurrence nets and finite branching-process prefixes.

An occurrence net (paper Section 2.3) is an acyclic net whose conditions
have at most one producer and in which no node is in self-conflict.  A
branching process pairs an occurrence net with a homomorphism ``h`` into the
original net system; we store ``h`` directly on the nodes (each condition
knows its original place, each event its original transition).

The :class:`Prefix` is the central data structure of the reproduction: the
integer-programming method of the paper operates entirely on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import STG
from repro.utils.bitset import BitSet


@dataclass
class Condition:
    """A condition (place instance) of the prefix.

    ``place`` is the index of the original place (the homomorphism image);
    ``pre_event`` is the producing event index or ``None`` for minimal
    conditions; ``post_events`` are the consuming event indices.
    """

    index: int
    place: int
    pre_event: Optional[int]
    post_events: List[int] = field(default_factory=list)

    def is_minimal(self) -> bool:
        return self.pre_event is None


@dataclass
class Event:
    """An event (transition instance) of the prefix.

    ``transition`` is the original transition index; ``preset`` / ``postset``
    are condition indices.  ``history`` is the local configuration ``[e]``
    as a bitset of event indices (including ``e`` itself), and ``mark`` the
    final marking ``Mark([e])`` of the original net — both are computed at
    insertion time and drive the cut-off criterion.
    """

    index: int
    transition: int
    preset: Tuple[int, ...]
    postset: Tuple[int, ...] = ()
    history: BitSet = field(default_factory=BitSet)
    mark: Optional[Marking] = None
    is_cutoff: bool = False

    @property
    def local_size(self) -> int:
        return len(self.history)


class Prefix:
    """A finite branching-process prefix of the unfolding of a net system.

    Exposes both the branching-process view (events/conditions with their
    homomorphism labels) and the *net system* view ``Unf`` used by the paper
    (a safe acyclic net with the canonical initial marking putting one token
    on each minimal condition).
    """

    def __init__(self, net: PetriNet, stg: Optional[STG] = None):
        self.net = net
        self.stg = stg
        self.conditions: List[Condition] = []
        self.events: List[Event] = []
        self.conditions_by_place: Dict[int, List[int]] = {}
        self.min_conditions: List[int] = []

    # -- construction (used by the unfolder) -----------------------------------

    def add_condition(self, place: int, pre_event: Optional[int]) -> int:
        index = len(self.conditions)
        self.conditions.append(Condition(index, place, pre_event))
        self.conditions_by_place.setdefault(place, []).append(index)
        if pre_event is None:
            self.min_conditions.append(index)
        else:
            self.events[pre_event].postset += (index,)
        return index

    def add_event(
        self,
        transition: int,
        preset: Iterable[int],
        history: BitSet,
        mark: Marking,
    ) -> int:
        index = len(self.events)
        event = Event(
            index=index,
            transition=transition,
            preset=tuple(preset),
            history=history,
            mark=mark,
        )
        self.events.append(event)
        for b in event.preset:
            self.conditions[b].post_events.append(index)
        return index

    # -- sizes (the B / E / E_cut columns of Table 1) ----------------------------

    @property
    def num_conditions(self) -> int:
        return len(self.conditions)

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def num_cutoffs(self) -> int:
        return sum(1 for e in self.events if e.is_cutoff)

    @property
    def cutoff_events(self) -> List[int]:
        return [e.index for e in self.events if e.is_cutoff]

    def stats(self) -> Dict[str, int]:
        return {
            "conditions": self.num_conditions,
            "events": self.num_events,
            "cutoffs": self.num_cutoffs,
        }

    # -- homomorphism helpers -----------------------------------------------------

    def place_of(self, condition: int) -> int:
        return self.conditions[condition].place

    def transition_of(self, event: int) -> int:
        return self.events[event].transition

    def event_label(self, event: int):
        """The STG signal edge of an event (None for dummies / plain nets)."""
        if self.stg is None:
            return None
        return self.stg.label(self.events[event].transition)

    def event_name(self, event: int) -> str:
        """A human-readable ``e<i>:<transition>`` name."""
        t = self.events[event].transition
        return f"e{event}:{self.net.transition_name(t)}"

    # -- the Unf net-system view ---------------------------------------------------

    def initial_marking(self) -> Marking:
        """The canonical initial marking ``M_in`` (one token per minimal
        condition)."""
        counts = [0] * len(self.conditions)
        for b in self.min_conditions:
            counts[b] = 1
        return Marking(counts)

    def as_net(self, name: str = "unf") -> PetriNet:
        """Materialise the prefix as a plain :class:`PetriNet` (Unf)."""
        unf = PetriNet(name)
        for condition in self.conditions:
            unf.add_place(
                f"b{condition.index}:{self.net.place_name(condition.place)}",
                tokens=1 if condition.pre_event is None else 0,
            )
        for event in self.events:
            unf.add_transition(self.event_name(event.index))
        for event in self.events:
            t_name = self.event_name(event.index)
            for b in event.preset:
                unf.add_arc(unf.places[b], t_name)
            for b in event.postset:
                unf.add_arc(t_name, unf.places[b])
        return unf

    def __repr__(self) -> str:
        return (
            f"Prefix(|B|={self.num_conditions}, |E|={self.num_events}, "
            f"|E_cut|={self.num_cutoffs})"
        )
