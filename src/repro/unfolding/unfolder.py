"""Complete-prefix construction (McMillan / Esparza-Roemer-Vogler).

Builds a finite and complete prefix of the unfolding of a bounded ordinary
net system (paper Section 2.3).  The algorithm is the standard possible-
extensions loop:

1. start from one condition per token of the initial marking;
2. keep a priority queue of *possible extensions* — pairs ``(t, B)`` of an
   original transition and a co-set of conditions labelled by ``•t`` —
   ordered by an adequate order on the local configurations;
3. pop the minimal extension, insert it as an event; if an event with the
   same final marking and a strictly smaller local configuration already
   exists, mark it as a *cut-off* and do not extend beyond it;
4. otherwise add its postset conditions, update the concurrency relation and
   generate the new possible extensions they enable.

Two adequate orders are provided: McMillan's ``|C|`` and the ERV refinement
``(|C|, Parikh-lex)``; the latter produces smaller prefixes and is the
default.  The concurrency relation is maintained incrementally as bitmasks.

Paper mapping: this module implements Section 2.3 (finite and complete
prefixes; the cut-off criterion under an adequate order) — the prefix it
produces is the carrier of the whole method: Theorems 1-2 and the
constraint system (2)-(3) of Sections 3-4 are all stated over its events.
Completeness requires keeping the postset conditions of cut-off events
(configurations must be able to reach one event beyond a cut-off), which is
why cut-offs get *dead* postsets rather than none.

Observability: a run is wrapped in the ``unfold.run`` span and reports the
``unfold.events`` / ``unfold.cutoffs`` / ``unfold.conditions`` /
``unfold.extensions_enqueued`` counters and the ``unfold.queue_peak`` gauge
through :mod:`repro.obs` (all no-ops unless tracing is enabled).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.exceptions import UnfoldingError
from repro.petri.marking import Marking
from repro.petri.net import PetriNet
from repro.stg.stg import STG
from repro.unfolding.occurrence_net import Prefix
from repro.utils.bitset import BitSet


@dataclass
class UnfoldingOptions:
    """Tuning knobs of :func:`unfold`.

    ``order``: ``"erv"`` (size, then Parikh-lex — smaller prefixes) or
    ``"mcmillan"`` (size only).  ``max_events`` bounds the prefix to guard
    against unbounded inputs (raises :class:`UnfoldingError` when hit).
    """

    order: str = "erv"
    max_events: int = 100_000

    def __post_init__(self):
        if self.order not in ("erv", "mcmillan"):
            raise ValueError(f"unknown adequate order {self.order!r}")


def unfold(
    source: Union[PetriNet, STG], options: Optional[UnfoldingOptions] = None
) -> Prefix:
    """Build a finite complete prefix of the unfolding of ``source``.

    ``source`` may be a plain net system or an STG (whose prefix then keeps
    the signal labelling for the coding-conflict machinery).
    """
    options = options or UnfoldingOptions()
    stg = source if isinstance(source, STG) else None
    net = source.net if isinstance(source, STG) else source
    if not net.is_ordinary():
        raise UnfoldingError("the unfolder requires an ordinary net (arc weights 1)")
    for t in range(net.num_transitions):
        if not net.preset(t):
            raise UnfoldingError(
                f"transition {net.transition_name(t)!r} has an empty preset; "
                "its unfolding would be infinite in every prefix"
            )
    builder = _Builder(net, stg, options)
    with obs.trace("unfold.run"):
        return builder.run()


class _Builder:
    def __init__(self, net: PetriNet, stg: Optional[STG], options: UnfoldingOptions):
        self.net = net
        self.options = options
        self.prefix = Prefix(net, stg)
        self.co: List[int] = []          # condition -> bitmask of concurrent conditions
        self.dead: List[bool] = []       # condition produced by a cut-off event
        self.parikh: List[Tuple[int, ...]] = []  # event -> Parikh of [e]
        self.queue: List[Tuple] = []     # heap of possible extensions
        self.enqueued: Set[Tuple[int, Tuple[int, ...]]] = set()
        # minimal adequate-order key seen for each final marking
        self.mark_table: Dict[Marking, Tuple] = {}
        self.queue_peak = 0

    # -- adequate order ------------------------------------------------------

    def _key(self, size: int, parikh: Tuple[int, ...]) -> Tuple:
        if self.options.order == "mcmillan":
            return (size,)
        return (size, parikh)

    # -- main loop -----------------------------------------------------------

    def run(self) -> Prefix:
        self._seed_initial_conditions()
        zero_parikh = (0,) * self.net.num_transitions
        self.mark_table[self.net.initial_marking] = self._key(0, zero_parikh)
        for b in range(len(self.prefix.conditions)):
            self._generate_extensions(b)

        while self.queue:
            if len(self.queue) > self.queue_peak:
                self.queue_peak = len(self.queue)
            key, _tiebreak, transition, preset = heapq.heappop(self.queue)
            self._insert_event(key, transition, preset)
            if self.prefix.num_events > self.options.max_events:
                raise UnfoldingError(
                    f"event budget {self.options.max_events} exhausted; "
                    "the input net may be unbounded"
                )
        self._flush_metrics()
        return self.prefix

    def _flush_metrics(self) -> None:
        """Report the run's counters through :mod:`repro.obs` (traced only)."""
        tracer = obs.get_tracer()
        if not tracer.enabled:
            return
        tracer.incr("unfold.events", self.prefix.num_events)
        tracer.incr("unfold.cutoffs", self.prefix.num_cutoffs)
        tracer.incr("unfold.conditions", len(self.prefix.conditions))
        tracer.incr("unfold.extensions_enqueued", len(self.enqueued))
        tracer.gauge_max("unfold.queue_peak", self.queue_peak)

    # -- initialisation ------------------------------------------------------

    def _seed_initial_conditions(self) -> None:
        initial = self.net.initial_marking
        for place, count in enumerate(initial.counts):
            for _ in range(count):
                self._add_condition(place, pre_event=None, sibling_mask=0)
        # all minimal conditions are pairwise concurrent
        all_mask = (1 << len(self.prefix.conditions)) - 1
        for b in range(len(self.prefix.conditions)):
            self.co[b] = all_mask & ~(1 << b)

    # -- condition / event insertion ---------------------------------------------

    def _add_condition(self, place: int, pre_event: Optional[int], sibling_mask: int) -> int:
        index = self.prefix.add_condition(place, pre_event)
        self.co.append(0)
        self.dead.append(False)
        return index

    def _insert_event(self, key: Tuple, transition: int, preset: Tuple[int, ...]) -> None:
        history = BitSet()
        for b in preset:
            producer = self.prefix.conditions[b].pre_event
            if producer is not None:
                history = history | self.prefix.events[producer].history
        size = len(history) + 1
        parikh = self._parikh_with(history, transition)
        assert self._key(size, parikh) == key

        mark = self._marking_after(history, preset, transition)
        event_index = self.prefix.add_event(transition, preset, BitSet(), mark)
        event = self.prefix.events[event_index]
        event.history = history.add(event_index)
        self.parikh.append(parikh)

        best = self.mark_table.get(mark)
        if best is not None and best < key:
            event.is_cutoff = True
            # the postset conditions exist in the prefix (completeness needs
            # configurations reaching beyond cut-offs by one event) but are
            # dead: they never enable further extensions
            for place in self.net.postset(transition):
                b = self._add_condition(place, event_index, 0)
                self.dead[b] = True
            return

        if best is None or key < best:
            self.mark_table[mark] = key

        # live postset: compute concurrency and new possible extensions
        pre_mask = 0
        for b in preset:
            pre_mask |= 1 << b
        common = ~0
        for b in preset:
            common &= self.co[b]
        common &= ~pre_mask
        new_conditions = []
        for place in self.net.postset(transition):
            new_conditions.append(self._add_condition(place, event_index, 0))
        sibling_mask = 0
        for b in new_conditions:
            sibling_mask |= 1 << b
        for b in new_conditions:
            mask = (common | sibling_mask) & ~(1 << b)
            self.co[b] = mask
            # symmetrically extend the masks of the old concurrent conditions
            rest = common
            while rest:
                low = rest & -rest
                other = low.bit_length() - 1
                self.co[other] |= 1 << b
                rest ^= low
        for b in new_conditions:
            self._generate_extensions(b)

    def _parikh_with(self, history: BitSet, transition: int) -> Tuple[int, ...]:
        counts = [0] * self.net.num_transitions
        for e in history:
            counts[self.prefix.events[e].transition] += 1
        counts[transition] += 1
        return tuple(counts)

    def _marking_after(
        self, history: BitSet, preset: Tuple[int, ...], transition: int
    ) -> Marking:
        """``Mark([e])`` for the candidate event: fire the whole local
        configuration from the canonical initial marking."""
        produced = list(self.prefix.min_conditions)
        consumed: Set[int] = set(preset)
        for e in history:
            ev = self.prefix.events[e]
            consumed.update(ev.preset)
            produced.extend(ev.postset)
        counts = [0] * self.net.num_places
        for b in produced:
            if b not in consumed:
                counts[self.prefix.conditions[b].place] += 1
        for place in self.net.postset(transition):
            counts[place] += 1
        return Marking(counts)

    # -- possible extensions -----------------------------------------------------

    def _generate_extensions(self, trigger: int) -> None:
        """Enqueue every new event whose preset contains condition ``trigger``."""
        if self.dead[trigger]:
            return
        place = self.prefix.conditions[trigger].place
        for transition in self.net.place_postset(place):
            needed = [p for p in self.net.preset(transition) if p != place]
            self._search_cosets(transition, needed, [trigger], self.co[trigger])

    def _search_cosets(
        self,
        transition: int,
        needed: Sequence[int],
        chosen: List[int],
        mask: int,
    ) -> None:
        """Backtracking search for co-sets completing ``chosen`` with one
        condition per place in ``needed`` (all pairwise concurrent)."""
        if not needed:
            preset = tuple(sorted(chosen))
            token = (transition, preset)
            if token in self.enqueued:
                return
            self.enqueued.add(token)
            history = BitSet()
            for b in preset:
                producer = self.prefix.conditions[b].pre_event
                if producer is not None:
                    history = history | self.prefix.events[producer].history
            size = len(history) + 1
            parikh = self._parikh_with(history, transition)
            key = self._key(size, parikh)
            heapq.heappush(self.queue, (key, token, transition, preset))
            return
        place, rest = needed[0], needed[1:]
        for candidate in self.prefix.conditions_by_place.get(place, ()):
            if self.dead[candidate]:
                continue
            if not (mask >> candidate) & 1:
                continue
            self._search_cosets(
                transition, rest, chosen + [candidate], mask & self.co[candidate]
            )
