"""Replayable refutation certificates for the refinement loop.

A refuted conflict system is worth nothing if the refutation has to be
trusted.  The loop therefore emits a :class:`RefinementCertificate`: the
accepted cuts plus, for every non-trivial objective (each original place
and flow direction), a sparse exact-rational dual multiplier vector whose
weak-duality bound is **strictly below 1**.  Since the integral token-flow
difference of a window is an integer, a bound below 1 proves the integral
maximum is at most 0 in both directions — no balanced window moves any
token, hence no USC conflict (the Chvátal–Gomory rounding step of the
CEGAR scheme).

Replay (:func:`verify_certificate`) needs **no LP solver**:

1. every cut is re-verified against the net with exact integer arithmetic
   (:func:`repro.refine.cuts.verify_cut`) and its rows appended in order;
2. the constraint system is rebuilt deterministically (the canonical row
   order of :mod:`repro.refine.relaxation`);
3. each dual vector is checked by :func:`check_dual_bound` — multipliers
   non-negative on inequalities, the combined row dominates the objective
   coordinatewise, and the combined right-hand side is below 1 — all in
   :class:`~fractions.Fraction` arithmetic;
4. *coverage* is enforced: a certificate missing any (place, direction)
   objective is rejected, so a verifier cannot be talked into skipping
   objectives.

Dual vectors certified while the system still had fewer cuts remain valid
against the final system: sparse multipliers zero-extend over appended
rows, which can only shrink the feasible region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.context import SolverContext
from repro.refine.cuts import Cut, verify_cut
from repro.refine.relaxation import Relaxation, Row, build_relaxation

#: Bump when the certificate payload layout changes.
REFINE_VERSION = 1


def _fraction_to_str(value: Fraction) -> str:
    return f"{value.numerator}/{value.denominator}"


def _fraction_from_str(text: str) -> Fraction:
    num, _, den = str(text).partition("/")
    return Fraction(int(num), int(den or "1"))


def _sparse_to_dict(vector: Dict[int, Fraction]) -> Dict[str, str]:
    return {
        str(row): _fraction_to_str(mult)
        for row, mult in sorted(vector.items())
        if mult != 0
    }


def _sparse_from_dict(payload: Dict[str, str]) -> Dict[int, Fraction]:
    return {int(row): _fraction_from_str(mult) for row, mult in payload.items()}


@dataclass(frozen=True)
class DualBound:
    """One objective's exact dual bound: maximise ``sign * token-flow
    difference`` into ``place`` is at most ``y·b < 1``."""

    place: str                       # original-net place name
    sign: int                        # +1 / -1 flow direction
    y_eq: Dict[int, Fraction]        # sparse multipliers on equality rows
    y_ub: Dict[int, Fraction]        # sparse multipliers on inequality rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "place": self.place,
            "sign": self.sign,
            "y_eq": _sparse_to_dict(self.y_eq),
            "y_ub": _sparse_to_dict(self.y_ub),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "DualBound":
        return cls(
            place=str(payload["place"]),
            sign=int(payload["sign"]),
            y_eq=_sparse_from_dict(payload["y_eq"]),
            y_ub=_sparse_from_dict(payload["y_ub"]),
        )


@dataclass
class RefinementCertificate:
    """The full refutation: cuts in discovery order plus one
    :class:`DualBound` per (place, direction) objective."""

    stg_name: str
    num_vars: int
    cuts: List[Cut] = field(default_factory=list)
    bounds: List[DualBound] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REFINE_VERSION,
            "stg": self.stg_name,
            "num_vars": self.num_vars,
            "cuts": [cut.to_dict() for cut in self.cuts],
            "bounds": [bound.to_dict() for bound in self.bounds],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RefinementCertificate":
        if payload.get("version") != REFINE_VERSION:
            raise ValueError(
                f"unsupported certificate version {payload.get('version')!r}"
            )
        return cls(
            stg_name=str(payload["stg"]),
            num_vars=int(payload["num_vars"]),
            cuts=[Cut.from_dict(c) for c in payload["cuts"]],
            bounds=[DualBound.from_dict(b) for b in payload["bounds"]],
        )


def check_dual_bound(
    objective: Sequence[int],
    eq_rows: Sequence[Row],
    ub_rows: Sequence[Row],
    y_eq: Dict[int, Fraction],
    y_ub: Dict[int, Fraction],
) -> Optional[Fraction]:
    """Weak duality, exactly: if ``y_ub >= 0`` and
    ``A_eq'y_eq + A_ub'y_ub >= c`` coordinatewise, then every feasible
    ``x >= 0`` has ``c·x <= y_eq·b_eq + y_ub·b_ub``.  Returns that bound,
    or ``None`` if the multipliers are not a valid witness (out-of-range
    row, negative inequality multiplier, or dominated coordinate).

    Internally the multipliers are rescaled by their common denominator so
    row combination runs in plain integer arithmetic — the same exact
    values (the scale divides out of the returned bound), much cheaper
    than per-coordinate :class:`~fractions.Fraction` operations.
    """
    num_vars = len(objective)
    scale = 1
    for mult in y_eq.values():
        den = mult.denominator
        scale = scale * den // gcd(scale, den)
    for mult in y_ub.values():
        den = mult.denominator
        scale = scale * den // gcd(scale, den)
    combined = [0] * num_vars          # scaled by ``scale``
    bound = 0                          # scaled by ``scale``
    for row, mult in y_eq.items():
        if not 0 <= row < len(eq_rows):
            return None
        if mult == 0:
            continue
        m = mult.numerator * (scale // mult.denominator)
        coeffs, rhs = eq_rows[row]
        for j in range(num_vars):
            if coeffs[j]:
                combined[j] += m * coeffs[j]
        bound += m * rhs
    for row, mult in y_ub.items():
        if not 0 <= row < len(ub_rows):
            return None
        if mult < 0:
            return None
        if mult == 0:
            continue
        m = mult.numerator * (scale // mult.denominator)
        coeffs, rhs = ub_rows[row]
        for j in range(num_vars):
            if coeffs[j]:
                combined[j] += m * coeffs[j]
        bound += m * rhs
    for j in range(num_vars):
        if combined[j] < objective[j] * scale:
            return None
    return Fraction(bound, scale)


def certified_system(
    context: SolverContext, cuts: Sequence[Cut]
) -> Optional[Relaxation]:
    """Rebuild the relaxation with every cut re-verified, or ``None`` if
    any cut fails exact replay."""
    relaxation = build_relaxation(context)
    for cut in cuts:
        if not verify_cut(relaxation.net, cut):
            return None
        relaxation.add_cut(cut)
    return relaxation


def verify_certificate(
    context: SolverContext, certificate: RefinementCertificate
) -> bool:
    """Replay the whole refutation against ``context`` — see module doc."""
    if certificate.num_vars != context.num_vars:
        return False
    relaxation = certified_system(context, certificate.cuts)
    if relaxation is None:
        return False
    net = relaxation.net
    eq_rows = relaxation.eq_rows
    ub_rows = relaxation.canonical_inequalities()
    index = {net.place_name(p): p for p in range(net.num_places)}
    needed: set = {
        (net.place_name(p), sign)
        for p in range(net.num_places)
        if relaxation.flow[p].any()
        for sign in (1, -1)
    }
    for bound in certificate.bounds:
        place = index.get(bound.place)
        if place is None or bound.sign not in (1, -1):
            return False
        objective = relaxation.diff_objective(place, bound.sign)
        value = check_dual_bound(
            objective, eq_rows, ub_rows, bound.y_eq, bound.y_ub
        )
        if value is None or value >= 1:
            return False
        needed.discard((bound.place, bound.sign))
    return not needed


def dual_bound_pairs(
    certificate: RefinementCertificate,
) -> List[Tuple[str, int]]:
    """The (place, sign) objectives the certificate covers, in order."""
    return [(bound.place, bound.sign) for bound in certificate.bounds]
