"""CEGAR trap/siphon refinement of the conflict-system relaxation.

The paper's ILP encoding reaches more markings than the STG ever does, so
a feasible relaxation does not mean a real conflict.  This package closes
part of that gap the CEGAR way (Wimmel & Wolf, *Applying CEGAR to the
Petri Net State Equation*): solve the relaxation, ask whether the solution
marking could be reachable at all — a marked trap it empties or an
unmarked siphon it fills says no — and if not, add the violated
trap/siphon inequality as a cut and re-solve.  Combined with the integral
rounding step (a token-flow-difference bound below 1 proves the integral
difference is zero), the loop either *refutes* the conflict system with a
replayable exact-arithmetic certificate or falls through to the exact
search with a per-place movability classification the search can prune on.

Modules
=======

:mod:`~repro.refine.relaxation`
    The canonical constraint system (shared row order with
    ``core.prescreen``) and cut bookkeeping.
:mod:`~repro.refine.cuts`
    Trap/siphon cuts, their exact-integer verifier, and their rows.
:mod:`~repro.refine.separation`
    FactBase scan + exact-rational separation LPs.
:mod:`~repro.refine.certificate`
    Dual-bound certificates and the LP-free replayer.
:mod:`~repro.refine.solver`
    The shared-relaxation sweep backends (incremental HiGHS / linprog).
:mod:`~repro.refine.cegar`
    The driving loop (:func:`refine_prescreen`).
"""

from repro.refine.cegar import RefinementOutcome, refine_prescreen
from repro.refine.certificate import (
    REFINE_VERSION,
    DualBound,
    RefinementCertificate,
    check_dual_bound,
    verify_certificate,
)
from repro.refine.cuts import (
    CUT_SIPHON,
    CUT_TRAP,
    Cut,
    cut_row,
    cut_set_hash,
    verify_cut,
)
from repro.refine.relaxation import Relaxation, build_relaxation, marking_vector
from repro.refine.separation import (
    cut_violated,
    find_cut,
    separate_siphon,
    separate_trap,
    violated_fact_cut,
    violated_known_cut,
)
from repro.refine.solver import (
    HighsSweepSolver,
    LinprogSweepSolver,
    SolveResult,
    make_sweep_solver,
)

__all__ = [
    "CUT_SIPHON",
    "CUT_TRAP",
    "Cut",
    "DualBound",
    "HighsSweepSolver",
    "LinprogSweepSolver",
    "REFINE_VERSION",
    "RefinementCertificate",
    "RefinementOutcome",
    "Relaxation",
    "SolveResult",
    "build_relaxation",
    "check_dual_bound",
    "cut_row",
    "cut_set_hash",
    "cut_violated",
    "find_cut",
    "make_sweep_solver",
    "marking_vector",
    "refine_prescreen",
    "separate_siphon",
    "separate_trap",
    "verify_certificate",
    "verify_cut",
    "violated_fact_cut",
    "violated_known_cut",
]
