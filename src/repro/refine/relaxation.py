"""The canonical constraint system the refinement loop works on.

One source of truth for row content *and* row order: the base rows come
from :func:`repro.core.prescreen.nested_pair_rows` (signal balance,
Proposition 1 nesting, prefix compatibility — the same system
``lp_prescreen`` optimises over), normalised here into the two-block shape
solvers and certificates share:

* **equality block** — base ``==`` rows, followed by one pair of rows per
  siphon cut (in cut-discovery order);
* **inequality block** — base ``<=`` rows (``>=`` rows negated), then the
  ``2n`` box rows ``x_j <= 1`` (so ``box_offset + j`` addresses variable
  ``j``'s box row), then one pair of rows per trap cut.

Certificates reference rows by index into these blocks, so the order is a
compatibility contract: dual multipliers certified against a prefix of the
system stay valid — sparse vectors zero-extend — when later cuts append
rows at higher indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.context import SolverContext
from repro.core.prescreen import _flow_matrix, nested_pair_rows
from repro.petri.net import PetriNet
from repro.refine.cuts import Cut, cut_row

#: ``(coefficients over 2n variables, right-hand side)``.
Row = Tuple[List[int], int]


@dataclass
class Relaxation:
    """The mutable working system: base rows plus accepted cuts."""

    num_vars: int                    # n: positions per Parikh copy
    net: PetriNet                    # the original net (cut arithmetic)
    flow: np.ndarray                 # original places x positions token flow
    eq_rows: List[Row]               # base == rows, then siphon-cut rows
    ub_rows: List[Row]               # base <= rows only (no box, no cuts)
    cut_ub_rows: List[Row] = field(default_factory=list)   # trap-cut rows
    cuts: List[Cut] = field(default_factory=list)

    @property
    def box_offset(self) -> int:
        """Canonical inequality index of the ``x_0 <= 1`` row."""
        return len(self.ub_rows)

    def add_cut(self, cut: Cut) -> None:
        """Append the cut's two rows (one per Parikh copy) to the system."""
        n = self.num_vars
        coeffs, sense, rhs = cut_row(cut, self.net, self.flow, n)
        if sense == ">=":  # trap: negate into <= form
            first = ([-c for c in coeffs] + [0] * n, -rhs)
            second = ([0] * n + [-c for c in coeffs], -rhs)
            self.cut_ub_rows.extend((first, second))
        else:  # siphon: equality
            self.eq_rows.append((list(coeffs) + [0] * n, rhs))
            self.eq_rows.append(([0] * n + list(coeffs), rhs))
        self.cuts.append(cut)

    def canonical_inequalities(self) -> List[Row]:
        """Base ``<=`` rows, box rows, trap-cut rows — certificate order."""
        n2 = 2 * self.num_vars
        box: List[Row] = []
        for j in range(n2):
            coeffs = [0] * n2
            coeffs[j] = 1
            box.append((coeffs, 1))
        return self.ub_rows + box + self.cut_ub_rows

    def solver_inequalities(self) -> Tuple[List[List[int]], List[int]]:
        """The ``A_ub, b_ub`` an LP solver with native ``[0,1]`` bounds
        sees: base rows then trap-cut rows, *without* the box rows.  Row
        ``r`` here maps to canonical index ``r`` when ``r < box_offset``
        and ``r + 2n`` otherwise (see :func:`solver_ub_index`)."""
        rows = self.ub_rows + self.cut_ub_rows
        return [c for c, _ in rows], [b for _, b in rows]

    def solver_ub_index(self, solver_row: int) -> int:
        """Map a :meth:`solver_inequalities` row index to canonical."""
        if solver_row < len(self.ub_rows):
            return solver_row
        return solver_row + 2 * self.num_vars

    def diff_objective(self, place: int, sign: int) -> List[int]:
        """Maximise ``sign * (flow_p · x'' - flow_p · x')``."""
        row = self.flow[place]
        n = self.num_vars
        return [-sign * int(row[i]) for i in range(n)] + [
            sign * int(row[i]) for i in range(n)
        ]


def build_relaxation(context: SolverContext) -> Relaxation:
    """Normalise :func:`nested_pair_rows` into the two-block shape."""
    eq_rows: List[Row] = []
    ub_rows: List[Row] = []
    for coeffs, sense, rhs in nested_pair_rows(context):
        row = [int(c) for c in coeffs]
        if sense == "==":
            eq_rows.append((row, int(rhs)))
        elif sense == "<=":
            ub_rows.append((row, int(rhs)))
        else:  # ">=": negate into <= form
            ub_rows.append(([-c for c in row], -int(rhs)))
    return Relaxation(
        num_vars=context.num_vars,
        net=context.prefix.net,
        flow=_flow_matrix(context),
        eq_rows=eq_rows,
        ub_rows=ub_rows,
    )


def marking_vector(
    relaxation: Relaxation, x: Sequence
) -> List:
    """``M = M0 + flow · x`` with exact rational arithmetic."""
    net = relaxation.net
    initial = net.initial_marking
    marking = []
    for p in range(net.num_places):
        value = int(initial[p])  # promoted by the arithmetic of x's entries
        row = relaxation.flow[p]
        for i in range(relaxation.num_vars):
            c = int(row[i])
            if c:
                value = value + c * x[i]
        marking.append(value)
    return marking
