"""The canonical constraint system the refinement loop works on.

One source of truth for row content *and* row order: the base rows come
from :func:`repro.core.prescreen.nested_pair_rows` (signal balance,
Proposition 1 nesting, prefix compatibility — the same system
``lp_prescreen`` optimises over), normalised here into the two-block shape
solvers and certificates share:

* **equality block** — base ``==`` rows, followed by one pair of rows per
  siphon cut (in cut-discovery order);
* **inequality block** — base ``<=`` rows (``>=`` rows negated), then the
  ``2n`` box rows ``x_j <= 1`` (so ``box_offset + j`` addresses variable
  ``j``'s box row), then one pair of rows per trap cut.

Certificates reference rows by index into these blocks, so the order is a
compatibility contract: dual multipliers certified against a prefix of the
system stay valid — sparse vectors zero-extend — when later cuts append
rows at higher indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.context import SolverContext
from repro.core.prescreen import _flow_matrix, nested_pair_rows
from repro.petri.net import PetriNet
from repro.refine.cuts import Cut, cut_row

#: ``(coefficients over 2n variables, right-hand side)``.
Row = Tuple[List[int], int]


@dataclass
class Relaxation:
    """The mutable working system: base rows plus accepted cuts."""

    num_vars: int                    # n: positions per Parikh copy
    net: PetriNet                    # the original net (cut arithmetic)
    flow: np.ndarray                 # original places x positions token flow
    eq_rows: List[Row]               # base == rows, then siphon-cut rows
    ub_rows: List[Row]               # base <= rows only (no box, no cuts)
    cut_ub_rows: List[Row] = field(default_factory=list)   # trap-cut rows
    cuts: List[Cut] = field(default_factory=list)
    #: Bumped by :meth:`add_cut`; lets solvers and the canonical-row cache
    #: detect staleness without comparing row lists.
    version: int = 0
    _canonical_cache: Tuple[int, List[Row]] = field(
        default=(-1, []), repr=False, compare=False
    )
    _sparse_eq_cache: Tuple[int, List[Tuple[List[Tuple[int, int]], int]]] = field(
        default=(-1, []), repr=False, compare=False
    )
    _sparse_ub_cache: Tuple[
        int, Dict[int, Tuple[List[Tuple[int, int]], int]]
    ] = field(default=(-1, {}), repr=False, compare=False)

    @property
    def box_offset(self) -> int:
        """Canonical inequality index of the ``x_0 <= 1`` row."""
        return len(self.ub_rows)

    def add_cut(self, cut: Cut) -> None:
        """Append the cut's two rows (one per Parikh copy) to the system."""
        n = self.num_vars
        coeffs, sense, rhs = cut_row(cut, self.net, self.flow, n)
        if sense == ">=":  # trap: negate into <= form
            first = ([-c for c in coeffs] + [0] * n, -rhs)
            second = ([0] * n + [-c for c in coeffs], -rhs)
            self.cut_ub_rows.extend((first, second))
        else:  # siphon: equality
            self.eq_rows.append((list(coeffs) + [0] * n, rhs))
            self.eq_rows.append(([0] * n + list(coeffs), rhs))
        self.cuts.append(cut)
        self.version += 1

    def canonical_inequalities(self) -> List[Row]:
        """Base ``<=`` rows, box rows, trap-cut rows — certificate order.

        Cached per :attr:`version` — the certification step reads this once
        per accepted cut instead of rebuilding ``2n`` box rows per solve.
        """
        cached_version, cached_rows = self._canonical_cache
        if cached_version == self.version:
            return cached_rows
        n2 = 2 * self.num_vars
        box: List[Row] = []
        for j in range(n2):
            coeffs = [0] * n2
            coeffs[j] = 1
            box.append((coeffs, 1))
        rows = self.ub_rows + box + self.cut_ub_rows
        self._canonical_cache = (self.version, rows)
        return rows

    def sparse_eq_rows(self) -> List[Tuple[List[Tuple[int, int]], int]]:
        """Equality rows as ``([(col, coeff), ...], rhs)`` — certification
        combines rows by their support, not over all ``2n`` columns.
        Cached per :attr:`version`."""
        cached_version, cached = self._sparse_eq_cache
        if cached_version == self.version:
            return cached
        rows = [
            ([(j, c) for j, c in enumerate(coeffs) if c], rhs)
            for coeffs, rhs in self.eq_rows
        ]
        self._sparse_eq_cache = (self.version, rows)
        return rows

    def sparse_inequality_map(
        self,
    ) -> Dict[int, Tuple[List[Tuple[int, int]], int]]:
        """Non-box ``<=`` rows as ``canonical_index -> (entries, rhs)``.

        Box rows are implicit (canonical ``box_offset + j`` is the
        singleton row ``x_j <= 1``), so certification never materialises
        them.  Cached per :attr:`version`."""
        cached_version, cached = self._sparse_ub_cache
        if cached_version == self.version:
            return cached
        rows: Dict[int, Tuple[List[Tuple[int, int]], int]] = {}
        for r, (coeffs, rhs) in enumerate(self.ub_rows):
            rows[r] = ([(j, c) for j, c in enumerate(coeffs) if c], rhs)
        cut_base = self.box_offset + 2 * self.num_vars
        for r, (coeffs, rhs) in enumerate(self.cut_ub_rows):
            rows[cut_base + r] = ([(j, c) for j, c in enumerate(coeffs) if c], rhs)
        self._sparse_ub_cache = (self.version, rows)
        return rows

    def solver_inequalities(self) -> Tuple[List[List[int]], List[int]]:
        """The ``A_ub, b_ub`` an LP solver with native ``[0,1]`` bounds
        sees: base rows then trap-cut rows, *without* the box rows.  Row
        ``r`` here maps to canonical index ``r`` when ``r < box_offset``
        and ``r + 2n`` otherwise (see :func:`solver_ub_index`)."""
        rows = self.ub_rows + self.cut_ub_rows
        return [c for c, _ in rows], [b for _, b in rows]

    def solver_ub_index(self, solver_row: int) -> int:
        """Map a :meth:`solver_inequalities` row index to canonical."""
        if solver_row < len(self.ub_rows):
            return solver_row
        return solver_row + 2 * self.num_vars

    def diff_objective(self, place: int, sign: int) -> List[int]:
        """Maximise ``sign * (flow_p · x'' - flow_p · x')``."""
        row = self.flow[place]
        n = self.num_vars
        return [-sign * int(row[i]) for i in range(n)] + [
            sign * int(row[i]) for i in range(n)
        ]


def build_relaxation(context: SolverContext) -> Relaxation:
    """Normalise :func:`nested_pair_rows` into the two-block shape."""
    eq_rows: List[Row] = []
    ub_rows: List[Row] = []
    for coeffs, sense, rhs in nested_pair_rows(context):
        row = [int(c) for c in coeffs]
        if sense == "==":
            eq_rows.append((row, int(rhs)))
        elif sense == "<=":
            ub_rows.append((row, int(rhs)))
        else:  # ">=": negate into <= form
            ub_rows.append(([-c for c in row], -int(rhs)))
    return Relaxation(
        num_vars=context.num_vars,
        net=context.prefix.net,
        flow=_flow_matrix(context),
        eq_rows=eq_rows,
        ub_rows=ub_rows,
    )


def marking_vector(
    relaxation: Relaxation, x: Sequence
) -> List:
    """``M = M0 + flow · x`` with exact rational arithmetic."""
    net = relaxation.net
    initial = net.initial_marking
    marking = []
    for p in range(net.num_places):
        value = int(initial[p])  # promoted by the arithmetic of x's entries
        row = relaxation.flow[p]
        for i in range(relaxation.num_vars):
            c = int(row[i])
            if c:
                value = value + c * x[i]
        marking.append(value)
    return marking
