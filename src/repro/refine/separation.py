"""Finding a trap/siphon inequality violated by a relaxation solution.

Given the (possibly fractional) marking ``M = M0 + I·x`` of a relaxation
solution, a witness of spuriousness is either

* an initially **marked trap** ``S`` with ``Σ_{p∈S} M(p) < 1`` (a real
  reachable marking keeps at least one token in ``S``), or
* an initially **unmarked siphon** ``S`` with ``Σ_{p∈S} M(p) > 0`` (a real
  one keeps it empty).

Three tiers, mirroring the issue's design:

0. **Known-cut replay** — cuts a previous run of the same net discovered
   (the persisted cut log of :mod:`repro.refine.cegar`); re-checking their
   violation against the current marking is pure arithmetic, and a warm
   run that replays the cold run's cuts in order reproduces its exact
   refinement sequence without a single separation LP.
1. **FactBase scan** — the memoized :mod:`repro.analysis` facts already
   name the minimal traps/siphons of the net; evaluating ``Σ M(p)`` over
   each is a cheap table lookup, no LP.
2. **Separation LP** — an exact-rational LP over place-indicator variables
   ``y ∈ [0,1]``: minimise ``Σ M(p)·y_p`` subject to the trap closure
   ``y_p <= Σ_{q∈t•} y_q`` for every consumer ``t ∈ p•`` and ``Σ y_p >= 1``
   over the initially marked places (dually for siphons).  A fractional
   optimum below 1 (above 0) localises a violated set; its support is
   closed to an honest trap (siphon) by the
   :mod:`repro.analysis.structure` fixpoint and re-checked before use.

Either tier returns a :class:`~repro.refine.cuts.Cut` that *already
passed* :func:`~repro.refine.cuts.verify_cut`-equivalent checks — but the
CEGAR loop verifies again anyway; separation is a heuristic, soundness
lives in the cut verifier.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Sequence

from repro.analysis.engine import FactBase
from repro.analysis.facts import FACT_SIPHON, FACT_TRAP
from repro.analysis.structure import maximal_siphon, maximal_trap
from repro.petri.net import PetriNet
from repro.refine.cuts import CUT_SIPHON, CUT_TRAP, Cut, verify_cut


def _cut_from_places(net: PetriNet, places: Iterable[int], kind: str) -> Cut:
    names = tuple(sorted(net.place_name(p) for p in places))
    return Cut(kind=kind, places=names, marked=kind == CUT_TRAP)


def cut_violated(net: PetriNet, cut: Cut, marking: Sequence) -> bool:
    """Exact violation check of one cut against one (possibly fractional)
    marking: a marked trap with ``Σ M(p) < 1`` or an unmarked siphon with
    ``Σ M(p) > 0``.  Unknown places mean no violation (the cut belongs to
    another net; callers filter with :func:`~repro.refine.cuts.verify_cut`
    anyway)."""
    index = {net.place_name(p): p for p in range(net.num_places)}
    try:
        places = [index[name] for name in cut.places]
    except KeyError:
        return False
    total = sum(marking[p] for p in places)
    if cut.kind == CUT_TRAP:
        return total < 1
    return total > 0


def violated_known_cut(
    net: PetriNet,
    known_cuts: Sequence[Cut],
    markings: Sequence[Sequence],
    skip: Sequence[Cut] = (),
) -> Optional[Cut]:
    """Tier 0: the first known cut (log order) not in ``skip`` that is
    violated by any candidate marking.  Callers pass pre-verified cuts;
    entries that fail :func:`~repro.refine.cuts.verify_cut` are skipped
    regardless, so a tampered log degrades to the other tiers."""
    for cut in known_cuts:
        if cut in skip:
            continue
        if not any(cut_violated(net, cut, marking) for marking in markings):
            continue
        if verify_cut(net, cut):
            return cut
    return None


def violated_fact_cut(
    factbase: FactBase, net: PetriNet, marking: Sequence
) -> Optional[Cut]:
    """Tier 1: scan the FactBase's traps/siphons for a violated one."""
    index = {net.place_name(p): p for p in range(net.num_places)}
    for fact in factbase.of_kind(FACT_TRAP):
        just = fact.justification
        if not just.get("marked"):
            continue  # an unmarked trap yields no inequality
        try:
            places = [index[name] for name in just["places"]]
        except KeyError:
            continue
        if sum(marking[p] for p in places) < 1:
            return _cut_from_places(net, places, CUT_TRAP)
    for fact in factbase.of_kind(FACT_SIPHON):
        just = fact.justification
        if just.get("marked"):
            continue  # a marked siphon yields no equality
        try:
            places = [index[name] for name in just["places"]]
        except KeyError:
            continue
        if sum(marking[p] for p in places) > 0:
            return _cut_from_places(net, places, CUT_SIPHON)
    return None


def separate_trap(net: PetriNet, marking: Sequence) -> Optional[Cut]:
    """Tier 2: LP-separate a marked trap with ``Σ M(p) < 1``, or None."""
    from repro.lp import LinearProgram, solve_lp

    num = net.num_places
    marked0 = [p for p in range(num) if int(net.initial_marking[p]) > 0]
    if not marked0:
        return None
    constraints = []
    for p in range(num):
        for t in net.place_postset(p):
            coeffs = [0] * num
            coeffs[p] += 1
            for q in net.postset(t):
                coeffs[q] -= 1
            if any(coeffs):
                constraints.append((coeffs, "<=", 0))
    selector = [0] * num
    for p in marked0:
        selector[p] = 1
    constraints.append((selector, ">=", 1))
    problem = LinearProgram.feasibility(num, constraints)
    problem.add_upper_bounds(1)
    # solve_lp maximises, so negate to minimise Σ M(p) y_p
    problem.objective = [-Fraction(marking[p]) for p in range(num)]
    result = solve_lp(problem)
    if not result.feasible or result.solution is None:
        return None
    if result.objective_value is None or -result.objective_value >= 1:
        return None
    # LP supports can omit downstream places the closure needs; widen the
    # seed with every token-free place before taking the trap fixpoint.
    seed = {p for p in range(num) if result.solution[p] > 0}
    seed |= {p for p in range(num) if marking[p] == 0}
    trap = maximal_trap(net, seed)
    if not trap:
        return None
    if not any(int(net.initial_marking[p]) > 0 for p in trap):
        return None
    if sum(marking[p] for p in trap) >= 1:
        return None
    return _cut_from_places(net, trap, CUT_TRAP)


def separate_siphon(net: PetriNet, marking: Sequence) -> Optional[Cut]:
    """Tier 2: LP-separate an unmarked siphon with ``Σ M(p) > 0``."""
    from repro.lp import LinearProgram, solve_lp

    num = net.num_places
    unmarked0 = [p for p in range(num) if int(net.initial_marking[p]) == 0]
    if not unmarked0:
        return None
    constraints = []
    for p in range(num):
        for t in net.place_preset(p):
            coeffs = [0] * num
            coeffs[p] += 1
            for q in net.preset(t):
                coeffs[q] -= 1
            if any(coeffs):
                constraints.append((coeffs, "<=", 0))
    for p in range(num):
        if int(net.initial_marking[p]) > 0:
            coeffs = [0] * num
            coeffs[p] = 1
            constraints.append((coeffs, "==", 0))
    problem = LinearProgram.feasibility(num, constraints)
    problem.add_upper_bounds(1)
    problem.objective = [Fraction(marking[p]) for p in range(num)]
    result = solve_lp(problem)
    siphon = None
    if (
        result.feasible
        and result.solution is not None
        and result.objective_value is not None
        and result.objective_value > 0
    ):
        seed = {p for p in range(num) if result.solution[p] > 0}
        siphon = maximal_siphon(net, seed)
    if not siphon:
        # fall back on the largest initially unmarked siphon
        siphon = maximal_siphon(net, set(unmarked0))
    if not siphon:
        return None
    if any(int(net.initial_marking[p]) > 0 for p in siphon):
        return None
    if sum(marking[p] for p in siphon) <= 0:
        return None
    return _cut_from_places(net, siphon, CUT_SIPHON)


def find_cut(
    net: PetriNet,
    markings: Sequence[Sequence],
    factbase: Optional[FactBase] = None,
    use_lp: bool = True,
    known_cuts: Optional[Sequence[Cut]] = None,
    skip: Sequence[Cut] = (),
) -> Optional[Cut]:
    """The combinator the CEGAR loop calls: known cuts first, facts
    second, then LPs, over each candidate marking (``M'`` and ``M''``) in
    turn.  ``use_lp=False`` restricts to the cheap tiers — the loop flips
    it off once the exact LPs have failed to separate often enough that
    the solutions are evidently inside the trap/siphon hull.  ``skip``
    names cuts already in the system (the tier-0 scan must not re-return
    them)."""
    if known_cuts:
        cut = violated_known_cut(net, known_cuts, markings, skip=skip)
        if cut is not None:
            return cut
    for marking in markings:
        if factbase is not None:
            cut = violated_fact_cut(factbase, net, marking)
            if cut is not None:
                return cut
    if not use_lp:
        return None
    for marking in markings:
        cut = separate_trap(net, marking)
        if cut is not None:
            return cut
        cut = separate_siphon(net, marking)
        if cut is not None:
            return cut
    return None
