"""The CEGAR refinement loop over the nested-pair relaxation.

For each original place and flow direction the loop maximises the relaxed
token-flow difference (the same ``2|P|`` objectives as
:func:`repro.core.prescreen.lp_prescreen`) with a fast floating-point LP,
then sorts each optimum into one of three buckets:

* **optimum < 1** — because the *integral* token-flow difference of a
  window is an integer, a relaxation bound below 1 already proves the
  integral maximum is ≤ 0.  The solver's duals are rationalised, repaired
  against the box rows, and certified with exact
  :class:`~fractions.Fraction` arithmetic (:mod:`repro.refine.certificate`);
  only an *exactly certified* bound counts.
* **optimum ≥ 1, solution spurious** — the solution's markings
  ``M = M0 + I·x`` violate a marked-trap or unmarked-siphon inequality
  (known-cut replay first, FactBase scan second, separation LP third, see
  :mod:`repro.refine.separation`).  The violated inequality is re-verified
  with exact integer arithmetic, added as a cut for **both** Parikh copies,
  and the objective re-solved — the counterexample-guided step.
* **optimum ≥ 1, no separating cut** — the place is *movable*; the
  prescreen cannot refute and the exact search must run.  (Its verdict is
  still useful: certified-immovable places feed the in-search bound
  tightening of the window/pair searches.)

If every place with a non-zero flow row is certified immovable in both
directions, the conflict system is refuted outright and the loop emits a
:class:`~repro.refine.certificate.RefinementCertificate` — which it
replays through :func:`~repro.refine.certificate.verify_certificate`
before claiming anything, so a certification bug degrades to
"inconclusive", never to a wrong verdict.

Incremental solving
===================

The ``2|P|`` objectives share **one** solver model per run
(:mod:`repro.refine.solver`): the constraint matrix is loaded once, each
objective is a cost swap, and accepted cuts are row appends.  Three
further tiers avoid LP solves entirely, each deterministic so the swept
certificate stays byte-identical to the from-scratch reference path:

* **dominance** — two objectives with the same ``(sign, flow row)`` have
  the same coefficient vector, so a dual bound verified for one covers
  the other verbatim (counter ``refine.dominated``);
* **sign-convention memory** — the dual sign-guess that certified the
  previous objective is tried first on the next (counter
  ``refine.warm_hits``: the remembered guess worked first try);
* **certificate cache** — with a ``cert_store``, previously verified
  bounds keyed ``(stg hash, place, sign, cut-set hash)`` replay after an
  exact :func:`~repro.refine.certificate.check_dual_bound` re-check —
  never trusted (counter ``refine.cert_cache_hits``).  A cached bound
  certified under a deeper cut state first replays the missing cuts from
  the persisted cut log (each re-verified), keeping the warm run's cut
  sequence identical to the cold run's.

SciPy (HiGHS) is an optional dependency: without it the loop degrades to
an inconclusive outcome (``reason="scipy-unavailable"``) whose only fixed
places are the trivially flowless ones — the caller falls through to the
exact search, verdicts unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Any, Dict, List, Optional, Tuple

import repro.obs as obs
from repro.analysis.engine import FactBase, analyze
from repro.core.context import SolverContext
from repro.refine.certificate import (
    DualBound,
    RefinementCertificate,
    check_dual_bound,
    verify_certificate,
)
from repro.refine.cuts import Cut, cut_set_hash, verify_cut
from repro.refine.relaxation import Relaxation, build_relaxation, marking_vector
from repro.refine.separation import find_cut
from repro.refine.solver import SolveResult, make_sweep_solver

#: Floating-point slack below the integral rounding threshold.
_EPS = 1e-6

#: Denominator cap when rationalising solver duals / solutions.
_DUAL_LIMIT = 10**9
_PRIMAL_LIMIT = 10**6

#: Rationalised multipliers closer to zero than this are float noise.
_NOISE = Fraction(1, 10**6)

#: Dual sign-convention guesses, default order (see ``_certify``).
_GUESSES: Tuple[Tuple[int, int], ...] = ((1, 1), (1, -1), (-1, 1), (-1, -1))


@dataclass
class RefinementOutcome:
    """Everything the caller needs from one refinement run."""

    refuted: bool                    # conflict system proved infeasible
    certificate: Optional[RefinementCertificate]
    fixed_places: List[bool]         # per original place: certified immovable
    cuts: List[Cut] = field(default_factory=list)
    iterations: int = 0              # CEGAR iterations (spurious solutions met)
    lp_calls: int = 0
    separation_calls: int = 0
    dominated: int = 0               # objectives covered by a verified twin
    warm_hits: int = 0               # remembered sign guess certified first try
    cert_cache_hits: int = 0         # bounds replayed from the cert store
    reason: str = ""

    @property
    def movable_places(self) -> List[bool]:
        return [not fixed for fixed in self.fixed_places]


def _rationalise(value: float, limit: int) -> Fraction:
    return Fraction(float(value)).limit_denominator(limit)


def _attempt_bound(
    y_eq: Dict[int, Fraction],
    y_ub: Dict[int, Fraction],
    objective: List[int],
    relaxation: Relaxation,
) -> Optional[Tuple[Dict[int, Fraction], Dict[int, Fraction]]]:
    """Repair one sign-convention guess into an exact dual witness.

    Rejects genuinely negative inequality multipliers (drops noise-sized
    ones), then closes any dual-infeasibility deficit at variable ``j`` by
    bumping the multiplier of ``j``'s box row ``x_j <= 1`` — which restores
    feasibility at the price of raising the bound by the deficit.  Returns
    the repaired vectors iff the final bound is < 1.

    Row combination runs over the sparse row supports
    (:meth:`~repro.refine.relaxation.Relaxation.sparse_eq_rows`), not all
    ``2n`` columns per row, and — after rescaling every multiplier by the
    common denominator — in plain integer arithmetic: exactly the same
    values as the :class:`~fractions.Fraction` formulation (the scale
    divides out at the end), at a fraction of the cost.
    """
    eq_sparse = relaxation.sparse_eq_rows()
    ub_sparse = relaxation.sparse_inequality_map()
    box_offset = relaxation.box_offset
    num_vars = len(objective)
    box_end = box_offset + num_vars
    cleaned: Dict[int, Fraction] = {}
    for row, mult in y_ub.items():
        if mult < 0:
            if mult > -_NOISE:
                continue
            return None
        if mult != 0:
            cleaned[row] = mult
    y_ub = cleaned
    scale = 1
    for mult in y_eq.values():
        den = mult.denominator
        scale = scale * den // gcd(scale, den)
    for mult in y_ub.values():
        den = mult.denominator
        scale = scale * den // gcd(scale, den)
    combined = [0] * num_vars          # scaled by ``scale``
    bound = 0                          # scaled by ``scale``
    for row, mult in y_eq.items():
        m = mult.numerator * (scale // mult.denominator)
        entries, rhs = eq_sparse[row]
        for j, c in entries:
            combined[j] += m * c
        bound += m * rhs
    for row, mult in y_ub.items():
        m = mult.numerator * (scale // mult.denominator)
        if box_offset <= row < box_end:
            combined[row - box_offset] += m
            bound += m
            continue
        entries, rhs = ub_sparse[row]
        for j, c in entries:
            combined[j] += m * c
        bound += m * rhs
    for j in range(num_vars):
        deficit = objective[j] * scale - combined[j]
        if deficit > 0:
            box_row = box_offset + j
            y_ub[box_row] = y_ub.get(box_row, Fraction(0)) + Fraction(
                deficit, scale
            )
            bound += deficit
    if bound >= scale:
        return None
    return dict(y_eq), y_ub


def _certify(
    relaxation: Relaxation,
    objective: List[int],
    place_name: str,
    sign: int,
    result: SolveResult,
    guesses: Tuple[Tuple[int, int], ...],
) -> Optional[Tuple[DualBound, Tuple[int, int], bool]]:
    """Turn a float LP solve with optimum < 1 into an exact DualBound.

    HiGHS dual sign conventions differ across problem transformations, so
    the duals are tried under both signs for the equality and the
    inequality blocks, in ``guesses`` order (the sweep puts the previously
    successful guess first).  Returns ``(bound, guess, first_try)`` for
    the first guess that repairs into a valid bound below 1; ``None``
    means no guess certifies — the caller must treat the objective as
    movable (sound, merely weaker).
    """
    box_offset = relaxation.box_offset
    for attempt, (eq_sign, ub_sign) in enumerate(guesses):
        y_eq = {
            row: eq_sign * _rationalise(mult, _DUAL_LIMIT)
            for row, mult in result.eq_duals.items()
        }
        y_ub: Dict[int, Fraction] = {
            row: ub_sign * _rationalise(mult, _DUAL_LIMIT)
            for row, mult in result.ub_duals.items()
        }
        for var, mult in result.box_duals.items():
            y_ub[box_offset + var] = ub_sign * _rationalise(mult, _DUAL_LIMIT)
        repaired = _attempt_bound(y_eq, y_ub, objective, relaxation)
        if repaired is not None:
            bound = DualBound(
                place=place_name, sign=sign, y_eq=repaired[0], y_ub=repaired[1]
            )
            return bound, (eq_sign, ub_sign), attempt == 0
    return None


def _load_known_cuts(store: Any, stg_hash: str, net: Any) -> List[Cut]:
    """The persisted cut log, truncated at the first entry that fails
    exact replay — a tampered tail is dropped, never trusted."""
    payload = store.get_refine_cuts(stg_hash)
    if not payload:
        return []
    cuts: List[Cut] = []
    try:
        entries = [Cut.from_dict(entry) for entry in payload]
    except (KeyError, TypeError, ValueError):
        return []
    for cut in entries:
        if not verify_cut(net, cut):
            break
        cuts.append(cut)
    return cuts


def _cached_bound(
    store: Any,
    stg_hash: str,
    place_name: str,
    sign: int,
    relaxation: Relaxation,
    known_cuts: List[Cut],
    max_cuts: int,
) -> Optional[Tuple[DualBound, List[Cut]]]:
    """Replay one objective's bound from the cert store, if it re-verifies.

    The key carries the cut-set hash at objective start; the payload names
    the cut-log depth at certification time, so a bound certified after
    in-objective cuts first yields the missing log cuts for the caller to
    append (each already exact-verified by :func:`_load_known_cuts`).
    Returns ``None`` — a plain miss — on any mismatch or failed re-check.
    """
    key_hash = cut_set_hash(relaxation.cuts)
    payload = store.get_refine_cert(stg_hash, place_name, sign, key_hash)
    if not payload:
        return None
    try:
        bound = DualBound.from_dict(payload["bound"])
        cuts_after = int(payload.get("cuts_after", len(relaxation.cuts)))
    except (KeyError, TypeError, ValueError):
        return None
    if bound.place != place_name or bound.sign != sign:
        return None
    if not len(relaxation.cuts) <= cuts_after <= min(len(known_cuts), max_cuts):
        return None
    extension = known_cuts[len(relaxation.cuts):cuts_after]
    if relaxation.cuts != known_cuts[: len(relaxation.cuts)]:
        return None  # this run's cut path diverged from the log
    return bound, extension


def refine_prescreen(
    context: SolverContext,
    factbase: Optional[FactBase] = None,
    max_cuts: int = 32,
    max_lp_separation_misses: int = 4,
    cert_store: Optional[Any] = None,
    incremental: bool = True,
) -> RefinementOutcome:
    """Run the CEGAR loop; see the module docstring for the contract.

    ``factbase`` is fetched lazily from :func:`repro.analysis.analyze`
    (memoized) the first time a spurious solution needs separating, so the
    common all-objectives-bounded path never pays for whole-net analysis.
    After ``max_lp_separation_misses`` exact separation LPs fail to find
    any cut, later objectives skip straight to the FactBase tier — on nets
    whose relaxation solutions sit inside the trap/siphon hull the LPs can
    never succeed, and the budget keeps the fall-through path fast.

    ``cert_store`` is a duck-typed certificate store (the refine-cert /
    refine-cuts domains of :class:`repro.engine.cache.ResultCache`);
    ``incremental=False`` forces the reference solver path that rebuilds
    the model per solve — the golden-equivalence suite pins both against
    each other.
    """
    relaxation = build_relaxation(context)
    net = relaxation.net
    num_places = net.num_places
    trivially_fixed = [not relaxation.flow[p].any() for p in range(num_places)]
    solver = make_sweep_solver(relaxation, incremental=incremental)
    if solver is None:
        return RefinementOutcome(
            refuted=all(trivially_fixed),
            certificate=RefinementCertificate(
                stg_name=context.stg.name, num_vars=context.num_vars
            )
            if all(trivially_fixed)
            else None,
            fixed_places=trivially_fixed,
            reason="refuted" if all(trivially_fixed) else "scipy-unavailable",
        )

    n = context.num_vars
    lp_separation_misses = 0
    fixed = list(trivially_fixed)
    bounds: List[DualBound] = []
    outcome = RefinementOutcome(
        refuted=False, certificate=None, fixed_places=fixed
    )
    reason = "refuted"
    stg_hash = context.stg.content_hash() if cert_store is not None else ""
    known_cuts = (
        _load_known_cuts(cert_store, stg_hash, net)
        if cert_store is not None
        else []
    )
    #: ``(sign, flow row) -> verified DualBound`` — the dominance tier.
    seen: Dict[Tuple[int, Tuple[int, ...]], DualBound] = {}
    remembered: Optional[Tuple[int, int]] = None
    #: Freshly certified bounds to persist: (place, sign, key cut-state,
    #: cut-log depth at certification, bound).
    to_store: List[Tuple[str, int, int, int, DualBound]] = []
    for place in range(num_places):
        if trivially_fixed[place]:
            continue
        place_name = net.place_name(place)
        place_fixed = True
        for sign in (1, -1):
            objective = relaxation.diff_objective(place, sign)
            signature = (
                sign,
                tuple(int(v) for v in relaxation.flow[place]),
            )
            twin = seen.get(signature)
            if twin is not None:
                # identical objective vector: the verified witness carries
                # over verbatim (appended rows only zero-extend its duals)
                bounds.append(
                    DualBound(
                        place=place_name,
                        sign=sign,
                        y_eq=twin.y_eq,
                        y_ub=twin.y_ub,
                    )
                )
                outcome.dominated += 1
                obs.incr("refine.dominated")
                continue
            if cert_store is not None:
                cached = _cached_bound(
                    cert_store,
                    stg_hash,
                    place_name,
                    sign,
                    relaxation,
                    known_cuts,
                    max_cuts,
                )
                if cached is not None:
                    bound, extension = cached
                    for cut in extension:
                        relaxation.add_cut(cut)
                        outcome.cuts.append(cut)
                        obs.incr("refine.cuts")
                    value = check_dual_bound(
                        objective,
                        relaxation.eq_rows,
                        relaxation.canonical_inequalities(),
                        bound.y_eq,
                        bound.y_ub,
                    )
                    if value is not None and value < 1:
                        bounds.append(bound)
                        seen[signature] = bound
                        outcome.cert_cache_hits += 1
                        obs.incr("refine.cert_cache_hits")
                        continue
                    # tampered or stale: fall through and re-solve (the
                    # replayed cuts stay — they are exact-verified and
                    # match the cold run's state at this objective)
            key_cuts = len(relaxation.cuts)
            while True:
                with obs.trace("refine.lp_solve"):
                    result = solver.solve(objective)
                outcome.lp_calls += 1
                obs.incr("refine.lp_calls")
                if not result.success:
                    place_fixed = False
                    reason = "solver-failure"
                    break
                if result.optimum < 1 - _EPS:
                    guesses = _GUESSES
                    if remembered is not None and remembered != _GUESSES[0]:
                        guesses = (remembered,) + tuple(
                            g for g in _GUESSES if g != remembered
                        )
                    with obs.trace("refine.certify"):
                        certified = _certify(
                            relaxation,
                            objective,
                            place_name,
                            sign,
                            result,
                            guesses,
                        )
                    if certified is None:
                        place_fixed = False
                        reason = "certification-failure"
                    else:
                        dual, guess, first_try = certified
                        if remembered is not None and first_try:
                            outcome.warm_hits += 1
                            obs.incr("refine.warm_hits")
                        remembered = guess
                        bounds.append(dual)
                        seen[signature] = dual
                        if cert_store is not None:
                            to_store.append(
                                (
                                    place_name,
                                    sign,
                                    key_cuts,
                                    len(relaxation.cuts),
                                    dual,
                                )
                            )
                    break
                outcome.iterations += 1
                obs.incr("refine.iterations")
                if len(relaxation.cuts) >= max_cuts:
                    place_fixed = False
                    reason = "cut-budget"
                    break
                x = [_rationalise(v, _PRIMAL_LIMIT) for v in result.x]
                markings = [
                    marking_vector(relaxation, x[:n]),
                    marking_vector(relaxation, x[n:]),
                ]
                if factbase is None:
                    factbase = analyze(context.stg)
                outcome.separation_calls += 1
                use_lp = lp_separation_misses < max_lp_separation_misses
                cut = find_cut(
                    net,
                    markings,
                    factbase,
                    use_lp=use_lp,
                    known_cuts=known_cuts,
                    skip=relaxation.cuts,
                )
                if (
                    cut is None
                    or cut in relaxation.cuts
                    or not verify_cut(net, cut)
                ):
                    if use_lp and cut is None:
                        lp_separation_misses += 1
                    place_fixed = False
                    reason = "movable-solution"
                    break
                relaxation.add_cut(cut)
                outcome.cuts.append(cut)
                obs.incr("refine.cuts")
            if not place_fixed:
                break  # one movable direction already disqualifies the place
        fixed[place] = place_fixed

    if all(fixed):
        certificate = RefinementCertificate(
            stg_name=context.stg.name,
            num_vars=context.num_vars,
            cuts=list(relaxation.cuts),
            bounds=bounds,
        )
        # Never claim a refutation the replayer would reject.
        if verify_certificate(context, certificate):
            outcome.refuted = True
            outcome.certificate = certificate
            outcome.reason = "refuted"
            obs.incr("refine.refuted")
        else:
            outcome.fixed_places = trivially_fixed
            outcome.reason = "certificate-replay-failed"
            to_store = []
    else:
        outcome.reason = reason

    if cert_store is not None:
        all_cuts = list(relaxation.cuts)
        if all_cuts and all_cuts != known_cuts[: len(all_cuts)]:
            # this run extended or corrected the log: persist the new path
            cert_store.put_refine_cuts(
                stg_hash, [cut.to_dict() for cut in all_cuts]
            )
        for place_name, sign, key_cuts, cuts_after, dual in to_store:
            cert_store.put_refine_cert(
                stg_hash,
                place_name,
                sign,
                cut_set_hash(all_cuts[:key_cuts]),
                {
                    "bound": dual.to_dict(),
                    "cuts_after": cuts_after,
                    "cuts_referenced": cuts_after > 0,
                },
            )
    return outcome
