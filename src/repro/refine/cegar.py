"""The CEGAR refinement loop over the nested-pair relaxation.

For each original place and flow direction the loop maximises the relaxed
token-flow difference (the same ``2|P|`` objectives as
:func:`repro.core.prescreen.lp_prescreen`) with a fast floating-point LP,
then sorts each optimum into one of three buckets:

* **optimum < 1** — because the *integral* token-flow difference of a
  window is an integer, a relaxation bound below 1 already proves the
  integral maximum is ≤ 0.  The solver's dual marginals are rationalised,
  repaired against the box rows, and certified with exact
  :class:`~fractions.Fraction` arithmetic (:mod:`repro.refine.certificate`);
  only an *exactly certified* bound counts.
* **optimum ≥ 1, solution spurious** — the solution's markings
  ``M = M0 + I·x`` violate a marked-trap or unmarked-siphon inequality
  (FactBase scan first, separation LP second, see
  :mod:`repro.refine.separation`).  The violated inequality is re-verified
  with exact integer arithmetic, added as a cut for **both** Parikh copies,
  and the objective re-solved — the counterexample-guided step.
* **optimum ≥ 1, no separating cut** — the place is *movable*; the
  prescreen cannot refute and the exact search must run.  (Its verdict is
  still useful: certified-immovable places feed the in-search bound
  tightening of the window/pair searches.)

If every place with a non-zero flow row is certified immovable in both
directions, the conflict system is refuted outright and the loop emits a
:class:`~repro.refine.certificate.RefinementCertificate` — which it
replays through :func:`~repro.refine.certificate.verify_certificate`
before claiming anything, so a certification bug degrades to
"inconclusive", never to a wrong verdict.

SciPy (HiGHS) is an optional dependency: without it the loop degrades to
an inconclusive outcome (``reason="scipy-unavailable"``) whose only fixed
places are the trivially flowless ones — the caller falls through to the
exact search, verdicts unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.analysis.engine import FactBase, analyze
from repro.core.context import SolverContext
from repro.refine.certificate import (
    DualBound,
    RefinementCertificate,
    verify_certificate,
)
from repro.refine.cuts import Cut, verify_cut
from repro.refine.relaxation import Relaxation, build_relaxation, marking_vector
from repro.refine.separation import find_cut

#: Floating-point slack below the integral rounding threshold.
_EPS = 1e-6

#: Denominator cap when rationalising solver duals / solutions.
_DUAL_LIMIT = 10**9
_PRIMAL_LIMIT = 10**6

#: Rationalised multipliers closer to zero than this are float noise.
_NOISE = Fraction(1, 10**6)


@dataclass
class RefinementOutcome:
    """Everything the caller needs from one refinement run."""

    refuted: bool                    # conflict system proved infeasible
    certificate: Optional[RefinementCertificate]
    fixed_places: List[bool]         # per original place: certified immovable
    cuts: List[Cut] = field(default_factory=list)
    iterations: int = 0              # CEGAR iterations (spurious solutions met)
    lp_calls: int = 0
    separation_calls: int = 0
    reason: str = ""

    @property
    def movable_places(self) -> List[bool]:
        return [not fixed for fixed in self.fixed_places]


def _rationalise(value: float, limit: int) -> Fraction:
    return Fraction(float(value)).limit_denominator(limit)


def _attempt_bound(
    y_eq: Dict[int, Fraction],
    y_ub: Dict[int, Fraction],
    objective: List[int],
    relaxation: Relaxation,
) -> Optional[Tuple[Dict[int, Fraction], Dict[int, Fraction]]]:
    """Repair one sign-convention guess into an exact dual witness.

    Rejects genuinely negative inequality multipliers (drops noise-sized
    ones), then closes any dual-infeasibility deficit at variable ``j`` by
    bumping the multiplier of ``j``'s box row ``x_j <= 1`` — which restores
    feasibility at the price of raising the bound by the deficit.  Returns
    the repaired vectors iff the final bound is < 1.
    """
    eq_rows = relaxation.eq_rows
    ub_rows = relaxation.canonical_inequalities()
    box_offset = relaxation.box_offset
    cleaned: Dict[int, Fraction] = {}
    for row, mult in y_ub.items():
        if mult < 0:
            if mult > -_NOISE:
                continue
            return None
        if mult != 0:
            cleaned[row] = mult
    y_ub = cleaned
    num_vars = len(objective)
    combined = [Fraction(0)] * num_vars
    bound = Fraction(0)
    for row, mult in y_eq.items():
        coeffs, rhs = eq_rows[row]
        for j in range(num_vars):
            if coeffs[j]:
                combined[j] += mult * coeffs[j]
        bound += mult * rhs
    for row, mult in y_ub.items():
        coeffs, rhs = ub_rows[row]
        for j in range(num_vars):
            if coeffs[j]:
                combined[j] += mult * coeffs[j]
        bound += mult * rhs
    for j in range(num_vars):
        deficit = objective[j] - combined[j]
        if deficit > 0:
            box_row = box_offset + j
            y_ub[box_row] = y_ub.get(box_row, Fraction(0)) + deficit
            bound += deficit
    if bound >= 1:
        return None
    return dict(y_eq), y_ub


def _certify(
    relaxation: Relaxation,
    objective: List[int],
    place_name: str,
    sign: int,
    result: object,
) -> Optional[DualBound]:
    """Turn a float LP solve with optimum < 1 into an exact DualBound.

    HiGHS dual sign conventions differ across problem transformations, so
    the marginals are tried under both signs for the equality and the
    inequality blocks; the first guess that repairs into a valid bound
    below 1 wins.  ``None`` means no guess certifies — the caller must
    treat the objective as movable (sound, merely weaker).
    """
    eq_marg = (
        list(result.eqlin.marginals) if relaxation.eq_rows else []  # type: ignore[attr-defined]
    )
    ub_marg = list(result.ineqlin.marginals)  # type: ignore[attr-defined]
    upper_marg = list(result.upper.marginals)  # type: ignore[attr-defined]
    for eq_sign in (1, -1):
        for ub_sign in (1, -1):
            y_eq = {
                row: eq_sign * _rationalise(mult, _DUAL_LIMIT)
                for row, mult in enumerate(eq_marg)
                if mult
            }
            y_ub: Dict[int, Fraction] = {}
            for row, mult in enumerate(ub_marg):
                if mult:
                    y_ub[relaxation.solver_ub_index(row)] = (
                        ub_sign * _rationalise(mult, _DUAL_LIMIT)
                    )
            for var, mult in enumerate(upper_marg):
                if mult:
                    y_ub[relaxation.box_offset + var] = (
                        ub_sign * _rationalise(mult, _DUAL_LIMIT)
                    )
            repaired = _attempt_bound(y_eq, y_ub, objective, relaxation)
            if repaired is not None:
                return DualBound(
                    place=place_name, sign=sign, y_eq=repaired[0], y_ub=repaired[1]
                )
    return None


def refine_prescreen(
    context: SolverContext,
    factbase: Optional[FactBase] = None,
    max_cuts: int = 32,
    max_lp_separation_misses: int = 4,
) -> RefinementOutcome:
    """Run the CEGAR loop; see the module docstring for the contract.

    ``factbase`` is fetched lazily from :func:`repro.analysis.analyze`
    (memoized) the first time a spurious solution needs separating, so the
    common all-objectives-bounded path never pays for whole-net analysis.
    After ``max_lp_separation_misses`` exact separation LPs fail to find
    any cut, later objectives skip straight to the FactBase tier — on nets
    whose relaxation solutions sit inside the trap/siphon hull the LPs can
    never succeed, and the budget keeps the fall-through path fast.
    """
    relaxation = build_relaxation(context)
    net = relaxation.net
    num_places = net.num_places
    trivially_fixed = [not relaxation.flow[p].any() for p in range(num_places)]
    try:
        from scipy.optimize import linprog
    except ImportError:
        return RefinementOutcome(
            refuted=all(trivially_fixed),
            certificate=RefinementCertificate(
                stg_name=context.stg.name, num_vars=context.num_vars
            )
            if all(trivially_fixed)
            else None,
            fixed_places=trivially_fixed,
            reason="refuted" if all(trivially_fixed) else "scipy-unavailable",
        )

    n = context.num_vars
    lp_separation_misses = 0
    fixed = list(trivially_fixed)
    bounds: List[DualBound] = []
    outcome = RefinementOutcome(
        refuted=False, certificate=None, fixed_places=fixed
    )
    reason = "refuted"
    for place in range(num_places):
        if trivially_fixed[place]:
            continue
        place_name = net.place_name(place)
        place_fixed = True
        for sign in (1, -1):
            objective = relaxation.diff_objective(place, sign)
            minimise = np.array([-c for c in objective], dtype=float)
            while True:
                a_ub, b_ub = relaxation.solver_inequalities()
                eq_rows = relaxation.eq_rows
                result = linprog(
                    minimise,
                    A_ub=np.array(a_ub, dtype=float),
                    b_ub=np.array(b_ub, dtype=float),
                    A_eq=np.array([c for c, _ in eq_rows], dtype=float)
                    if eq_rows
                    else None,
                    b_eq=np.array([b for _, b in eq_rows], dtype=float)
                    if eq_rows
                    else None,
                    bounds=(0, 1),
                    method="highs",
                )
                outcome.lp_calls += 1
                if not result.success:
                    place_fixed = False
                    reason = "solver-failure"
                    break
                optimum = -result.fun
                if optimum < 1 - _EPS:
                    dual = _certify(
                        relaxation, objective, place_name, sign, result
                    )
                    if dual is None:
                        place_fixed = False
                        reason = "certification-failure"
                    else:
                        bounds.append(dual)
                    break
                outcome.iterations += 1
                obs.incr("refine.iterations")
                if len(relaxation.cuts) >= max_cuts:
                    place_fixed = False
                    reason = "cut-budget"
                    break
                x = [
                    _rationalise(v, _PRIMAL_LIMIT) for v in result.x
                ]
                markings = [
                    marking_vector(relaxation, x[:n]),
                    marking_vector(relaxation, x[n:]),
                ]
                if factbase is None:
                    factbase = analyze(context.stg)
                outcome.separation_calls += 1
                use_lp = lp_separation_misses < max_lp_separation_misses
                cut = find_cut(net, markings, factbase, use_lp=use_lp)
                if (
                    cut is None
                    or cut in relaxation.cuts
                    or not verify_cut(net, cut)
                ):
                    if use_lp and cut is None:
                        lp_separation_misses += 1
                    place_fixed = False
                    reason = "movable-solution"
                    break
                relaxation.add_cut(cut)
                outcome.cuts.append(cut)
                obs.incr("refine.cuts")
            if not place_fixed:
                break  # one movable direction already disqualifies the place
        fixed[place] = place_fixed

    if all(fixed):
        certificate = RefinementCertificate(
            stg_name=context.stg.name,
            num_vars=context.num_vars,
            cuts=list(relaxation.cuts),
            bounds=bounds,
        )
        # Never claim a refutation the replayer would reject.
        if verify_certificate(context, certificate):
            outcome.refuted = True
            outcome.certificate = certificate
            outcome.reason = "refuted"
            obs.incr("refine.refuted")
        else:
            outcome.fixed_places = trivially_fixed
            outcome.reason = "certificate-replay-failed"
    else:
        outcome.reason = reason
    return outcome
