"""Trap/siphon cuts: the refinement loop's unit of negative knowledge.

A :class:`Cut` names a place set of the *original* net together with its
kind and initial markedness, and stands for one linear inequality over the
relaxed Parikh vectors (see :mod:`repro.refine.relaxation`):

``trap``
    An initially marked trap ``S`` (``S• ⊆ •S``, some ``p ∈ S`` marked at
    ``M0``) can never be emptied, so every reachable marking ``M``
    satisfies ``Σ_{p∈S} M(p) >= 1``.  Through the marking equation
    ``M = M0 + I·x`` this is linear in the Parikh vector.

``siphon``
    An initially unmarked siphon ``S`` (``•S ⊆ S•``, no ``p ∈ S`` marked)
    stays empty forever: ``Σ_{p∈S} M(p) = 0``.

Both inequalities are valid for every configuration of the unfolding
prefix (their final markings are genuinely reachable), so adding them to
the relaxation can only cut off *spurious* fractional solutions — the
CEGAR contract of :mod:`repro.refine.cegar`.

Like :mod:`repro.analysis.facts`, nothing here asks to be trusted:
:func:`verify_cut` replays the closure and markedness conditions against
the net with exact integer arithmetic, and a cut whose claimed kind or
markedness is wrong is rejected.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.petri.net import PetriNet

CUT_TRAP = "trap"
CUT_SIPHON = "siphon"

#: Bump when the cut payload layout changes (certificate compatibility).
CUT_VERSION = 1


@dataclass(frozen=True)
class Cut:
    """One trap/siphon inequality over the original net's places."""

    kind: str                   # CUT_TRAP or CUT_SIPHON
    places: Tuple[str, ...]     # sorted original-net place names
    marked: bool                # initial markedness claim (trap: True, siphon: False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CUT_VERSION,
            "kind": self.kind,
            "places": list(self.places),
            "marked": self.marked,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Cut":
        if payload.get("version") != CUT_VERSION:
            raise ValueError(f"unsupported cut version {payload.get('version')!r}")
        return cls(
            kind=str(payload["kind"]),
            places=tuple(str(p) for p in payload["places"]),
            marked=bool(payload["marked"]),
        )


def cut_set_hash(cuts: Sequence[Cut]) -> str:
    """Order-sensitive SHA-256 over a cut sequence.

    Keys the certificate-cache domain: a dual bound is only valid against
    the exact constraint system (cuts *and* their append order) it was
    certified under, so the hash covers the sequence, not the set.
    """
    material = json.dumps(
        [cut.to_dict() for cut in cuts], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _place_indices(net: PetriNet, names: Tuple[str, ...]) -> List[int]:
    """Map place names onto indices; raises KeyError for strangers."""
    index = {net.place_name(p): p for p in range(net.num_places)}
    return [index[name] for name in names]


def verify_cut(net: PetriNet, cut: Cut) -> bool:
    """Replay the cut's structural claim with exact integer arithmetic.

    A ``trap`` cut must name a genuine trap that is initially marked (the
    inequality ``Σ M(p) >= 1`` is unsound otherwise); a ``siphon`` cut must
    name a genuine siphon that is initially unmarked.  Unknown places,
    empty sets and mismatched markedness all fail.
    """
    if cut.kind not in (CUT_TRAP, CUT_SIPHON):
        return False
    if not cut.places:
        return False
    try:
        places = set(_place_indices(net, cut.places))
    except KeyError:
        return False
    if len(places) != len(cut.places):
        return False  # duplicate names
    initial = net.initial_marking
    marked = any(int(initial[p]) > 0 for p in places)
    if cut.kind == CUT_TRAP:
        if not cut.marked or not marked:
            return False
        for p in places:
            for t in net.place_postset(p):  # consumers of p
                if not any(q in places for q in net.postset(t)):
                    return False
        return True
    if cut.marked or marked:
        return False
    for p in places:
        for t in net.place_preset(p):  # producers of p
            if not any(q in places for q in net.preset(t)):
                return False
    return True


def cut_row(
    cut: Cut, net: PetriNet, flow: Any, num_vars: int
) -> Tuple[List[int], str, int]:
    """The cut's inequality over *one* Parikh copy (``n`` positions).

    ``flow`` is the original-places × positions token-flow matrix
    (:func:`repro.core.prescreen._flow_matrix`).  Returns
    ``(coeffs, sense, rhs)`` with ``coeffs · x  sense  rhs``:

    * trap ``S``:   ``Σ_i flow_S(i)·x_i >= 1 - M0(S)``
    * siphon ``S``: ``Σ_i flow_S(i)·x_i == -M0(S)`` (``M0(S) = 0``)
    """
    places = _place_indices(net, cut.places)
    coeffs = [0] * num_vars
    for p in places:
        row = flow[p]
        for i in range(num_vars):
            c = int(row[i])
            if c:
                coeffs[i] += c
    m0 = sum(int(net.initial_marking[p]) for p in places)
    if cut.kind == CUT_TRAP:
        return coeffs, ">=", 1 - m0
    return coeffs, "==", -m0
