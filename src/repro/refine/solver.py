"""Shared-relaxation LP backends for the CEGAR objective sweep.

PR 8 rebuilt one dense LP per ``(place, sign)`` objective — ``2·|P|`` full
matrix constructions plus scipy ``linprog`` presolves per refinement run.
This module keeps **one** model per :class:`~repro.refine.relaxation.
Relaxation` instead: the constraint matrix is loaded into HiGHS once as a
row-wise sparse structure, every objective of the sweep is a
``changeColsCost`` + ``run`` pair against that shared model, and an
accepted trap/siphon cut is an ``addRows`` append — the matrix is never
rebuilt.

Determinism contract
====================

Certificates must come out **byte-identical** whether the sweep shares one
model or builds a fresh one per solve (the golden-equivalence suite pins
this).  Warm-starting the simplex from the previous basis breaks that —
degenerate optima make the *duals* history-dependent even when the primal
solution is not — so the shared model is reset with ``clearSolver()``
before every ``run``.  Measured on the Table-1 models this is both the
fastest option (the model build, not the basis, is what the per-objective
rebuild was paying for) and bit-identical to a fresh model per solve,
**provided the rows are loaded in the same order**: cut rows are therefore
always appended at the end of the model in discovery order, and the
non-incremental reference mode (``incremental=False``) replays exactly
that order when it rebuilds.

Backends
========

* :class:`HighsSweepSolver` — the vendored HiGHS of scipy
  (``scipy.optimize._highspy``), driven directly so the sweep skips the
  ``linprog`` wrapper's per-call model construction and presolve.
* :class:`LinprogSweepSolver` — plain ``scipy.optimize.linprog`` over
  arrays prebuilt per cut-state; the degradation path when the private
  HiGHS bindings are absent.

Both return the same :class:`SolveResult` shape — float duals keyed by the
*canonical* row indices of :mod:`repro.refine.relaxation`, which is what
the exact certification step consumes.  :func:`make_sweep_solver` picks
the best available backend, or ``None`` when scipy is missing entirely
(the CEGAR loop then degrades to its ``scipy-unavailable`` outcome).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.refine.cuts import CUT_SIPHON
from repro.refine.relaxation import Relaxation

BACKEND_HIGHS = "highs"
BACKEND_LINPROG = "linprog"

#: ``(kind, canonical_index, coefficients, lower, upper)`` of one model row.
_ModelRow = Tuple[str, int, List[int], float, float]

_INF = float("inf")


@dataclass
class SolveResult:
    """One objective's float solve: optimum, point, and sparse duals.

    Duals are keyed by the canonical row indices of the relaxation —
    ``eq_duals`` by equality-block index, ``ub_duals`` by
    :meth:`~repro.refine.relaxation.Relaxation.canonical_inequalities`
    index, ``box_duals`` by variable (the ``x_j <= 1`` rows) — so the
    exact certification step is backend-agnostic.  Dual *signs* are
    whatever the backend produced; certification tries both conventions.
    """

    success: bool
    optimum: float = 0.0
    x: Tuple[float, ...] = ()
    eq_duals: Dict[int, float] = field(default_factory=dict)
    ub_duals: Dict[int, float] = field(default_factory=dict)
    box_duals: Dict[int, float] = field(default_factory=dict)


def _append_order_rows(
    relaxation: Relaxation, base_eq: int, eq_done: int, cut_ub_done: int
) -> List[_ModelRow]:
    """Cut rows in discovery (= model append) order, skipping the first
    ``eq_done`` siphon rows and ``cut_ub_done`` trap rows already emitted.

    ``relaxation.add_cut`` appends a siphon cut's two rows to the tail of
    the equality block and a trap cut's two rows to ``cut_ub_rows``, both
    in discovery order — so walking ``relaxation.cuts`` with two cursors
    reconstructs the interleaved append order exactly.
    """
    rows: List[_ModelRow] = []
    eq_cursor = base_eq
    ub_cursor = 0
    cut_base = relaxation.box_offset + 2 * relaxation.num_vars
    for cut in relaxation.cuts:
        if cut.kind == CUT_SIPHON:
            for _ in range(2):
                if eq_cursor >= eq_done:
                    coeffs, rhs = relaxation.eq_rows[eq_cursor]
                    rows.append(("eq", eq_cursor, coeffs, float(rhs), float(rhs)))
                eq_cursor += 1
        else:
            for _ in range(2):
                if ub_cursor >= cut_ub_done:
                    coeffs, rhs = relaxation.cut_ub_rows[ub_cursor]
                    rows.append(
                        ("ub", cut_base + ub_cursor, coeffs, -_INF, float(rhs))
                    )
                ub_cursor += 1
    return rows


def _base_rows(relaxation: Relaxation, base_eq: int) -> List[_ModelRow]:
    """The cut-free prefix of the model: equality block, then ``<=`` block."""
    rows: List[_ModelRow] = []
    for i in range(base_eq):
        coeffs, rhs = relaxation.eq_rows[i]
        rows.append(("eq", i, coeffs, float(rhs), float(rhs)))
    for r, (coeffs, rhs) in enumerate(relaxation.ub_rows):
        rows.append(("ub", r, coeffs, -_INF, float(rhs)))
    return rows


class HighsSweepSolver:
    """Direct HiGHS driver: one shared model, ``clearSolver`` per solve."""

    backend = BACKEND_HIGHS

    def __init__(self, core: Any, relaxation: Relaxation, incremental: bool = True):
        self._core = core
        self.relaxation = relaxation
        self.incremental = incremental
        #: Equality rows present before any cut (captured at attach time).
        self._base_eq = len(relaxation.eq_rows)
        self._highs: Optional[Any] = None
        self._kinds: List[Tuple[str, int]] = []
        self._synced_eq = self._base_eq
        self._synced_cut_ub = 0
        if incremental:
            self._highs = self._build_model(_base_rows(relaxation, self._base_eq))
            self._synced_cut_ub = len(relaxation.cut_ub_rows)
            if self._synced_cut_ub or len(relaxation.eq_rows) != self._base_eq:
                # attached to a relaxation that already carries cuts: the
                # base capture above saw them as base rows, keep it simple
                raise ValueError("HighsSweepSolver expects a cut-free relaxation")

    # -- model construction ----------------------------------------------------

    def _build_model(self, rows: List[_ModelRow]) -> Any:
        import numpy as np

        core = self._core
        ncols = 2 * self.relaxation.num_vars
        lp = core.HighsLp()
        lp.num_col_ = ncols
        lp.num_row_ = len(rows)
        lp.col_cost_ = np.zeros(ncols, dtype=np.float64)
        lp.col_lower_ = np.zeros(ncols, dtype=np.float64)
        lp.col_upper_ = np.ones(ncols, dtype=np.float64)
        lp.row_lower_ = np.array([low for _, _, _, low, _ in rows], dtype=np.float64)
        lp.row_upper_ = np.array([up for _, _, _, _, up in rows], dtype=np.float64)
        lp.sense_ = core.ObjSense.kMaximize
        starts, indices, values = self._csr(rows)
        matrix = core.HighsSparseMatrix()
        matrix.format_ = core.MatrixFormat.kRowwise
        matrix.num_col_ = ncols
        matrix.num_row_ = len(rows)
        matrix.start_ = np.array(starts, dtype=np.int32)
        matrix.index_ = np.array(indices, dtype=np.int32)
        matrix.value_ = np.array(values, dtype=np.float64)
        lp.a_matrix_ = matrix
        highs = core._Highs()
        highs.setOptionValue("output_flag", False)
        highs.setOptionValue("presolve", "off")
        highs.passModel(lp)
        self._kinds = [(kind, canonical) for kind, canonical, _, _, _ in rows]
        return highs

    @staticmethod
    def _csr(
        rows: List[_ModelRow],
    ) -> Tuple[List[int], List[int], List[float]]:
        starts: List[int] = [0]
        indices: List[int] = []
        values: List[float] = []
        for _, _, coeffs, _, _ in rows:
            for j, c in enumerate(coeffs):
                if c:
                    indices.append(j)
                    values.append(float(c))
            starts.append(len(indices))
        return starts, indices, values

    def _sync(self) -> None:
        """Append any cut rows accepted since the last solve (``addRows``)."""
        import numpy as np

        relaxation = self.relaxation
        if (
            len(relaxation.eq_rows) == self._synced_eq
            and len(relaxation.cut_ub_rows) == self._synced_cut_ub
        ):
            return
        rows = _append_order_rows(
            relaxation, self._base_eq, self._synced_eq, self._synced_cut_ub
        )
        starts, indices, values = self._csr(rows)
        assert self._highs is not None
        self._highs.addRows(
            len(rows),
            np.array([low for _, _, _, low, _ in rows], dtype=np.float64),
            np.array([up for _, _, _, _, up in rows], dtype=np.float64),
            len(indices),
            np.array(starts[:-1], dtype=np.int32),
            np.array(indices, dtype=np.int32),
            np.array(values, dtype=np.float64),
        )
        self._kinds.extend((kind, canonical) for kind, canonical, _, _, _ in rows)
        self._synced_eq = len(relaxation.eq_rows)
        self._synced_cut_ub = len(relaxation.cut_ub_rows)

    # -- solving ---------------------------------------------------------------

    def solve(self, objective: Sequence[int]) -> SolveResult:
        import numpy as np

        core = self._core
        if self.incremental:
            self._sync()
            highs = self._highs
        else:
            rows = _base_rows(self.relaxation, self._base_eq)
            rows += _append_order_rows(self.relaxation, self._base_eq, self._base_eq, 0)
            highs = self._build_model(rows)
        assert highs is not None
        ncols = 2 * self.relaxation.num_vars
        highs.changeColsCost(
            ncols,
            np.arange(ncols, dtype=np.int32),
            np.array(objective, dtype=np.float64),
        )
        # no warm start: history-dependent bases make duals diverge between
        # the shared-model and reference paths (see the module docstring)
        highs.clearSolver()
        status = highs.run()
        if (
            status != core.HighsStatus.kOk
            or highs.getModelStatus() != core.HighsModelStatus.kOptimal
        ):
            return SolveResult(success=False)
        solution = highs.getSolution()
        result = SolveResult(
            success=True,
            optimum=float(highs.getInfo().objective_function_value),
            x=tuple(float(v) for v in solution.col_value),
        )
        for (kind, canonical), dual in zip(self._kinds, solution.row_dual):
            if dual:
                target = result.eq_duals if kind == "eq" else result.ub_duals
                target[canonical] = float(dual)
        # col_dual mixes both bounds' reduced costs; only variables at the
        # UPPER bound carry a multiplier for their box row x_j <= 1 (a
        # lower-bound reduced cost belongs to x_j >= 0, which weak duality
        # absorbs as slack) — mirror linprog's ``upper.marginals`` split
        for var, dual in enumerate(solution.col_dual):
            if dual and solution.col_value[var] > 0.5:
                result.box_duals[var] = float(dual)
        return result


class LinprogSweepSolver:
    """``scipy.optimize.linprog`` over arrays prebuilt per cut-state.

    Used when the private HiGHS bindings are unavailable.  Matrices are
    (re)built only when a cut lands, not per objective — so the sweep still
    amortises construction — and the incremental/reference modes share the
    same array layout, keeping their solves identical.
    """

    backend = BACKEND_LINPROG

    def __init__(self, linprog: Any, relaxation: Relaxation, incremental: bool = True):
        self._linprog = linprog
        self.relaxation = relaxation
        self.incremental = incremental
        self._built_for = -1
        self._a_ub: Any = None
        self._b_ub: Any = None
        self._a_eq: Any = None
        self._b_eq: Any = None

    def _arrays(self) -> None:
        import numpy as np

        relaxation = self.relaxation
        state = len(relaxation.cuts)
        if self.incremental and state == self._built_for:
            return
        a_ub, b_ub = relaxation.solver_inequalities()
        self._a_ub = np.array(a_ub, dtype=float)
        self._b_ub = np.array(b_ub, dtype=float)
        eq_rows = relaxation.eq_rows
        self._a_eq = (
            np.array([c for c, _ in eq_rows], dtype=float) if eq_rows else None
        )
        self._b_eq = (
            np.array([b for _, b in eq_rows], dtype=float) if eq_rows else None
        )
        self._built_for = state

    def solve(self, objective: Sequence[int]) -> SolveResult:
        import numpy as np

        self._arrays()
        minimise = np.array([-c for c in objective], dtype=float)
        outcome = self._linprog(
            minimise,
            A_ub=self._a_ub,
            b_ub=self._b_ub,
            A_eq=self._a_eq,
            b_eq=self._b_eq,
            bounds=(0, 1),
            method="highs",
        )
        if not outcome.success:
            return SolveResult(success=False)
        result = SolveResult(
            success=True,
            optimum=-float(outcome.fun),
            x=tuple(float(v) for v in outcome.x),
        )
        relaxation = self.relaxation
        if relaxation.eq_rows:
            for row, dual in enumerate(outcome.eqlin.marginals):
                if dual:
                    result.eq_duals[row] = float(dual)
        for row, dual in enumerate(outcome.ineqlin.marginals):
            if dual:
                result.ub_duals[relaxation.solver_ub_index(row)] = float(dual)
        for var, dual in enumerate(outcome.upper.marginals):
            if dual:
                result.box_duals[var] = float(dual)
        return result


def make_sweep_solver(
    relaxation: Relaxation, incremental: bool = True
) -> Optional[Any]:
    """The best available backend attached to ``relaxation``, or ``None``."""
    try:
        from scipy.optimize._highspy import _core
    except ImportError:
        _core = None
    if _core is not None and hasattr(_core, "_Highs"):
        return HighsSweepSolver(_core, relaxation, incremental=incremental)
    try:
        from scipy.optimize import linprog
    except ImportError:
        return None
    return LinprogSweepSolver(linprog, relaxation, incremental=incremental)
