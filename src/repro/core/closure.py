"""Minimal ``Unf``-compatible closures (paper Definition 1, Theorems 1-2).

A 0-1 vector over the prefix events is ``Unf``-compatible iff it is the
characteristic vector of a configuration: closed under causal predecessors
and conflict-free (Theorem 1).  A vector ``x`` has a compatible closure iff
no two of its events are in conflict (Theorem 2); the minimal closure then
simply adds all causal predecessors.

Paper mapping, function by function:

* :func:`is_compatible` — Theorem 1 (the characterisation the Section 4
  branch-and-bound enforces implicitly through its branching order);
* :func:`has_compatible_closure` — the "only if" direction of Theorem 2;
* :func:`minimal_compatible_closure` — ``MCC(x)`` of Definition 1, whose
  existence is Theorem 2's "if" direction.

The branch-and-bound search never materialises closures explicitly (its
topological branching order keeps partial assignments closed by
construction), but the closure operators are part of the paper's public
machinery, are used by the tests as an independent oracle, and power the
"seeded" search mode.

Observability: when tracing is enabled these operators report the
``closure.mcc_calls`` / ``closure.mcc_hits`` / ``closure.compat_calls``
counters and the ``closure.mcc`` / ``closure.compat`` timers; with tracing
disabled the cost is a single boolean check per call (these run in hot
validation loops).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from repro.obs import get_tracer
from repro.unfolding.relations import PrefixRelations


def has_compatible_closure(relations: PrefixRelations, event_mask: int) -> bool:
    """Theorem 2: ``x`` has a compatible closure iff it is conflict-free."""
    rest = event_mask
    while rest:
        low = rest & -rest
        e = low.bit_length() - 1
        if relations.conf[e] & event_mask:
            return False
        rest ^= low
    return True


def minimal_compatible_closure(
    relations: PrefixRelations, event_mask: int
) -> Optional[int]:
    """``MCC(x)``: the least configuration containing all events of ``x``,
    or ``None`` if none exists.

    The closure adds every causal predecessor of every event in ``x``; it
    exists iff the *result* is conflict-free (conflicts may also arise
    between added predecessors, so the check runs on the closed set).
    """
    tracer = get_tracer()
    if not tracer.enabled:
        return _mcc(relations, event_mask)
    started = perf_counter()
    result = _mcc(relations, event_mask)
    tracer.add_time("closure.mcc", perf_counter() - started)
    tracer.incr("closure.mcc_calls")
    if result is not None:
        tracer.incr("closure.mcc_hits")
    return result


def _mcc(relations: PrefixRelations, event_mask: int) -> Optional[int]:
    closure = event_mask
    rest = event_mask
    while rest:
        low = rest & -rest
        closure |= relations.pred[low.bit_length() - 1]
        rest ^= low
    if not has_compatible_closure(relations, closure):
        return None
    return closure


def is_compatible(relations: PrefixRelations, event_mask: int) -> bool:
    """Theorem 1: closed under predecessors and conflict-free."""
    tracer = get_tracer()
    if not tracer.enabled:
        return _compatible(relations, event_mask)
    started = perf_counter()
    result = _compatible(relations, event_mask)
    tracer.add_time("closure.compat", perf_counter() - started)
    tracer.incr("closure.compat_calls")
    return result


def _compatible(relations: PrefixRelations, event_mask: int) -> bool:
    rest = event_mask
    while rest:
        low = rest & -rest
        e = low.bit_length() - 1
        if relations.pred[e] & ~event_mask:
            return False
        if relations.conf[e] & event_mask:
            return False
        rest ^= low
    return True
