"""Branch-and-bound over pairs of ``Unf``-compatible 0-1 vectors.

This is the verification algorithm of the paper's Section 4.  Instead of
handing the constraint system (2)-(3) to a general-purpose solver, the search
walks the free events of the prefix in a topological order of causality and
decides, per event ``e``, the pair ``(x'(e), x''(e))``.  The partial-order
dependencies of Theorem 1 turn into constant-time mask checks:

* ``x(e) = 1`` is allowed only if all causal predecessors of ``e`` are
  already 1 and no event in conflict with ``e`` is 1 — so every partial
  assignment is a pair of partial configurations and the compatibility
  constraints need never be generated (cf. Section 4);
* cut-off events are excluded from the variable set up front (constraint (3)
  eliminates variables, as the paper notes).

The conflict constraint (2) — ``Code(x') = Code(x'')`` — is enforced by
interval pruning: per signal the undecided suffix can change the code
difference by at most the number of its occurrences.  Normalcy (Section 6)
uses the same engine with the relaxed per-signal constraint
``Code(x') <= Code(x'')``.

For STGs free of dynamic conflicts the search can be restricted to
set-ordered pairs ``C' ⊆ C''`` (Proposition 1), which prunes one of the four
branches at every level.

Paper mapping: the enumeration implements Section 4's branch-and-bound over
the constraint system (2)-(3) of Section 3; the implicit-compatibility
branching rule is Theorem 1, the cut-off variable elimination is constraint
(3), the ``nested_only`` restriction is Proposition 1, and :data:`MODE_LEQ`
is the relaxed system (5) of Section 6 (normalcy).

Implementation: the descent is an *iterative* explicit-stack loop — one
preallocated frame per depth, no recursion, no generator chain — driven by
precomputed per-position branch tables (the legal ``(a, b)`` successor
options with the signal delta and the balance-pruning interval folded in).
Any subtree can be packaged as a picklable :class:`SearchShard` (the resume
index plus the partial assignment state) and resumed later, in another
process, via :meth:`PairSearch.solutions_from`; :meth:`PairSearch.frontier_from`
splits a shard into the consistent partial assignments at a deeper index,
which is how :mod:`repro.core.parallel` fans one check out over workers.

Observability: the search keeps its own :class:`SearchStats` (node, leaf,
prune and solution counts — the ablation benchmarks read these directly);
the high-level checkers in :mod:`repro.core.verifier` wrap each run in a
``search.pairs`` / ``search.window`` span and mirror the stats into the
``search.*`` counters of :mod:`repro.obs`, so the per-node hot path itself
carries no instrumentation at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.exceptions import SolverError, SolverLimitError
from repro.core.context import SolverContext, SolverSnapshot

#: Constraint placed on the per-signal code difference ``Code(x')-Code(x'')``.
MODE_EQUAL = "equal"   # USC / CSC: difference must vanish
MODE_LEQ = "leq"       # normalcy: Code(x') <= Code(x'') componentwise

#: Either the full prefix view or its picklable slice — the searches only
#: touch the shared table attributes, so both work interchangeably.
ContextLike = Union[SolverContext, SolverSnapshot]

#: Sentinel bound for disabled interval pruning (never exceeded).
_NO_BOUND = 1 << 62


@dataclass
class SearchStats:
    """Instrumentation of one search run (used by the ablation benchmarks)."""

    nodes: int = 0
    leaves: int = 0
    pruned_balance: int = 0
    pruned_structure: int = 0
    solutions: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another run's counters (shard merging)."""
        self.nodes += other.nodes
        self.leaves += other.leaves
        self.pruned_balance += other.pruned_balance
        self.pruned_structure += other.pruned_structure
        self.solutions += other.solutions


@dataclass(frozen=True)
class SearchShard:
    """A picklable resume point of the pair search: the subtree rooted at the
    partial assignment ``(ones_a, ones_b)`` of positions ``< resume_index``.

    ``diff`` is the per-signal code difference of the partial assignment and
    ``differed`` whether the two vectors already differ (the symmetry-breaking
    state) — exactly the state the descent threads through its frames, so a
    shard resumes bit-for-bit where the frontier enumeration stopped.
    """

    resume_index: int
    ones_a: int
    ones_b: int
    diff: Tuple[int, ...]
    differed: bool


class PairSearch:
    """Enumerates solution pairs ``(x', x'')`` of the conflict system.

    Parameters:

    ``mode``
        :data:`MODE_EQUAL` for USC/CSC conflicts, :data:`MODE_LEQ` for
        normalcy violations.
    ``nested_only``
        Apply Proposition 1 (sound only for dynamically conflict-free STGs):
        restrict the enumeration to pairs with ``C' ⊆ C''``.
    ``use_balance_pruning`` / ``use_order_propagation``
        Ablation switches; disabling order propagation falls back to
        validating compatibility at the leaves only (the "standard solver"
        behaviour the paper improves upon).
    ``node_budget``
        Raise :class:`SolverLimitError` after this many search nodes.
    ``capacities``
        Optional conflict-clique capacity tables from
        :func:`repro.analysis.conflict_clique_capacities`.  In nested mode
        they replace the plain suffix counts in the balance intervals —
        never looser, so only dead subtrees are cut earlier and the
        solution stream is unchanged (the ``use_facts=`` contract).
    ``movable_places``
        Optional per-original-place movability classification from
        :mod:`repro.refine` (the ``use_refinement=`` path; honoured in
        nested :data:`MODE_EQUAL` only, where the refinement certificate
        applies).  Places *not* marked movable are certified to have zero
        token-flow delta across every balanced nested pair, so a subtree
        whose difference set already balances the movable places and whose
        undecided suffix touches none of them can only complete to pairs
        with ``Mark(C') = Mark(C'')`` — which the checkers discard without
        counting.  Pruning them changes no verdict, witness or candidate
        count.
    """

    def __init__(
        self,
        context: ContextLike,
        mode: str = MODE_EQUAL,
        nested_only: bool = False,
        use_balance_pruning: bool = True,
        use_order_propagation: bool = True,
        node_budget: Optional[int] = None,
        capacities: Optional[Tuple[List[List[int]], List[List[int]]]] = None,
        movable_places: Optional[List[bool]] = None,
    ):
        if mode not in (MODE_EQUAL, MODE_LEQ):
            raise ValueError(f"unknown mode {mode!r}")
        self.context = context
        self.mode = mode
        self.nested_only = nested_only
        self.use_balance_pruning = use_balance_pruning
        self.use_order_propagation = use_order_propagation
        self.node_budget = node_budget
        self.capacities = capacities
        self.stats = SearchStats()
        self._movable = (
            movable_places if nested_only and mode == MODE_EQUAL else None
        )
        self._movable_flows: List[Tuple[Tuple[int, int], ...]] = []
        self._movable_suffix: List[bool] = []
        if self._movable is not None:
            flows = context.window_flows
            self._movable_flows = [
                tuple(
                    (place, delta)
                    for place, delta in flows[index]
                    if self._movable[place]
                )
                for index in range(context.num_vars)
            ]
            self._movable_suffix = [False] * (context.num_vars + 1)
            for index in range(context.num_vars - 1, -1, -1):
                self._movable_suffix[index] = (
                    self._movable_suffix[index + 1]
                    or bool(self._movable_flows[index])
                )
        self._build_branch_tables()

    # -- public API -------------------------------------------------------------

    def root_shard(self) -> SearchShard:
        """The shard covering the whole search tree."""
        return SearchShard(
            resume_index=0,
            ones_a=0,
            ones_b=0,
            diff=(0,) * self.context.num_signals,
            differed=False,
        )

    def solutions(self) -> Iterator[Tuple[int, int]]:
        """Yield all pairs of position masks satisfying the code constraint
        (plus compatibility and the cut-off constraints), lazily.

        The caller applies the remaining (generally non-linear) separating
        constraints — ``Mark`` inequality for USC, ``Out`` inequality for
        CSC, ``Nxt`` comparisons for normalcy — to each candidate, which is
        exactly the paper's strategy of checking those directly on the STG.
        """
        return self.solutions_from(self.root_shard())

    def solutions_from(self, shard: SearchShard) -> Iterator[Tuple[int, int]]:
        """Resume the enumeration inside ``shard`` (its subtree only)."""
        return self._walk(shard, None)  # type: ignore[return-value]

    def frontier_from(self, shard: SearchShard, depth: int) -> List[SearchShard]:
        """Split ``shard`` into the consistent partial assignments at position
        ``depth`` (clamped to ``num_vars``), in descent order.

        Dead prefixes — partial assignments killed by order propagation or
        balance pruning — are never emitted, and the internal nodes walked
        here are counted into :attr:`stats` exactly once, so frontier stats
        plus per-shard stats add up to the sequential totals.
        """
        stop = min(depth, self.context.num_vars)
        if shard.resume_index >= stop:
            return [shard]
        return list(self._walk(shard, stop))  # type: ignore[arg-type]

    # -- the iterative hot loop --------------------------------------------------

    def _build_branch_tables(self) -> None:
        """Per-position successor options with pruning data folded in.

        Each entry is ``(abit, bbit, sig, dd, lim_pos, lim_neg)``: the mask
        bits the option sets, the signal index and code-difference delta it
        contributes (``dd == 0`` when the vectors agree or the event is a
        dummy), and the inclusive interval ``[lim_neg, lim_pos]`` the new
        difference must stay in (the balance pruning of constraint (2),
        using the tighter one-sided bounds in nested mode).

        ``_branch_sym`` additionally drops the ``(1, 0)`` option — used while
        the pair has not differed yet in :data:`MODE_EQUAL` (the unordered
        pair is enumerated once, first difference forced to ``(0, 1)``).
        """
        context = self.context
        equal = self.mode == MODE_EQUAL
        prune = self.use_balance_pruning
        capacities = self.capacities
        plain: List[Tuple[Tuple[int, int, int, int, int, int], ...]] = []
        sym: List[Tuple[Tuple[int, int, int, int, int, int], ...]] = []
        for index in range(context.num_vars):
            bit = 1 << index
            signal = context.signal_of[index]
            delta = context.delta_of[index]
            if signal is not None and prune:
                nxt = index + 1
                if self.nested_only:
                    if capacities is not None:
                        # the undecided window events are conflict-free, so
                        # the clique capacities bound them at least as
                        # tightly as the raw suffix counts
                        plus_cap, minus_cap = capacities
                        lim_pos = plus_cap[nxt][signal]
                        lim_neg = -minus_cap[nxt][signal] if equal else -_NO_BOUND
                    else:
                        lim_pos = context.suffix_plus[nxt][signal]
                        lim_neg = (
                            -context.suffix_minus[nxt][signal]
                            if equal
                            else -_NO_BOUND
                        )
                else:
                    if capacities is not None:
                        # the two sides of the pair contribute through the
                        # disjoint difference sets C'\C'' and C''\C', each
                        # conflict-free on its own, so the clique capacities
                        # of both polarities bound the total movement
                        plus_cap, minus_cap = capacities
                        count = plus_cap[nxt][signal] + minus_cap[nxt][signal]
                    else:
                        count = context.suffix_count[nxt][signal]
                    lim_pos = count
                    lim_neg = -count if equal else -_NO_BOUND
            else:
                lim_pos, lim_neg = _NO_BOUND, -_NO_BOUND
            entries = []
            for a, b in ((1, 1), (0, 1), (1, 0), (0, 0)):
                if a == 1 and b == 0 and self.nested_only:
                    continue  # Proposition 1: C' ⊆ C''
                dd = delta * (a - b) if signal is not None else 0
                entries.append(
                    (
                        bit if a else 0,
                        bit if b else 0,
                        signal if signal is not None else 0,
                        dd,
                        lim_pos,
                        lim_neg,
                    )
                )
            plain.append(tuple(entries))
            sym.append(tuple(e for e in entries if not (e[0] and not e[1])))
        self._branch_plain = plain
        self._branch_sym = sym

    def _walk(
        self, shard: SearchShard, stop: Optional[int]
    ) -> Iterator[Union[Tuple[int, int], SearchShard]]:
        """The iterative descent over ``shard``'s subtree.

        With ``stop is None`` runs to the leaves and yields solution pairs;
        with ``stop = k`` yields uncounted :class:`SearchShard` resume points
        at position ``k`` instead (frontier splitting).
        """
        context = self.context
        num_vars = context.num_vars
        start = shard.resume_index
        depth_cap = num_vars - start + 1
        mode_equal = self.mode == MODE_EQUAL
        propagate = self.use_order_propagation
        budget = self.node_budget if self.node_budget is not None else _NO_BOUND
        branch_plain = self._branch_plain
        branch_sym = self._branch_sym
        pred_pos = context.pred_pos
        conf_pos = context.conf_pos
        movable = self._movable
        movable_flows = self._movable_flows
        movable_suffix = self._movable_suffix

        # token-flow delta of the difference set C''\C' on movable places
        # (refinement tightening; (0, 1) options are the only contributors)
        movable_delta: List[int] = []
        movable_nonzero = 0
        if movable is not None:
            movable_delta = [0] * context.num_places
            mask = shard.ones_b & ~shard.ones_a
            while mask:
                low = mask & -mask
                for place, d in movable_flows[low.bit_length() - 1]:
                    movable_delta[place] += d
                mask ^= low
            movable_nonzero = sum(1 for value in movable_delta if value)

        diff = list(shard.diff)
        # one preallocated frame per depth (the descent advances the index by
        # exactly one, so depth identifies the position being decided)
        ones_a = [0] * depth_cap
        ones_b = [0] * depth_cap
        differed = [False] * depth_cap
        cursor = [0] * depth_cap
        options: List[Tuple[Tuple[int, int, int, int, int, int], ...]] = [
            ()
        ] * depth_cap
        can_a = [False] * depth_cap
        can_b = [False] * depth_cap
        undo_sig = [0] * depth_cap
        undo_dd = [0] * depth_cap
        undo_flow: List[Tuple[Tuple[int, int], ...]] = [()] * depth_cap
        ones_a[0], ones_b[0] = shard.ones_a, shard.ones_b
        differed[0] = shard.differed

        nodes = leaves = pruned = pruned_struct = found = 0
        depth = 0
        fresh = True
        try:
            while depth >= 0:
                if fresh:
                    index = start + depth
                    if stop is not None and index == stop:
                        # emit a resume point; the node itself is counted by
                        # whoever descends into the shard, not here
                        yield SearchShard(
                            resume_index=index,
                            ones_a=ones_a[depth],
                            ones_b=ones_b[depth],
                            diff=tuple(diff),
                            differed=differed[depth],
                        )
                        dd = undo_dd[depth]
                        if dd:
                            diff[undo_sig[depth]] -= dd
                        if movable is not None:
                            for place, d in undo_flow[depth]:
                                before = movable_delta[place]
                                after = before - d
                                movable_delta[place] = after
                                if before == 0:
                                    if after:
                                        movable_nonzero += 1
                                elif after == 0:
                                    movable_nonzero -= 1
                        depth -= 1
                        fresh = False
                        continue
                    nodes += 1
                    if nodes > budget:
                        raise SolverLimitError(
                            f"pair search exceeded node budget {self.node_budget}"
                        )
                    if index == num_vars:
                        leaves += 1
                        oa, ob = ones_a[depth], ones_b[depth]
                        if mode_equal:
                            ok = differed[depth] and not any(diff)
                        else:
                            ok = not any(d > 0 for d in diff)
                        if ok and not propagate:
                            ok = self._structure_ok(oa, ob)
                        if ok:
                            found += 1
                            yield oa, ob
                        dd = undo_dd[depth]
                        if dd:
                            diff[undo_sig[depth]] -= dd
                        if movable is not None:
                            for place, d in undo_flow[depth]:
                                before = movable_delta[place]
                                after = before - d
                                movable_delta[place] = after
                                if before == 0:
                                    if after:
                                        movable_nonzero += 1
                                elif after == 0:
                                    movable_nonzero -= 1
                        depth -= 1
                        fresh = False
                        continue
                    if (
                        movable is not None
                        and movable_nonzero == 0
                        and not movable_suffix[index]
                    ):
                        # refinement tightening: completions can no longer
                        # move any movable place, and the immovable ones are
                        # certified — every surviving leaf would have
                        # Mark(C') = Mark(C''), which the checkers discard
                        pruned_struct += 1
                        dd = undo_dd[depth]
                        if dd:
                            diff[undo_sig[depth]] -= dd
                        for place, d in undo_flow[depth]:
                            before = movable_delta[place]
                            after = before - d
                            movable_delta[place] = after
                            if before == 0:
                                if after:
                                    movable_nonzero += 1
                            elif after == 0:
                                movable_nonzero -= 1
                        depth -= 1
                        fresh = False
                        continue
                    oa, ob = ones_a[depth], ones_b[depth]
                    if propagate:
                        pred = pred_pos[index]
                        conf = conf_pos[index]
                        can_a[depth] = pred & ~oa == 0 and conf & oa == 0
                        can_b[depth] = pred & ~ob == 0 and conf & ob == 0
                    else:
                        can_a[depth] = can_b[depth] = True
                    options[depth] = (
                        branch_sym[index]
                        if mode_equal and not differed[depth]
                        else branch_plain[index]
                    )
                    cursor[depth] = 0
                    fresh = False

                row = options[depth]
                cur = cursor[depth]
                oa, ob = ones_a[depth], ones_b[depth]
                ca, cb = can_a[depth], can_b[depth]
                pushed = False
                while cur < len(row):
                    abit, bbit, sig, dd, lim_pos, lim_neg = row[cur]
                    cur += 1
                    if abit and not ca:
                        continue
                    if bbit and not cb:
                        continue
                    child = depth + 1
                    if dd:
                        value = diff[sig] + dd
                        if value > lim_pos or value < lim_neg:
                            pruned += 1
                            continue
                        diff[sig] = value
                        undo_sig[child] = sig
                        undo_dd[child] = dd
                    else:
                        undo_dd[child] = 0
                    if movable is not None:
                        mflows = (
                            movable_flows[start + depth]
                            if bbit and not abit
                            else ()
                        )
                        undo_flow[child] = mflows
                        for place, d in mflows:
                            before = movable_delta[place]
                            after = before + d
                            movable_delta[place] = after
                            if before == 0:
                                if after:
                                    movable_nonzero += 1
                            elif after == 0:
                                movable_nonzero -= 1
                    cursor[depth] = cur
                    ones_a[child] = oa | abit
                    ones_b[child] = ob | bbit
                    differed[child] = differed[depth] or abit != bbit
                    depth = child
                    fresh = True
                    pushed = True
                    break
                if pushed:
                    continue
                # options exhausted: undo the edge that led here and pop
                dd = undo_dd[depth]
                if dd:
                    diff[undo_sig[depth]] -= dd
                if movable is not None:
                    for place, d in undo_flow[depth]:
                        before = movable_delta[place]
                        after = before - d
                        movable_delta[place] = after
                        if before == 0:
                            if after:
                                movable_nonzero += 1
                        elif after == 0:
                            movable_nonzero -= 1
                depth -= 1
        finally:
            stats = self.stats
            stats.nodes += nodes
            stats.leaves += leaves
            stats.pruned_balance += pruned
            stats.pruned_structure += pruned_struct
            stats.solutions += found

    # -- leaf validation (ablation path only) -------------------------------------

    def _structure_ok(self, ones_a: int, ones_b: int) -> bool:
        """Validate compatibility at a leaf when order propagation is off."""
        from repro.core.closure import is_compatible

        context = self.context
        if not isinstance(context, SolverContext):
            raise SolverError(
                "leaf compatibility validation needs the full SolverContext "
                "(snapshots carry no relations); keep order propagation on"
            )
        for mask in (ones_a, ones_b):
            events = 0
            for e in context.positions_to_events(mask):
                events |= 1 << e
            if not is_compatible(context.relations, events):
                self.stats.pruned_structure += 1
                return False
        return True
