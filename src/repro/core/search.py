"""Branch-and-bound over pairs of ``Unf``-compatible 0-1 vectors.

This is the verification algorithm of the paper's Section 4.  Instead of
handing the constraint system (2)-(3) to a general-purpose solver, the search
walks the free events of the prefix in a topological order of causality and
decides, per event ``e``, the pair ``(x'(e), x''(e))``.  The partial-order
dependencies of Theorem 1 turn into constant-time mask checks:

* ``x(e) = 1`` is allowed only if all causal predecessors of ``e`` are
  already 1 and no event in conflict with ``e`` is 1 — so every partial
  assignment is a pair of partial configurations and the compatibility
  constraints need never be generated (cf. Section 4);
* cut-off events are excluded from the variable set up front (constraint (3)
  eliminates variables, as the paper notes).

The conflict constraint (2) — ``Code(x') = Code(x'')`` — is enforced by
interval pruning: per signal the undecided suffix can change the code
difference by at most the number of its occurrences.  Normalcy (Section 6)
uses the same engine with the relaxed per-signal constraint
``Code(x') <= Code(x'')``.

For STGs free of dynamic conflicts the search can be restricted to
set-ordered pairs ``C' ⊆ C''`` (Proposition 1), which prunes one of the four
branches at every level.

Paper mapping: the enumeration implements Section 4's branch-and-bound over
the constraint system (2)-(3) of Section 3; the implicit-compatibility
branching rule is Theorem 1, the cut-off variable elimination is constraint
(3), the ``nested_only`` restriction is Proposition 1, and :data:`MODE_LEQ`
is the relaxed system (5) of Section 6 (normalcy).

Observability: the search keeps its own :class:`SearchStats` (node, leaf,
prune and solution counts — the ablation benchmarks read these directly);
the high-level checkers in :mod:`repro.core.verifier` wrap each run in a
``search.pairs`` / ``search.window`` span and mirror the stats into the
``search.*`` counters of :mod:`repro.obs`, so the per-node hot path itself
carries no instrumentation at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Tuple

from repro.exceptions import SolverLimitError
from repro.core.context import SolverContext

#: Constraint placed on the per-signal code difference ``Code(x')-Code(x'')``.
MODE_EQUAL = "equal"   # USC / CSC: difference must vanish
MODE_LEQ = "leq"       # normalcy: Code(x') <= Code(x'') componentwise


@dataclass
class SearchStats:
    """Instrumentation of one search run (used by the ablation benchmarks)."""

    nodes: int = 0
    leaves: int = 0
    pruned_balance: int = 0
    pruned_structure: int = 0
    solutions: int = 0


class PairSearch:
    """Enumerates solution pairs ``(x', x'')`` of the conflict system.

    Parameters:

    ``mode``
        :data:`MODE_EQUAL` for USC/CSC conflicts, :data:`MODE_LEQ` for
        normalcy violations.
    ``nested_only``
        Apply Proposition 1 (sound only for dynamically conflict-free STGs):
        restrict the enumeration to pairs with ``C' ⊆ C''``.
    ``use_balance_pruning`` / ``use_order_propagation``
        Ablation switches; disabling order propagation falls back to
        validating compatibility at the leaves only (the "standard solver"
        behaviour the paper improves upon).
    ``node_budget``
        Raise :class:`SolverLimitError` after this many search nodes.
    """

    def __init__(
        self,
        context: SolverContext,
        mode: str = MODE_EQUAL,
        nested_only: bool = False,
        use_balance_pruning: bool = True,
        use_order_propagation: bool = True,
        node_budget: Optional[int] = None,
    ):
        if mode not in (MODE_EQUAL, MODE_LEQ):
            raise ValueError(f"unknown mode {mode!r}")
        self.context = context
        self.mode = mode
        self.nested_only = nested_only
        self.use_balance_pruning = use_balance_pruning
        self.use_order_propagation = use_order_propagation
        self.node_budget = node_budget
        self.stats = SearchStats()

    # -- public API -------------------------------------------------------------

    def solutions(self) -> Iterator[Tuple[int, int]]:
        """Yield all pairs of position masks satisfying the code constraint
        (plus compatibility and the cut-off constraints), lazily.

        The caller applies the remaining (generally non-linear) separating
        constraints — ``Mark`` inequality for USC, ``Out`` inequality for
        CSC, ``Nxt`` comparisons for normalcy — to each candidate, which is
        exactly the paper's strategy of checking those directly on the STG.
        """
        diff = [0] * self.context.num_signals
        yield from self._descend(0, 0, 0, diff, False)

    # -- internals -------------------------------------------------------------

    def _descend(
        self,
        index: int,
        ones_a: int,
        ones_b: int,
        diff,
        differed: bool,
    ) -> Iterator[Tuple[int, int]]:
        context = self.context
        self.stats.nodes += 1
        if self.node_budget is not None and self.stats.nodes > self.node_budget:
            raise SolverLimitError(
                f"pair search exceeded node budget {self.node_budget}"
            )
        if index == context.num_vars:
            self.stats.leaves += 1
            if self._leaf_ok(ones_a, ones_b, diff, differed):
                self.stats.solutions += 1
                yield ones_a, ones_b
            return

        bit = 1 << index
        pred = context.pred_pos[index]
        conf = context.conf_pos[index]
        signal = context.signal_of[index]
        delta = context.delta_of[index]

        can_a = self._assignable(pred, conf, ones_a)
        can_b = self._assignable(pred, conf, ones_b)

        for a, b in ((1, 1), (0, 1), (1, 0), (0, 0)):
            if a and not can_a:
                continue
            if b and not can_b:
                continue
            if a == 1 and b == 0:
                if self.nested_only:
                    continue  # Proposition 1: C' ⊆ C''
                if self.mode == MODE_EQUAL and not differed:
                    # symmetry breaking: the pair is unordered for USC/CSC,
                    # so force the first difference to be (0, 1); normalcy
                    # pairs are ordered (Code(x') <= Code(x'')) — keep both
                    continue
            now_differed = differed or a != b
            if signal is not None and a != b:
                diff[signal] += delta * (a - b)
                if self._balance_violated(diff, signal, index + 1):
                    self.stats.pruned_balance += 1
                    diff[signal] -= delta * (a - b)
                    continue
                yield from self._descend(
                    index + 1,
                    ones_a | (bit if a else 0),
                    ones_b | (bit if b else 0),
                    diff,
                    now_differed,
                )
                diff[signal] -= delta * (a - b)
            else:
                yield from self._descend(
                    index + 1,
                    ones_a | (bit if a else 0),
                    ones_b | (bit if b else 0),
                    diff,
                    now_differed,
                )

    def _assignable(self, pred: int, conf: int, ones: int) -> bool:
        if not self.use_order_propagation:
            return True
        return pred & ~ones == 0 and conf & ones == 0

    def _balance_violated(self, diff, signal: int, next_index: int) -> bool:
        if not self.use_balance_pruning:
            return False
        value = diff[signal]
        if self.nested_only:
            # only (0, 1) assignments remain possible, so a future s+ event
            # can only lower diff and a future s- event can only raise it
            lo = value - self.context.suffix_plus[next_index][signal]
            hi = value + self.context.suffix_minus[next_index][signal]
            if self.mode == MODE_EQUAL:
                return lo > 0 or hi < 0
            return lo > 0  # MODE_LEQ: must be able to come down to <= 0
        remaining = self.context.suffix_count[next_index][signal]
        if self.mode == MODE_EQUAL:
            return abs(value) > remaining
        return value > remaining  # MODE_LEQ: must be able to come down to <= 0

    def _leaf_ok(self, ones_a: int, ones_b: int, diff, differed: bool) -> bool:
        if self.mode == MODE_EQUAL:
            if not differed:
                return False
            if any(diff):
                return False
        else:
            if any(d > 0 for d in diff):
                return False
        if not self.use_order_propagation:
            # compatibility was not enforced during the descent; validate now
            from repro.core.closure import is_compatible

            remap = self.context.positions_to_events
            from repro.utils.bitset import BitSet

            for mask in (ones_a, ones_b):
                events = 0
                for e in remap(mask):
                    events |= 1 << e
                if not is_compatible(self.context.relations, events):
                    self.stats.pruned_structure += 1
                    return False
        return True
