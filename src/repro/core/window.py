"""Single-vector *window* search for dynamically conflict-free STGs.

Combining Proposition 1 with the marking equation collapses the pair search
to a search over single event sets:

* by Proposition 1 it suffices to look at nested pairs ``C' ⊂ C''``;
* the difference window ``D = C'' \\ C'`` determines both remaining
  constraints: the codes agree iff the signal-change vector of ``D``
  vanishes, and — by the marking equation on the original net —
  ``Mark(C'') - Mark(C') = I · parikh(D)`` depends on ``D`` alone;
* conversely any pairwise conflict-free and *convex* ``D`` embeds into a
  valid pair: take ``C'' = MCC(D)`` (which exists by Theorem 2) and
  ``C' = C'' \\ D``.  Convexity — no event of ``MCC(D) \\ D`` lies causally
  above an event of ``D`` — is exactly what makes ``C'`` downward closed,
  and every real difference window ``C'' \\ C'`` has it.

Hence a USC conflict exists iff some non-empty, conflict-free, convex event
set ``D`` has a zero signal-change vector and a non-zero original-net marking
delta.  The search below enumerates such windows with the same interval
pruning as the pair search, over a single 0-1 vector — exponentially fewer
nodes on the conflict-free benchmarks, where the pair search must enumerate
every configuration pair.  Because the branching order is topological,
convexity reduces to one incremental mask check per inclusion: none of the
new event's causal predecessors may be an excluded successor of the window.

Like :class:`repro.core.search.PairSearch`, the descent is an iterative
explicit-stack loop (one preallocated frame per depth, a small stage machine
for the include/exclude branches) and any subtree can be packaged as a
picklable :class:`WindowShard` and resumed elsewhere — the frontier-split
parallel driver of :mod:`repro.core.parallel` uses both searches through
the same shard/frontier interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from time import perf_counter

from repro.core.context import SolverContext, SolverSnapshot
from repro.core.search import SearchStats
from repro.exceptions import SolverLimitError
from repro.obs import get_tracer

ContextLike = Union[SolverContext, SolverSnapshot]

_NO_BOUND = 1 << 62

#: Frame stages of the iterative descent.
_FRESH = 0          # node not expanded yet
_TRY_EXCLUDE = 1    # include branch done (skipped or pruned), exclude next
_IN_INCLUDE = 2     # include child running; undo its deltas on return
_IN_EXCLUDE = 3     # exclude child running; pop on return


@dataclass(frozen=True)
class WindowShard:
    """A picklable resume point of the window search: the subtree rooted at
    the partial window ``chosen`` over positions ``< resume_index``, with the
    incremental state (convexity successor mask, per-signal code difference,
    marking-equation deltas) the descent threads through its frames.
    """

    resume_index: int
    chosen: int
    succ_mask: int
    diff: Tuple[int, ...]
    place_delta: Tuple[int, ...]
    nonzero_places: int


class WindowSearch:
    """Enumerate balanced, marking-changing, conflict-free windows.

    Yields pairs ``(closure_mask, window_mask)`` in position-mask space:
    ``closure_mask`` is ``C'' = MCC(D)`` and ``window_mask`` is ``D``; the
    corresponding ``C'`` is ``closure_mask & ~window_mask``.

    Only sound for dynamically conflict-free STGs (Proposition 1).
    """

    def __init__(
        self,
        context: ContextLike,
        require_marking_change: bool = True,
        node_budget: Optional[int] = None,
        capacities: Optional[Tuple[List[List[int]], List[List[int]]]] = None,
        movable_places: Optional[List[bool]] = None,
    ):
        self.context = context
        self.require_marking_change = require_marking_change
        self.node_budget = node_budget
        self.capacities = capacities
        self.stats = SearchStats()
        self.flows: List[Tuple[Tuple[int, int], ...]] = context.window_flows
        self.succ_pos: List[int] = context.succ_pos
        # refinement tightening (repro.refine): places certified immovable
        # have zero token-flow delta in every balanced window, so once the
        # movable places are all balanced and no undecided position touches
        # one, the subtree can only complete to windows with an all-zero
        # marking delta — which the require_marking_change leaf test drops
        # anyway.  Pruning them early changes no yielded solution.
        self._movable = movable_places if require_marking_change else None
        self._movable_suffix: List[bool] = []
        if self._movable is not None:
            self._movable_suffix = [False] * (context.num_vars + 1)
            for index in range(context.num_vars - 1, -1, -1):
                self._movable_suffix[index] = self._movable_suffix[index + 1] or any(
                    self._movable[place] for place, _ in self.flows[index]
                )
        # balance interval per position, for its own signal: the undecided
        # suffix can only raise the difference via s- events (exclusion side
        # of a nested pair) and lower it via s+ events.  With clique
        # capacity tables (repro.analysis, the ``use_facts=`` path) the raw
        # suffix counts are replaced by the number of conflict cliques still
        # intersecting the suffix — windows are conflict-free, so the bound
        # stays sound and is never looser; only dead subtrees are cut.
        self._lim_pos: List[int] = [_NO_BOUND] * context.num_vars
        self._lim_neg: List[int] = [-_NO_BOUND] * context.num_vars
        if capacities is not None:
            plus_bound, minus_bound = capacities[0], capacities[1]
        else:
            plus_bound, minus_bound = context.suffix_plus, context.suffix_minus
        for index in range(context.num_vars):
            signal = context.signal_of[index]
            if signal is not None:
                self._lim_pos[index] = minus_bound[index + 1][signal]
                self._lim_neg[index] = -plus_bound[index + 1][signal]

    # -- public API -------------------------------------------------------------

    def root_shard(self) -> WindowShard:
        """The shard covering the whole search tree."""
        return WindowShard(
            resume_index=0,
            chosen=0,
            succ_mask=0,
            diff=(0,) * self.context.num_signals,
            place_delta=(0,) * self.context.num_places,
            nonzero_places=0,
        )

    def solutions(self) -> Iterator[Tuple[int, int]]:
        return self.solutions_from(self.root_shard())

    def solutions_from(self, shard: WindowShard) -> Iterator[Tuple[int, int]]:
        """Resume the enumeration inside ``shard`` (its subtree only)."""
        return self._walk(shard, None)  # type: ignore[return-value]

    def frontier_from(self, shard: WindowShard, depth: int) -> List[WindowShard]:
        """Split ``shard`` into the surviving partial windows at position
        ``depth`` (clamped), in descent order; see
        :meth:`repro.core.search.PairSearch.frontier_from` for the stats
        contract (frontier + shard totals equal the sequential run).
        """
        stop = min(depth, self.context.num_vars)
        if shard.resume_index >= stop:
            return [shard]
        return list(self._walk(shard, stop))  # type: ignore[arg-type]

    # -- the iterative hot loop --------------------------------------------------

    def _walk(
        self, shard: WindowShard, stop: Optional[int]
    ) -> Iterator[Union[Tuple[int, int], WindowShard]]:
        context = self.context
        num_vars = context.num_vars
        start = shard.resume_index
        depth_cap = num_vars - start + 1
        budget = self.node_budget if self.node_budget is not None else _NO_BOUND
        require_change = self.require_marking_change
        pred_pos = context.pred_pos
        conf_pos = context.conf_pos
        signal_of = context.signal_of
        delta_of = context.delta_of
        flows = self.flows
        succ_pos = self.succ_pos
        lim_pos = self._lim_pos
        lim_neg = self._lim_neg

        movable = self._movable
        movable_suffix = self._movable_suffix if movable is not None else None

        diff = list(shard.diff)
        place_delta = list(shard.place_delta)
        chosen = [0] * depth_cap
        succ = [0] * depth_cap
        nonzero = [0] * depth_cap
        movable_nonzero = [0] * depth_cap
        stage = [_FRESH] * depth_cap
        chosen[0], succ[0] = shard.chosen, shard.succ_mask
        nonzero[0] = shard.nonzero_places
        if movable is not None:
            movable_nonzero[0] = sum(
                1
                for place, delta in enumerate(place_delta)
                if delta and movable[place]
            )

        nodes = leaves = pruned = pruned_struct = found = 0
        depth = 0
        try:
            while depth >= 0:
                index = start + depth
                st = stage[depth]
                if st == _FRESH:
                    if stop is not None and index == stop:
                        # emit a resume point; the node itself is counted by
                        # whoever descends into the shard, not here
                        yield WindowShard(
                            resume_index=index,
                            chosen=chosen[depth],
                            succ_mask=succ[depth],
                            diff=tuple(diff),
                            place_delta=tuple(place_delta),
                            nonzero_places=nonzero[depth],
                        )
                        depth -= 1
                        continue
                    nodes += 1
                    if nodes > budget:
                        raise SolverLimitError(
                            f"window search exceeded node budget "
                            f"{self.node_budget}"
                        )
                    if index == num_vars:
                        leaves += 1
                        window = chosen[depth]
                        if (
                            window != 0
                            and not any(diff)
                            and (nonzero[depth] != 0 or not require_change)
                        ):
                            found += 1
                            yield self._closure(window), window
                        depth -= 1
                        continue
                    if (
                        movable is not None
                        and movable_nonzero[depth] == 0
                        and not movable_suffix[index]
                    ):
                        # every completion's marking delta vanishes on the
                        # certified-immovable places and stays zero on the
                        # balanced movable ones: no leaf here survives the
                        # marking-change test
                        pruned_struct += 1
                        depth -= 1
                        continue
                    # include the event: must be conflict-free with the
                    # window and must not create a gap (a causal predecessor
                    # outside the window that is itself above a window event
                    # would break convexity)
                    window = chosen[depth]
                    stage[depth] = _TRY_EXCLUDE
                    if (
                        conf_pos[index] & window == 0
                        and pred_pos[index] & succ[depth] & ~window == 0
                    ):
                        signal = signal_of[index]
                        if signal is not None:
                            value = diff[signal] + delta_of[index]
                            if value > lim_pos[index] or value < lim_neg[index]:
                                pruned += 1
                                continue
                            diff[signal] = value
                        nz = nonzero[depth]
                        mnz = movable_nonzero[depth]
                        for place, d in flows[index]:
                            before = place_delta[place]
                            after = before + d
                            place_delta[place] = after
                            if after == 0:
                                nz -= 1
                                if movable is not None and movable[place]:
                                    mnz -= 1
                            elif before == 0:
                                nz += 1
                                if movable is not None and movable[place]:
                                    mnz += 1
                        stage[depth] = _IN_INCLUDE
                        child = depth + 1
                        chosen[child] = window | (1 << index)
                        succ[child] = succ[depth] | succ_pos[index]
                        nonzero[child] = nz
                        movable_nonzero[child] = mnz
                        stage[child] = _FRESH
                        depth = child
                    continue
                if st == _IN_INCLUDE:
                    # include child finished: undo its contributions
                    signal = signal_of[index]
                    if signal is not None:
                        diff[signal] -= delta_of[index]
                    for place, d in flows[index]:
                        place_delta[place] -= d
                    st = _TRY_EXCLUDE
                if st == _TRY_EXCLUDE:
                    stage[depth] = _IN_EXCLUDE
                    signal = signal_of[index]
                    if signal is not None:
                        value = diff[signal]
                        if value > lim_pos[index] or value < lim_neg[index]:
                            pruned += 1
                            depth -= 1
                            continue
                    child = depth + 1
                    chosen[child] = chosen[depth]
                    succ[child] = succ[depth]
                    nonzero[child] = nonzero[depth]
                    movable_nonzero[child] = movable_nonzero[depth]
                    stage[child] = _FRESH
                    depth = child
                    continue
                # _IN_EXCLUDE: both branches done
                depth -= 1
        finally:
            stats = self.stats
            stats.nodes += nodes
            stats.leaves += leaves
            stats.pruned_balance += pruned
            stats.pruned_structure += pruned_struct
            stats.solutions += found

    def _closure(self, chosen: int) -> int:
        # MCC(D) in position space (Definition 1; existence by Theorem 2
        # since windows are conflict-free by construction)
        tracer = get_tracer()
        started = perf_counter() if tracer.enabled else 0.0
        closure = chosen
        rest = chosen
        while rest:
            low = rest & -rest
            closure |= self.context.pred_pos[low.bit_length() - 1]
            rest ^= low
        if tracer.enabled:
            tracer.add_time("closure.window", perf_counter() - started)
            tracer.incr("closure.mcc_calls")
            tracer.incr("closure.mcc_hits")
        return closure
