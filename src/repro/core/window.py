"""Single-vector *window* search for dynamically conflict-free STGs.

Combining Proposition 1 with the marking equation collapses the pair search
to a search over single event sets:

* by Proposition 1 it suffices to look at nested pairs ``C' ⊂ C''``;
* the difference window ``D = C'' \\ C'`` determines both remaining
  constraints: the codes agree iff the signal-change vector of ``D``
  vanishes, and — by the marking equation on the original net —
  ``Mark(C'') - Mark(C') = I · parikh(D)`` depends on ``D`` alone;
* conversely any pairwise conflict-free and *convex* ``D`` embeds into a
  valid pair: take ``C'' = MCC(D)`` (which exists by Theorem 2) and
  ``C' = C'' \\ D``.  Convexity — no event of ``MCC(D) \\ D`` lies causally
  above an event of ``D`` — is exactly what makes ``C'`` downward closed,
  and every real difference window ``C'' \\ C'`` has it.

Hence a USC conflict exists iff some non-empty, conflict-free, convex event
set ``D`` has a zero signal-change vector and a non-zero original-net marking
delta.  The search below enumerates such windows with the same interval
pruning as the pair search, over a single 0-1 vector — exponentially fewer
nodes on the conflict-free benchmarks, where the pair search must enumerate
every configuration pair.  Because the branching order is topological,
convexity reduces to one incremental mask check per inclusion: none of the
new event's causal predecessors may be an excluded successor of the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from time import perf_counter

from repro.core.context import SolverContext
from repro.core.search import SearchStats
from repro.exceptions import SolverLimitError
from repro.obs import get_tracer


class WindowSearch:
    """Enumerate balanced, marking-changing, conflict-free windows.

    Yields pairs ``(closure_mask, window_mask)`` in position-mask space:
    ``closure_mask`` is ``C'' = MCC(D)`` and ``window_mask`` is ``D``; the
    corresponding ``C'`` is ``closure_mask & ~window_mask``.

    Only sound for dynamically conflict-free STGs (Proposition 1).
    """

    def __init__(
        self,
        context: SolverContext,
        require_marking_change: bool = True,
        node_budget: Optional[int] = None,
    ):
        self.context = context
        self.require_marking_change = require_marking_change
        self.node_budget = node_budget
        self.stats = SearchStats()
        # original-net token flow of each position's transition, sparse
        net = context.prefix.net
        self.flows: List[Tuple[Tuple[int, int], ...]] = []
        for position in range(context.num_vars):
            transition = context.prefix.events[context.order[position]].transition
            delta = {}
            for p, w in net.preset(transition).items():
                delta[p] = delta.get(p, 0) - w
            for p, w in net.postset(transition).items():
                delta[p] = delta.get(p, 0) + w
            self.flows.append(tuple((p, d) for p, d in delta.items() if d))
        # successor masks in position space (for the convexity check)
        self.succ_pos: List[int] = [0] * context.num_vars
        for i in range(context.num_vars):
            rest = context.pred_pos[i]
            while rest:
                low = rest & -rest
                self.succ_pos[low.bit_length() - 1] |= 1 << i
                rest ^= low

    def solutions(self) -> Iterator[Tuple[int, int]]:
        context = self.context
        diff = [0] * context.num_signals
        place_delta = [0] * context.prefix.net.num_places
        yield from self._descend(0, 0, 0, diff, place_delta, 0)

    def _descend(
        self,
        index: int,
        chosen: int,
        succ_mask: int,
        diff: List[int],
        place_delta: List[int],
        nonzero_places: int,
    ) -> Iterator[Tuple[int, int]]:
        context = self.context
        self.stats.nodes += 1
        if self.node_budget is not None and self.stats.nodes > self.node_budget:
            raise SolverLimitError(
                f"window search exceeded node budget {self.node_budget}"
            )
        if index == context.num_vars:
            self.stats.leaves += 1
            if chosen == 0:
                return
            if any(diff):
                return
            if self.require_marking_change and nonzero_places == 0:
                return
            closure = self._closure(chosen)
            self.stats.solutions += 1
            yield closure, chosen
            return

        signal = context.signal_of[index]
        delta = context.delta_of[index]

        # include the event: must be conflict-free with the window and must
        # not create a gap (a causal predecessor outside the window that is
        # itself above a window event would break convexity)
        if (
            context.conf_pos[index] & chosen == 0
            and context.pred_pos[index] & succ_mask & ~chosen == 0
        ):
            ok = True
            if signal is not None:
                diff[signal] += delta
                if self._balance_violated(diff, signal, index + 1):
                    self.stats.pruned_balance += 1
                    ok = False
            if ok:
                added = []
                nz = nonzero_places
                for place, d in self.flows[index]:
                    before = place_delta[place]
                    after = before + d
                    place_delta[place] = after
                    if before == 0 and after != 0:
                        nz += 1
                    elif before != 0 and after == 0:
                        nz -= 1
                    added.append((place, d))
                yield from self._descend(
                    index + 1,
                    chosen | (1 << index),
                    succ_mask | self.succ_pos[index],
                    diff,
                    place_delta,
                    nz,
                )
                for place, d in added:
                    place_delta[place] -= d
            if signal is not None:
                diff[signal] -= delta

        # exclude the event
        if signal is not None and self._balance_violated(diff, signal, index + 1):
            self.stats.pruned_balance += 1
            return
        yield from self._descend(
            index + 1, chosen, succ_mask, diff, place_delta, nonzero_places
        )

    def _balance_violated(self, diff: List[int], signal: int, next_index: int) -> bool:
        value = diff[signal]
        lo = value  # future s+ events can only raise, s- only lower
        hi = value
        hi += self.context.suffix_plus[next_index][signal]
        lo -= self.context.suffix_minus[next_index][signal]
        return lo > 0 or hi < 0

    def _closure(self, chosen: int) -> int:
        # MCC(D) in position space (Definition 1; existence by Theorem 2
        # since windows are conflict-free by construction)
        tracer = get_tracer()
        started = perf_counter() if tracer.enabled else 0.0
        closure = chosen
        rest = chosen
        while rest:
            low = rest & -rest
            closure |= self.context.pred_pos[low.bit_length() - 1]
            rest ^= low
        if tracer.enabled:
            tracer.add_time("closure.window", perf_counter() - started)
            tracer.incr("closure.mcc_calls")
            tracer.incr("closure.mcc_hits")
        return closure
