"""The paper's constraint system as an explicit 0-1 ILP (Section 3).

This is the *un-refined* formulation that a standard solver receives — used
by the ablation benchmarks to quantify how much the partial-order search of
Section 4 buys:

* variables ``x'(e), x''(e)`` for every prefix event;
* **conflict constraints** (2): ``Code(x') = Code(x'')`` per signal;
* **compatibility constraints**: ``M_in + I x >= 0`` per condition of the
  prefix (on acyclic nets these characterise the Parikh vectors of
  executions exactly, cf. Section 2.2);
* **cut-off constraints** (3): ``x(e) = 0`` for cut-off events;
* **USC separating constraint**: ``M' <_lex M''`` rendered as the single
  k-ary comparison of Section 3 (safe STGs: binary weights) over the
  original-net marking expressions of Section 5.

The non-linear CSC/normalcy separating constraints are, as the paper
recommends, evaluated on candidate solutions rather than encoded.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.context import SolverContext
from repro.ilp.model import Constraint, LinearExpr, Problem
from repro.unfolding.occurrence_net import Prefix


def encode_usc_system(prefix: Prefix) -> Tuple[Problem, Callable]:
    """Build the full USC conflict system over 2q variables.

    Returns ``(problem, decode)`` where ``decode(assignment)`` yields the two
    event-index lists ``(events_a, events_b)`` of a solution.
    """
    if prefix.stg is None:
        raise ValueError("USC encoding needs an STG prefix")
    stg = prefix.stg
    q = prefix.num_events
    problem = Problem(
        num_vars=2 * q,
        names=[f"x'({prefix.event_name(e)})" for e in range(q)]
        + [f"x''({prefix.event_name(e)})" for e in range(q)],
    )

    def var_a(e: int) -> int:
        return e

    def var_b(e: int) -> int:
        return q + e

    # conflict constraints (2): per signal, equal signal change
    for s in range(len(stg.signals)):
        expr = LinearExpr()
        for e in range(q):
            signal, delta = stg.signal_change(prefix.events[e].transition)
            if signal == s:
                expr = expr + LinearExpr.term(var_a(e), delta)
                expr = expr + LinearExpr.term(var_b(e), -delta)
        if expr.coeffs:
            problem.add(Constraint.build(expr, "=="))

    # compatibility constraints: M_in(b) + sum in - sum out >= 0 per condition
    for side, var in (("a", var_a), ("b", var_b)):
        for condition in prefix.conditions:
            expr = LinearExpr.constant(1 if condition.pre_event is None else 0)
            if condition.pre_event is not None:
                expr = expr + LinearExpr.term(var(condition.pre_event))
            for consumer in condition.post_events:
                expr = expr + LinearExpr.term(var(consumer), -1)
            problem.add(Constraint.build(expr, ">="))

    # cut-off constraints (3)
    for e in prefix.cutoff_events:
        problem.fix_zero(var_a(e))
        problem.fix_zero(var_b(e))

    # USC separating constraint: M' <_lex M'' over original places (safe: k=1)
    lex = LinearExpr()
    for place in range(prefix.net.num_places):
        weight = 1 << place
        const, coeff_a, coeff_b = _marking_terms(prefix, place)
        # M''(p) - M'(p), weighted
        for e, c in coeff_b.items():
            lex = lex + LinearExpr.term(var_b(e), weight * c)
        for e, c in coeff_a.items():
            lex = lex + LinearExpr.term(var_a(e), -weight * c)
        # constants cancel between the two copies
    problem.add(Constraint.build(lex, ">=", 1))

    def decode(assignment: List[int]) -> Tuple[List[int], List[int]]:
        events_a = [e for e in range(q) if assignment[var_a(e)]]
        events_b = [e for e in range(q) if assignment[var_b(e)]]
        return events_a, events_b

    return problem, decode


def _marking_terms(prefix: Prefix, place: int):
    """``M(place)`` as (const, {event: coeff}) — the Section 5 expression."""
    const = 0
    coeffs = {}
    for b in prefix.conditions_by_place.get(place, ()):
        condition = prefix.conditions[b]
        if condition.pre_event is None:
            const += 1
        else:
            coeffs[condition.pre_event] = coeffs.get(condition.pre_event, 0) + 1
        for consumer in condition.post_events:
            coeffs[consumer] = coeffs.get(consumer, 0) - 1
    return const, dict(coeffs), dict(coeffs)


def check_usc_ilp(
    prefix: Prefix, node_budget: Optional[int] = None
) -> Tuple[bool, Optional[Tuple[List[int], List[int]]], "SolverStats"]:
    """USC check via the generic solver — the ablation baseline.

    Returns ``(holds, witness_events, stats)``.
    """
    from repro.ilp.solver import BranchAndBoundSolver, SolverOptions

    problem, decode = encode_usc_system(prefix)
    solver = BranchAndBoundSolver(problem, SolverOptions(node_budget=node_budget))
    solution = solver.solve()
    if solution is None:
        return True, None, solver.stats
    return False, decode(solution), solver.stats
