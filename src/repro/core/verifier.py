"""High-level USC / CSC / normalcy verification (the paper's tool interface).

Each checker takes an STG (or a pre-built prefix), builds the finite complete
prefix if needed, runs the pair branch-and-bound of :mod:`repro.core.search`
and returns a structured report with a witness — including execution paths
to the conflicting markings, which the paper highlights as a benefit over
state-graph methods.

The CSC checker implements the paper's two-stage strategy: search for USC
conflict candidates first (the linear system), and test the non-linear
separating constraint ``Out(M') != Out(M'')`` directly on the STG for each
candidate solution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro import obs
from repro.core.context import SolverContext
from repro.core.search import MODE_EQUAL, MODE_LEQ, PairSearch, SearchStats
from repro.petri.marking import Marking
from repro.stg.stg import STG
from repro.unfolding.occurrence_net import Prefix
from repro.unfolding.unfolder import UnfoldingOptions, unfold


@dataclass
class ConflictWitness:
    """A pair of configurations witnessing a coding conflict."""

    kind: str                       # "usc" or "csc"
    code_a: Tuple[int, ...]         # signal-change vectors (Code - v0)
    code_b: Tuple[int, ...]
    marking_a: Marking
    marking_b: Marking
    out_a: FrozenSet[str]
    out_b: FrozenSet[str]
    trace_a: List[str]
    trace_b: List[str]

    def describe(self) -> str:
        return (
            f"{self.kind.upper()} conflict: "
            f"Out={{{', '.join(sorted(self.out_a))}}} after "
            f"[{', '.join(self.trace_a)}] vs "
            f"Out={{{', '.join(sorted(self.out_b))}}} after "
            f"[{', '.join(self.trace_b)}]"
        )


@dataclass
class CodingReport:
    """Outcome of a USC or CSC check."""

    property_name: str              # "USC" or "CSC"
    holds: bool
    witness: Optional[ConflictWitness]
    usc_only_candidates: int        # USC conflicts rejected by the Out test
    prefix_stats: Dict[str, int]
    search_stats: SearchStats
    elapsed: float

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class SignalVerdict:
    """Per-signal outcome of the IP normalcy check."""

    signal: str
    p_normal: bool
    n_normal: bool
    p_witness: Optional[ConflictWitness] = None
    n_witness: Optional[ConflictWitness] = None

    @property
    def normal(self) -> bool:
        return self.p_normal or self.n_normal


@dataclass
class NormalcyIPReport:
    """Outcome of the IP normalcy check (paper Section 6)."""

    per_signal: Dict[str, SignalVerdict]
    prefix_stats: Dict[str, int]
    search_stats: SearchStats
    elapsed: float

    @property
    def normal(self) -> bool:
        return all(v.normal for v in self.per_signal.values())

    def violating_signals(self) -> List[str]:
        return [s for s, v in self.per_signal.items() if not v.normal]


def _prepare(
    source: Union[STG, Prefix], unfolding_options: Optional[UnfoldingOptions]
) -> SolverContext:
    prefix = source if isinstance(source, Prefix) else unfold(source, unfolding_options)
    with obs.trace("unfold.context"):
        return SolverContext(prefix)


def _flush_search_stats(stats: SearchStats) -> None:
    """Mirror one search run's counters into :mod:`repro.obs` (traced only)."""
    tracer = obs.get_tracer()
    if not tracer.enabled:
        return
    tracer.incr("search.nodes", stats.nodes)
    tracer.incr("search.leaves", stats.leaves)
    tracer.incr("search.pruned_balance", stats.pruned_balance)
    tracer.incr("search.pruned_structure", stats.pruned_structure)
    tracer.incr("search.solutions", stats.solutions)


def _make_search(
    context: SolverContext,
    kind: str,
    mode: str = MODE_EQUAL,
    nested_only: bool = False,
    node_budget: Optional[int] = None,
    workers: int = 0,
    shards: Optional[int] = None,
    capacities=None,
    movable_places=None,
):
    """Build the sequential search, or its frontier-split parallel front end
    when the caller asked for workers or an explicit shard split (both have
    the same ``solutions()`` / ``stats`` surface — docs/parallelism.md).

    Like the clique ``capacities``, the refinement ``movable_places``
    classification tightens the sequential searches only — snapshots do not
    carry it, so the parallel path simply prunes later."""
    if workers > 0 or (shards is not None and shards > 1):
        from repro.core.parallel import KIND_PAIRS, KIND_WINDOW, ParallelSearch

        assert kind in (KIND_PAIRS, KIND_WINDOW)
        return ParallelSearch(
            context,
            kind=kind,
            mode=mode,
            nested_only=nested_only,
            node_budget=node_budget,
            workers=workers,
            shards=shards,
        )
    if kind == "window":
        from repro.core.window import WindowSearch

        return WindowSearch(
            context,
            node_budget=node_budget,
            capacities=capacities,
            movable_places=movable_places,
        )
    return PairSearch(
        context,
        mode=mode,
        nested_only=nested_only,
        node_budget=node_budget,
        capacities=capacities,
        movable_places=movable_places,
    )


def _facts_dcf(context: SolverContext) -> bool:
    """Does the fact engine prove dynamic conflict-freeness (Proposition 1)?

    Used by the ``use_facts=`` path to license the nested-formulation
    prescreens when :func:`_should_nest`'s purely structural test fails.
    The proof is the invariant-exclusion coverage of every structural
    conflict pair (docs/analysis.md), computed once per STG content hash.
    """
    from repro.analysis import analyze

    return analyze(context.stg).proves_dynamic_conflict_freeness()


def _run_refinement(context: SolverContext, nest: bool, cert_cache=None):
    """Run the :mod:`repro.refine` CEGAR prescreen when Proposition 1
    licenses it (structural nesting or a facts-proven DCF certificate).

    Returns ``(refuted, movable_places)``.  ``movable_places`` feeds the
    in-search tightening and is only handed out under the *structural*
    nesting licence — the searches then run in nested mode, which is the
    regime the refinement certificate's bounds are proved for.

    ``cert_cache`` is an optional :class:`repro.engine.cache.ResultCache`
    whose refine-cert domain the prescreen replays verified dual bounds
    from (always re-checked exactly) and persists fresh ones to.
    """
    if not (nest or _facts_dcf(context)):
        return False, None
    from repro.core.prescreen import refinement_prescreen

    with obs.trace("refine.prescreen"):
        verdict, outcome = refinement_prescreen(context, cert_store=cert_cache)
    movable = outcome.movable_places if nest and not outcome.refuted else None
    return verdict is False, movable


def _clique_capacities(
    context: SolverContext, use_facts: bool, workers: int, shards: Optional[int]
):
    """Capacity tables for the sequential searches (``use_facts=`` only).

    The parallel driver ships :class:`SolverSnapshot` slices that do not
    carry the tables, so the facts-tightened bounds apply to the sequential
    path only — verdicts and witnesses are identical either way, the
    parallel run just prunes later.
    """
    if not use_facts or workers > 0 or (shards is not None and shards > 1):
        return None
    from repro.analysis import conflict_clique_capacities

    with obs.trace("analysis.cliques"):
        return conflict_clique_capacities(context)


def _should_nest(context: SolverContext, nested: Optional[bool]) -> bool:
    """Resolve the Proposition 1 switch.

    ``None`` (auto) applies the optimisation only under the *structural*
    sufficient condition for dynamic conflict-freeness: no place of the
    original net has two consumers (e.g. marked graphs).  Passing ``True``
    asserts the caller knows the STG is dynamically conflict-free.
    """
    if nested is not None:
        return nested
    net = context.prefix.net
    return all(
        len(net.place_postset(p)) <= 1 for p in range(net.num_places)
    )


def check_usc(
    source: Union[STG, Prefix],
    first_only: bool = True,
    nested: Optional[bool] = None,
    use_window_search: bool = True,
    prescreen: Optional[str] = "kernel",
    node_budget: Optional[int] = None,
    workers: int = 0,
    shards: Optional[int] = None,
    use_facts: bool = False,
    use_refinement: bool = False,
    cert_cache=None,
    unfolding_options: Optional[UnfoldingOptions] = None,
) -> CodingReport:
    """Check the Unique State Coding property on the unfolding prefix.

    On dynamically conflict-free STGs (``nested`` True or auto-detected) the
    check runs the single-vector window search of :mod:`repro.core.window`;
    otherwise, or when ``use_window_search`` is off (the ablation switch),
    the general pair search.

    ``prescreen`` selects a sound relaxation pre-pass for the nested case:
    ``"kernel"`` (default; sub-millisecond exact linear algebra), ``"lp"``
    (the rational-simplex relaxation — stronger but much costlier), or
    ``None``.  A conclusive prescreen skips the search entirely.

    ``workers`` / ``shards`` enable the frontier-split parallel search of
    :mod:`repro.core.parallel` (0/None: sequential; verdicts and witnesses
    are identical either way — docs/parallelism.md).

    ``use_facts`` consults the :mod:`repro.analysis` fact engine: a proof of
    dynamic conflict-freeness licenses the nested-formulation prescreen even
    when the structural test of :func:`_should_nest` fails, and conflict-
    clique capacity tables tighten the balance-pruning intervals of the
    sequential searches.  Both only prune — verdicts and witnesses are
    byte-identical to the ``use_facts=False`` path (pinned by
    ``tests/analysis``).

    ``use_refinement`` runs the :mod:`repro.refine` CEGAR prescreen (when
    dynamic conflict-freeness licenses it): a refuted conflict system
    settles the check with a replayable cut certificate and no search at
    all; otherwise the certified-immovable places tighten the sequential
    searches.  Verdicts, witnesses and candidate counts are byte-identical
    either way (pinned by ``tests/refine``).
    """
    started = time.perf_counter()
    context = _prepare(source, unfolding_options)
    nest = _should_nest(context, nested)
    witness = None

    prescreen_licensed = nest
    if use_facts and not nest and prescreen is not None:
        prescreen_licensed = _facts_dcf(context)

    if prescreen_licensed and prescreen is not None:
        from repro.core.prescreen import kernel_prescreen, lp_prescreen

        screen = {"kernel": kernel_prescreen, "lp": lp_prescreen}[prescreen]
        with obs.trace("search.prescreen"):
            verdict = screen(context)
        if verdict is False:
            return CodingReport(
                property_name="USC",
                holds=True,
                witness=None,
                usc_only_candidates=0,
                prefix_stats=context.prefix.stats(),
                search_stats=SearchStats(),
                elapsed=time.perf_counter() - started,
            )

    movable = None
    if use_refinement:
        refuted, movable = _run_refinement(context, nest, cert_cache)
        if refuted:
            return CodingReport(
                property_name="USC",
                holds=True,
                witness=None,
                usc_only_candidates=0,
                prefix_stats=context.prefix.stats(),
                search_stats=SearchStats(),
                elapsed=time.perf_counter() - started,
            )

    capacities = _clique_capacities(context, use_facts, workers, shards)
    if nest and use_window_search:
        search = _make_search(
            context,
            "window",
            node_budget=node_budget,
            workers=workers,
            shards=shards,
            capacities=capacities,
            movable_places=movable,
        )
        with obs.trace("search.window"):
            for closure_mask, window_mask in search.solutions():
                mask_b = closure_mask
                mask_a = closure_mask & ~window_mask
                witness = _witness(
                    "usc",
                    context,
                    mask_a,
                    mask_b,
                    context.marking_of(mask_a),
                    context.marking_of(mask_b),
                )
                if first_only:
                    break
        stats = search.stats
    else:
        search = _make_search(
            context,
            "pairs",
            mode=MODE_EQUAL,
            nested_only=nest,
            node_budget=node_budget,
            workers=workers,
            shards=shards,
            capacities=capacities,
            movable_places=movable,
        )
        with obs.trace("search.pairs"):
            for mask_a, mask_b in search.solutions():
                mark_a = context.marking_of(mask_a)
                mark_b = context.marking_of(mask_b)
                if mark_a == mark_b:
                    continue  # separating constraint M' != M''
                witness = _witness("usc", context, mask_a, mask_b, mark_a, mark_b)
                if first_only:
                    break
        stats = search.stats

    _flush_search_stats(stats)
    return CodingReport(
        property_name="USC",
        holds=witness is None,
        witness=witness,
        usc_only_candidates=0,
        prefix_stats=context.prefix.stats(),
        search_stats=stats,
        elapsed=time.perf_counter() - started,
    )


def check_csc(
    source: Union[STG, Prefix],
    first_only: bool = True,
    nested: Optional[bool] = None,
    use_window_search: bool = True,
    node_budget: Optional[int] = None,
    workers: int = 0,
    shards: Optional[int] = None,
    use_facts: bool = False,
    use_refinement: bool = False,
    cert_cache=None,
    unfolding_options: Optional[UnfoldingOptions] = None,
) -> CodingReport:
    """Check the Complete State Coding property on the unfolding prefix.

    Uses the paper's strategy: enumerate USC-conflict candidates from the
    linear system, then filter them through the non-linear separating
    constraint ``Out(M') != Out(M'')`` evaluated directly on the STG.

    On dynamically conflict-free STGs a window-search pre-pass settles the
    common cases cheaply: no window at all means USC (hence CSC) holds, and
    a window whose minimal embedding already has differing ``Out`` sets is a
    CSC witness.  Only when every window is USC-but-not-CSC in its minimal
    embedding does the checker fall back to the general pair search (other
    embeddings of the same window reach different marking pairs).

    ``use_facts`` adds the fact-engine refinements of :func:`check_usc`:
    under a (structural or facts-proven) dynamic conflict-freeness licence
    a conclusive kernel prescreen settles CSC outright — no USC conflict
    means no CSC conflict — and clique capacity tables tighten the
    sequential searches.  Verdicts and witnesses stay byte-identical.

    ``use_refinement`` adds the :mod:`repro.refine` CEGAR prescreen under
    the same licence: a refuted conflict system means no USC conflict,
    hence CSC holds with zero candidates; otherwise the certified-immovable
    places tighten the sequential searches.  Verdicts, witnesses and
    candidate counts stay byte-identical (pinned by ``tests/refine``).
    """
    started = time.perf_counter()
    context = _prepare(source, unfolding_options)
    nest = _should_nest(context, nested)
    witness = None
    usc_only = 0
    stats = None

    if use_facts and (nest or _facts_dcf(context)):
        from repro.core.prescreen import kernel_prescreen

        with obs.trace("search.prescreen"):
            verdict = kernel_prescreen(context)
        if verdict is False:
            return CodingReport(
                property_name="CSC",
                holds=True,
                witness=None,
                usc_only_candidates=0,
                prefix_stats=context.prefix.stats(),
                search_stats=SearchStats(),
                elapsed=time.perf_counter() - started,
            )

    movable = None
    if use_refinement:
        refuted, movable = _run_refinement(context, nest, cert_cache)
        if refuted:
            return CodingReport(
                property_name="CSC",
                holds=True,
                witness=None,
                usc_only_candidates=0,
                prefix_stats=context.prefix.stats(),
                search_stats=SearchStats(),
                elapsed=time.perf_counter() - started,
            )

    capacities = _clique_capacities(context, use_facts, workers, shards)
    if nest and use_window_search:
        window_search = _make_search(
            context,
            "window",
            node_budget=node_budget,
            workers=workers,
            shards=shards,
            capacities=capacities,
            movable_places=movable,
        )
        saw_window = False
        with obs.trace("search.window"):
            for closure_mask, window_mask in window_search.solutions():
                saw_window = True
                mask_b = closure_mask
                mask_a = closure_mask & ~window_mask
                mark_a = context.marking_of(mask_a)
                mark_b = context.marking_of(mask_b)
                out_a = context.out_of(mark_a)
                out_b = context.out_of(mark_b)
                if out_a == out_b:
                    usc_only += 1
                    continue
                witness = _witness(
                    "csc", context, mask_a, mask_b, mark_a, mark_b, out_a, out_b
                )
                if first_only:
                    break
        stats = window_search.stats
        if witness is None and not saw_window:
            # no USC conflict at all: CSC holds, no fallback needed
            _flush_search_stats(stats)
            return CodingReport(
                property_name="CSC",
                holds=True,
                witness=None,
                usc_only_candidates=0,
                prefix_stats=context.prefix.stats(),
                search_stats=stats,
                elapsed=time.perf_counter() - started,
            )

    if witness is None:
        search = _make_search(
            context,
            "pairs",
            mode=MODE_EQUAL,
            nested_only=nest,
            node_budget=node_budget,
            workers=workers,
            shards=shards,
            capacities=capacities,
            movable_places=movable,
        )
        with obs.trace("search.pairs"):
            for mask_a, mask_b in search.solutions():
                mark_a = context.marking_of(mask_a)
                mark_b = context.marking_of(mask_b)
                if mark_a == mark_b:
                    continue
                out_a = context.out_of(mark_a)
                out_b = context.out_of(mark_b)
                if out_a == out_b:
                    usc_only += 1
                    continue  # a USC conflict that is not a CSC conflict
                witness = _witness(
                    "csc", context, mask_a, mask_b, mark_a, mark_b, out_a, out_b
                )
                if first_only:
                    break
        stats = search.stats if stats is None else _merge_stats(stats, search.stats)

    _flush_search_stats(stats)
    return CodingReport(
        property_name="CSC",
        holds=witness is None,
        witness=witness,
        usc_only_candidates=usc_only,
        prefix_stats=context.prefix.stats(),
        search_stats=stats,
        elapsed=time.perf_counter() - started,
    )


def _merge_stats(a: SearchStats, b: SearchStats) -> SearchStats:
    return SearchStats(
        nodes=a.nodes + b.nodes,
        leaves=a.leaves + b.leaves,
        pruned_balance=a.pruned_balance + b.pruned_balance,
        pruned_structure=a.pruned_structure + b.pruned_structure,
        solutions=a.solutions + b.solutions,
    )


def check_normalcy(
    source: Union[STG, Prefix],
    signals: Optional[List[str]] = None,
    node_budget: Optional[int] = None,
    workers: int = 0,
    shards: Optional[int] = None,
    unfolding_options: Optional[UnfoldingOptions] = None,
) -> NormalcyIPReport:
    """Check normalcy of the given (default: all non-input) signals.

    Solves the system (5) of the paper: pairs with ``Code(x') <= Code(x'')``
    are enumerated and the ``Nxt_z`` comparisons are evaluated on the final
    markings.  The direction ``R_z`` is not fixed in advance: the search
    records violations of both directions and a signal is declared abnormal
    once both have been seen (the lazy-``R_z`` refinement of Section 6).
    """
    started = time.perf_counter()
    context = _prepare(source, unfolding_options)
    stg = context.stg
    targets = signals if signals is not None else list(stg.non_input_signals)
    verdicts = {
        z: SignalVerdict(signal=z, p_normal=True, n_normal=True) for z in targets
    }
    search = _make_search(
        context,
        "pairs",
        mode=MODE_LEQ,
        nested_only=False,
        node_budget=node_budget,
        workers=workers,
        shards=shards,
    )
    unresolved = set(targets)
    with obs.trace("search.pairs"):
        for mask_a, mask_b in search.solutions():
            mark_a = context.marking_of(mask_a)
            mark_b = context.marking_of(mask_b)
            if mark_a == mark_b:
                continue
            change_a = context.code_change_of(mask_a)
            change_b = context.code_change_of(mask_b)
            for z in list(unresolved):
                verdict = verdicts[z]
                nxt_a = context.nxt_of(mark_a, _code(context, change_a), z)
                nxt_b = context.nxt_of(mark_b, _code(context, change_b), z)
                if nxt_a > nxt_b and verdict.p_normal:
                    verdict.p_normal = False
                    verdict.p_witness = _witness(
                        "normalcy-p", context, mask_a, mask_b, mark_a, mark_b
                    )
                elif nxt_a < nxt_b and verdict.n_normal:
                    verdict.n_normal = False
                    verdict.n_witness = _witness(
                        "normalcy-n", context, mask_a, mask_b, mark_a, mark_b
                    )
                if not verdict.p_normal and not verdict.n_normal:
                    unresolved.discard(z)
            if not unresolved:
                break  # every signal already fails both directions
    _flush_search_stats(search.stats)
    return NormalcyIPReport(
        per_signal=verdicts,
        prefix_stats=context.prefix.stats(),
        search_stats=search.stats,
        elapsed=time.perf_counter() - started,
    )


def _code(context: SolverContext, change: Tuple[int, ...]) -> Tuple[int, ...]:
    """Absolute code ``v0 + v_C`` (needs the initial code of the STG)."""
    return tuple(v + c for v, c in zip(context.initial_code(), change))


def _witness(
    kind: str,
    context: SolverContext,
    mask_a: int,
    mask_b: int,
    mark_a: Marking,
    mark_b: Marking,
    out_a: Optional[FrozenSet[str]] = None,
    out_b: Optional[FrozenSet[str]] = None,
) -> ConflictWitness:
    return ConflictWitness(
        kind=kind,
        code_a=context.code_change_of(mask_a),
        code_b=context.code_change_of(mask_b),
        marking_a=mark_a,
        marking_b=mark_b,
        out_a=out_a if out_a is not None else context.out_of(mark_a),
        out_b=out_b if out_b is not None else context.out_of(mark_b),
        trace_a=context.trace_of(mask_a),
        trace_b=context.trace_of(mask_b),
    )
