"""Frontier-split intra-check parallelism for the branch-and-bound searches.

One hard USC/CSC/normalcy check is a single walk of one search tree — the
portfolio engine of :mod:`repro.engine` can race *different* checks but
cannot make one check faster.  This module splits the tree itself:

1. **Frontier enumeration** (parent process): descend the first ``d``
   positions with the normal search machinery — order propagation and
   balance pruning included, so dead prefixes are never shipped — and
   collect the surviving partial assignments as picklable shards
   (:class:`repro.core.search.SearchShard` /
   :class:`repro.core.window.WindowShard`).  The frontier depth is grown
   level by level until there are enough shards to feed the workers.
2. **Fan-out**: each shard plus a :class:`repro.core.context.SolverSnapshot`
   is a self-contained work unit, dispatched over the existing
   :class:`repro.engine.pool.WorkerPool` runner registry (runner name
   :data:`RUNNER_NAME`).  Workers run only the *linear* part of the system
   — enumerate candidate masks in their subtree — and return them with
   their :class:`SearchStats`; the non-linear separating constraints
   (markings, ``Out`` sets, ``Nxt``) are evaluated by the caller, which
   holds the full context.
3. **Deterministic merge**: results are consumed strictly in shard order
   (out-of-order completions are buffered), and shards are enumerated in
   descent order, so the concatenated candidate stream — and therefore any
   witness derived from it — is byte-identical with the sequential search.
   Early exit (the caller stops consuming after a witness) cancels every
   unfinished shard via :meth:`WorkerPool.shutdown`.

Degradation contract: with ``workers <= 1`` no processes are forked — the
shards (if any were requested) run inline, in order, through the same merge
path, and with no shard request at all the driver is a plain delegate to the
sequential search.  On platforms without ``fork`` the pool itself degrades
inline with the same semantics.

Stats contract: frontier nodes are counted once by the parent during
splitting and shard nodes once by whichever worker owns the subtree
(frontier emission points are never double-counted — see
:meth:`PairSearch.frontier_from`), so the merged :attr:`ParallelSearch.stats`
of a fully consumed enumeration equals the sequential totals exactly.
``node_budget`` applies per walk — to the frontier split and to each shard
independently; a worker that exhausts it ships the limit back and the
driver re-raises :class:`SolverLimitError` at the shard's merge point.

Observability (all disabled-by-default, parent side only): counters
``search.shards`` (shipped), ``search.shards_pruned`` (dead prefixes killed
during frontier enumeration), ``search.cancelled`` (shards abandoned after
early exit); a ``search.shard`` span around each in-order wait-and-merge
(nested inside the checker's ``search.*`` span, so phase accounting never
double-counts it); and a ``pool.shard_time`` timer accumulating the
workers' own wall clock (deliberately outside the ``solver`` phase — it
overlaps the parent's span when runs are truly parallel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.core.context import SolverContext, SolverSnapshot
from repro.core.search import (
    MODE_EQUAL,
    PairSearch,
    SearchShard,
    SearchStats,
)
from repro.core.window import WindowSearch, WindowShard
from repro.engine.pool import Task, WorkerPool, register_runner
from repro.exceptions import SolverError, SolverLimitError

#: Search tree being split: the pair enumeration or the window enumeration.
KIND_PAIRS = "pairs"
KIND_WINDOW = "window"

#: Registered :mod:`repro.engine.pool` runner executing one shard.
RUNNER_NAME = "search-shard"

#: Default shard oversubscription: shards per worker, so an unlucky split
#: (one heavy subtree) still keeps the other workers busy.
SHARDS_PER_WORKER = 4

AnyShard = Union[SearchShard, WindowShard]


@dataclass(frozen=True)
class ShardTask:
    """Picklable work unit: one shard of one search, plus the tables."""

    snapshot: SolverSnapshot
    kind: str
    mode: str
    nested_only: bool
    require_marking_change: bool
    node_budget: Optional[int]
    index: int
    shard: AnyShard


@dataclass
class ShardResult:
    """What one shard produced: its candidate masks, stats, and whether the
    walk died on the node budget (``limit`` carries the message)."""

    index: int
    solutions: List[Tuple[int, int]]
    stats: SearchStats
    limit: Optional[str] = None


def _build_search(
    context: Union[SolverContext, SolverSnapshot],
    kind: str,
    mode: str,
    nested_only: bool,
    require_marking_change: bool,
    node_budget: Optional[int],
) -> Union[PairSearch, WindowSearch]:
    if kind == KIND_WINDOW:
        return WindowSearch(
            context,
            require_marking_change=require_marking_change,
            node_budget=node_budget,
        )
    if kind == KIND_PAIRS:
        return PairSearch(
            context,
            mode=mode,
            nested_only=nested_only,
            node_budget=node_budget,
        )
    raise SolverError(f"unknown search kind {kind!r}")


def _run_search_shard(payload: ShardTask) -> ShardResult:
    """Pool runner: exhaust one shard's subtree, return raw candidates."""
    search = _build_search(
        payload.snapshot,
        payload.kind,
        payload.mode,
        payload.nested_only,
        payload.require_marking_change,
        payload.node_budget,
    )
    solutions: List[Tuple[int, int]] = []
    limit: Optional[str] = None
    try:
        for solution in search.solutions_from(payload.shard):  # type: ignore[arg-type]
            solutions.append(solution)
    except SolverLimitError as exc:
        limit = str(exc)
    return ShardResult(
        index=payload.index,
        solutions=solutions,
        stats=search.stats,
        limit=limit,
    )


register_runner(RUNNER_NAME, _run_search_shard)


class ParallelSearch:
    """Drop-in parallel front end for :class:`PairSearch` / :class:`WindowSearch`.

    Exposes the same ``solutions()`` / ``stats`` surface as the sequential
    searches, so the checkers in :mod:`repro.core.verifier` can swap it in
    without touching their candidate-filtering loops.

    ``workers``
        Worker processes to fork; ``<= 1`` never forks (inline execution).
    ``shards``
        Target frontier size; default ``workers * SHARDS_PER_WORKER`` (or 1
        when not parallel, which collapses to the plain sequential walk).
    """

    def __init__(
        self,
        context: SolverContext,
        kind: str = KIND_PAIRS,
        mode: str = MODE_EQUAL,
        nested_only: bool = False,
        require_marking_change: bool = True,
        node_budget: Optional[int] = None,
        workers: int = 0,
        shards: Optional[int] = None,
    ):
        if not isinstance(context, SolverContext):
            raise SolverError(
                "ParallelSearch needs the full SolverContext (it snapshots "
                "the tables for the workers itself)"
            )
        self.context = context
        self.kind = kind
        self.mode = mode
        self.nested_only = nested_only
        self.require_marking_change = require_marking_change
        self.node_budget = node_budget
        self.workers = max(0, workers)
        if shards is not None and shards < 1:
            raise SolverError("shards must be >= 1")
        self.target_shards = (
            shards
            if shards is not None
            else (self.workers * SHARDS_PER_WORKER if self.workers > 1 else 1)
        )
        self.stats = SearchStats()
        self._local = _build_search(
            context,
            kind,
            mode,
            nested_only,
            require_marking_change,
            node_budget,
        )
        # the frontier walk and the inline path flush into the merged stats
        self._local.stats = self.stats

    # -- public API -------------------------------------------------------------

    def solutions(self) -> Iterator[Tuple[int, int]]:
        """Candidate masks in the sequential search's order (see module doc)."""
        if self.target_shards <= 1:
            return self._local.solutions()
        return self._solutions_split()

    # -- frontier splitting ------------------------------------------------------

    def _split_frontier(self) -> List[AnyShard]:
        """Grow the frontier level by level until it can feed the workers.

        Each level re-splits every shard one position deeper, which walks
        only the new internal nodes (already-deep shards pass through
        untouched), so the total node count stays identical to one
        sequential descent over the same region.
        """
        search = self._local
        num_vars = self.context.num_vars
        frontier: List[AnyShard] = [search.root_shard()]
        depth = 0
        while depth < num_vars and len(frontier) < self.target_shards:
            depth += 1
            level: List[AnyShard] = []
            for shard in frontier:
                level.extend(search.frontier_from(shard, depth))  # type: ignore[arg-type]
            if not level:
                return []  # the whole tree was pruned during splitting
            frontier = level
        return frontier

    def _solutions_split(self) -> Iterator[Tuple[int, int]]:
        tracer = obs.get_tracer()
        pruned_before = self.stats.pruned_balance
        frontier = self._split_frontier()
        if tracer.enabled:
            tracer.incr("search.shards", len(frontier))
            tracer.incr(
                "search.shards_pruned",
                self.stats.pruned_balance - pruned_before,
            )
        if not frontier:
            return
        snapshot = self.context.snapshot()
        pool = WorkerPool(
            max_workers=self.workers if self.workers > 1 else 0
        )
        buffered: Dict[int, ShardResult] = {}
        total = len(frontier)
        next_index = 0
        try:
            for index, shard in enumerate(frontier):
                pool.submit(
                    Task(
                        task_id=f"shard-{index}",
                        group="intra-check",
                        runner=RUNNER_NAME,
                        payload=ShardTask(
                            snapshot=snapshot,
                            kind=self.kind,
                            mode=self.mode,
                            nested_only=self.nested_only,
                            require_marking_change=self.require_marking_change,
                            node_budget=self.node_budget,
                            index=index,
                            shard=shard,
                        ),
                    )
                )
            outcomes = pool.outcomes()
            while next_index < total:
                # the span covers waiting for (and merging) the next in-order
                # shard — the pipeline stall the merge discipline costs; the
                # workers' own wall clock lands in the pool.shard_time timer
                if tracer.enabled:
                    with tracer.span("search.shard"):
                        result = self._await(next_index, buffered, outcomes)
                        self.stats.merge(result.stats)
                else:
                    result = self._await(next_index, buffered, outcomes)
                    self.stats.merge(result.stats)
                if result.limit is not None:
                    raise SolverLimitError(result.limit)
                for solution in result.solutions:
                    yield solution
                next_index += 1
        finally:
            remaining = total - next_index
            if remaining > 0 and tracer.enabled:
                tracer.incr("search.cancelled", remaining)
            pool.shutdown()

    @staticmethod
    def _await(
        index: int,
        buffered: Dict[int, ShardResult],
        outcomes: Iterator,
    ) -> ShardResult:
        """Block until shard ``index`` has reported, buffering later shards."""
        result = buffered.pop(index, None)
        while result is None:
            outcome = next(outcomes, None)
            if outcome is None:
                raise SolverError(
                    f"worker pool drained with shard {index} unreported"
                )
            if outcome.status != "ok":
                raise SolverError(
                    f"search shard {outcome.task_id} failed "
                    f"({outcome.status}): {outcome.error or 'no detail'}"
                )
            obs.add_time("pool.shard_time", outcome.elapsed)
            if outcome.value.index == index:
                result = outcome.value
            else:
                buffered[outcome.value.index] = outcome.value
        return result
