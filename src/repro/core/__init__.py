"""The paper's contribution: coding-conflict detection by integer programming.

Given a finite complete prefix of an STG's unfolding, USC/CSC conflicts and
normalcy violations are characterised as systems of constraints over pairs of
0-1 Parikh vectors of configurations (paper Section 3) and solved by a
branch-and-bound search that only ever visits ``Unf``-compatible vectors,
using the minimal-compatible-closure propagation of Theorems 1-2 and linear
signal-balance pruning (Section 4).
"""

from repro.core.context import SolverContext
from repro.core.closure import minimal_compatible_closure, has_compatible_closure
from repro.core.search import PairSearch, SearchStats
from repro.core.verifier import (
    check_usc,
    check_csc,
    check_normalcy,
    CodingReport,
    NormalcyIPReport,
    ConflictWitness,
)
from repro.core.reachability import (
    marking_expression,
    find_configuration,
    check_deadlock,
    LinearConstraint,
)
from repro.core.prescreen import kernel_prescreen, lp_prescreen

__all__ = [
    "SolverContext",
    "minimal_compatible_closure",
    "has_compatible_closure",
    "PairSearch",
    "SearchStats",
    "check_usc",
    "check_csc",
    "check_normalcy",
    "CodingReport",
    "NormalcyIPReport",
    "ConflictWitness",
    "marking_expression",
    "find_configuration",
    "check_deadlock",
    "LinearConstraint",
    "kernel_prescreen",
    "lp_prescreen",
]
