"""Shared solver context: the prefix viewed as a constraint system.

Collects everything the branch-and-bound searches need:

* the *free* events (cut-off constraints (3) of the paper applied: cut-off
  events and their causal successors are eliminated from the variable set);
* a topological branching order, so that every prefix of decisions is a
  potential configuration (downward closure comes for free);
* per-event signal contributions and suffix count tables for the
  signal-balance pruning of the conflict constraint (2);
* final-marking and ``Out``-set evaluation for candidate solutions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.exceptions import SolverError
from repro.petri.marking import Marking
from repro.stg.nextstate import enabled_outputs, next_state_value
from repro.unfolding.occurrence_net import Prefix
from repro.unfolding.relations import PrefixRelations


class SolverContext:
    """Precomputed views of an STG prefix for the IP conflict searches."""

    def __init__(self, prefix: Prefix, relations: Optional[PrefixRelations] = None):
        if prefix.stg is None:
            raise SolverError("coding-conflict detection needs an STG prefix")
        self.prefix = prefix
        self.stg = prefix.stg
        self.relations = relations or PrefixRelations(prefix)
        self.num_signals = len(self.stg.signals)

        # cut-off constraints: x(e) = 0 for cut-offs; their successors can
        # then never be 1 either, so both are dropped from the variable set
        free_mask = self.relations.free_events_mask()
        order = [
            e for e in self.relations.topological_order() if (free_mask >> e) & 1
        ]
        self.order: List[int] = order
        self.num_vars = len(order)
        self.position: Dict[int, int] = {e: i for i, e in enumerate(order)}

        # per-position relation masks re-indexed over *positions* so the
        # search can keep its state in plain integers
        self.pred_pos: List[int] = []
        self.conf_pos: List[int] = []
        for e in order:
            self.pred_pos.append(self._remap(self.relations.pred[e]))
            self.conf_pos.append(self._remap(self.relations.conf[e]))

        # signal contribution of each position: (signal_index, +1/-1/0)
        self.signal_of: List[Optional[int]] = []
        self.delta_of: List[int] = []
        for e in order:
            signal, delta = self.stg.signal_change(prefix.events[e].transition)
            self.signal_of.append(signal)
            self.delta_of.append(delta)

        # suffix_count[i][s]: number of events at positions >= i labelled by
        # signal s — the interval half-width for the balance pruning;
        # suffix_plus / suffix_minus split it by edge direction, which gives
        # the asymmetric (tighter) bound available in nested-pair mode
        self.suffix_count: List[List[int]] = [
            [0] * self.num_signals for _ in range(self.num_vars + 1)
        ]
        self.suffix_plus: List[List[int]] = [
            [0] * self.num_signals for _ in range(self.num_vars + 1)
        ]
        self.suffix_minus: List[List[int]] = [
            [0] * self.num_signals for _ in range(self.num_vars + 1)
        ]
        for i in range(self.num_vars - 1, -1, -1):
            row = list(self.suffix_count[i + 1])
            plus = list(self.suffix_plus[i + 1])
            minus = list(self.suffix_minus[i + 1])
            signal = self.signal_of[i]
            if signal is not None:
                row[signal] += 1
                if self.delta_of[i] > 0:
                    plus[signal] += 1
                else:
                    minus[signal] += 1
            self.suffix_count[i] = row
            self.suffix_plus[i] = plus
            self.suffix_minus[i] = minus

        self._non_input_set = frozenset(self.stg.non_input_signals)
        self._window_flows: Optional[List[Tuple[Tuple[int, int], ...]]] = None
        self._succ_pos: Optional[List[int]] = None

    @property
    def num_places(self) -> int:
        """Places of the *original* net (the marking-equation dimension)."""
        return self.prefix.net.num_places

    @property
    def window_flows(self) -> List[Tuple[Tuple[int, int], ...]]:
        """Original-net token flow of each position's transition, sparse —
        the marking-equation rows the window search folds incrementally."""
        if self._window_flows is None:
            net = self.prefix.net
            flows: List[Tuple[Tuple[int, int], ...]] = []
            for position in range(self.num_vars):
                transition = self.prefix.events[
                    self.order[position]
                ].transition
                delta: Dict[int, int] = {}
                for p, w in net.preset(transition).items():
                    delta[p] = delta.get(p, 0) - w
                for p, w in net.postset(transition).items():
                    delta[p] = delta.get(p, 0) + w
                flows.append(tuple((p, d) for p, d in delta.items() if d))
            self._window_flows = flows
        return self._window_flows

    @property
    def succ_pos(self) -> List[int]:
        """Causal-successor masks in position space (transpose of
        :attr:`pred_pos`; the window search's convexity check)."""
        if self._succ_pos is None:
            succ = [0] * self.num_vars
            for i in range(self.num_vars):
                rest = self.pred_pos[i]
                while rest:
                    low = rest & -rest
                    succ[low.bit_length() - 1] |= 1 << i
                    rest ^= low
            self._succ_pos = succ
        return self._succ_pos

    def snapshot(self) -> "SolverSnapshot":
        """The picklable slice of this context (see :class:`SolverSnapshot`)."""
        return SolverSnapshot(self)

    def _remap(self, event_mask: int) -> int:
        """Project an event-index mask onto the free-position index space."""
        mask = 0
        rest = event_mask
        while rest:
            low = rest & -rest
            e = low.bit_length() - 1
            pos = self.position.get(e)
            if pos is not None:
                mask |= 1 << pos
            rest ^= low
        return mask

    # -- evaluation of candidate solutions -------------------------------------

    def positions_to_events(self, pos_mask: int) -> List[int]:
        events = []
        rest = pos_mask
        while rest:
            low = rest & -rest
            events.append(self.order[low.bit_length() - 1])
            rest ^= low
        return events

    def marking_of(self, pos_mask: int) -> Marking:
        """``Mark(C)`` of the configuration given as a position mask."""
        prefix = self.prefix
        consumed = set()
        produced = list(prefix.min_conditions)
        for e in self.positions_to_events(pos_mask):
            event = prefix.events[e]
            consumed.update(event.preset)
            produced.extend(event.postset)
        counts = [0] * prefix.net.num_places
        for b in produced:
            if b not in consumed:
                counts[prefix.conditions[b].place] += 1
        return Marking(counts)

    def code_change_of(self, pos_mask: int) -> Tuple[int, ...]:
        """The signal-change vector ``v_C`` (``Code(C) - v0``)."""
        change = [0] * self.num_signals
        rest = pos_mask
        while rest:
            low = rest & -rest
            i = low.bit_length() - 1
            signal = self.signal_of[i]
            if signal is not None:
                change[signal] += self.delta_of[i]
            rest ^= low
        return tuple(change)

    def out_of(self, marking: Marking) -> FrozenSet[str]:
        """``Out(M)`` evaluated directly on the original STG (the paper's
        treatment of the non-linear CSC separating constraint).  For STGs
        with dummies the weak (silent-closure) excitation is used."""
        return enabled_outputs(self.stg, marking, weak=True)

    def nxt_of(self, marking: Marking, code: Sequence[int], signal: str) -> int:
        return next_state_value(self.stg, marking, code, signal)

    def initial_code(self) -> Tuple[int, ...]:
        """Infer ``v0`` from the prefix: a signal whose causally earliest edge
        rises must start at 0, and vice versa (consistency, Section 2.1).

        Signals with no edge in the prefix fall back to the STG's declared
        initial value (default 0) — their absolute level is irrelevant to
        the conflict constraints anyway, as the paper notes for (2).
        """
        cached = getattr(self, "_initial_code", None)
        if cached is not None:
            return cached
        declared = self.stg.declared_initial_code
        values: List[int] = []
        for index, signal in enumerate(self.stg.signals):
            value = declared.get(signal, 0)
            best = None  # minimal local configuration = causally earliest edge
            for position in range(self.num_vars):
                if self.signal_of[position] == index:
                    event = self.order[position]
                    size = self.prefix.events[event].local_size
                    if best is None or size < best[0]:
                        best = (size, self.delta_of[position])
            if best is not None:
                value = 0 if best[1] > 0 else 1
            values.append(value)
        self._initial_code = tuple(values)
        return self._initial_code

    def trace_of(self, pos_mask: int) -> List[str]:
        """A firing sequence (transition names) executing the configuration —
        the execution path to a conflict that the paper's method provides
        without any reachability analysis."""
        from repro.unfolding.configurations import linearise
        from repro.utils.bitset import BitSet

        events = BitSet.from_iterable(self.positions_to_events(pos_mask))
        return [
            self.prefix.net.transition_name(t)
            for t in linearise(self.prefix, events)
        ]


class SolverSnapshot:
    """A picklable slice of a :class:`SolverContext`.

    Carries exactly the precomputed tables the iterative search cores touch
    — position masks, signal contributions, suffix bounds, window flow rows
    — and none of the prefix machinery, so a :class:`SearchShard` plus a
    snapshot is a complete, cheap-to-pickle work unit for a worker process.
    Workers run the *linear* part of the system only; candidate evaluation
    (markings, ``Out`` sets, traces) stays with the parent, which holds the
    real context.
    """

    __slots__ = (
        "num_vars",
        "num_signals",
        "num_places",
        "pred_pos",
        "conf_pos",
        "signal_of",
        "delta_of",
        "suffix_count",
        "suffix_plus",
        "suffix_minus",
        "window_flows",
        "succ_pos",
    )

    def __init__(self, context: SolverContext):
        self.num_vars = context.num_vars
        self.num_signals = context.num_signals
        self.num_places = context.num_places
        self.pred_pos = list(context.pred_pos)
        self.conf_pos = list(context.conf_pos)
        self.signal_of = list(context.signal_of)
        self.delta_of = list(context.delta_of)
        self.suffix_count = [list(row) for row in context.suffix_count]
        self.suffix_plus = [list(row) for row in context.suffix_plus]
        self.suffix_minus = [list(row) for row in context.suffix_minus]
        self.window_flows = list(context.window_flows)
        self.succ_pos = list(context.succ_pos)
