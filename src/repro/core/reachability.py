"""Extended reachability analysis over the prefix (paper Section 5).

Any property ``P(M)`` stated as linear constraints over the markings of the
*original* net can be re-expressed over ``Unf``-compatible vectors: the
marking of an original place ``s`` is the sum over its condition instances
``b in h^-1(s)`` of ``M_in(b) + sum_{f in •b} x(f) - sum_{f in b•} x(f)``,
i.e. an affine function of the Parikh vector ``x``.

:func:`find_configuration` searches for a single configuration satisfying a
conjunction of such linear constraints, with the same topological-order
compatibility propagation and interval pruning as the pair search.
:func:`check_deadlock` instantiates it with the standard linear encoding of
deadlock for safe nets (every transition misses at least one input token),
reproducing the deadlock-detection application ([8]) that motivated the
paper's approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.context import SolverContext
from repro.exceptions import SolverLimitError
from repro.petri.net import PetriNet
from repro.stg.stg import STG
from repro.unfolding.occurrence_net import Prefix
from repro.unfolding.relations import PrefixRelations
from repro.unfolding.unfolder import UnfoldingOptions, unfold


@dataclass(frozen=True)
class LinearConstraint:
    """``sum coeffs[i] * x(order[i]) (sense) rhs`` over free-event positions.

    ``sense`` is one of ``"<="``, ``">="``, ``"=="``.  Build instances with
    :func:`marking_expression` / :func:`constraint_on_places` rather than by
    hand — positions depend on the context's variable order.
    """

    coeffs: Tuple[int, ...]
    sense: str
    rhs: int

    def __post_init__(self):
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"bad sense {self.sense!r}")

    def satisfied(self, value: int) -> bool:
        if self.sense == "<=":
            return value <= self.rhs
        if self.sense == ">=":
            return value >= self.rhs
        return value == self.rhs


class _ConfigContext(SolverContext):
    """A SolverContext that tolerates plain (unlabelled) net prefixes."""

    def __init__(self, prefix: Prefix):
        if prefix.stg is not None:
            super().__init__(prefix)
            return
        # minimal re-implementation for unlabelled nets: no signals
        self.prefix = prefix
        self.stg = None
        self.relations = PrefixRelations(prefix)
        self.num_signals = 0
        free_mask = self.relations.free_events_mask()
        self.order = [
            e for e in self.relations.topological_order() if (free_mask >> e) & 1
        ]
        self.num_vars = len(self.order)
        self.position = {e: i for i, e in enumerate(self.order)}
        self.pred_pos = [self._remap(self.relations.pred[e]) for e in self.order]
        self.conf_pos = [self._remap(self.relations.conf[e]) for e in self.order]
        self.signal_of = [None] * self.num_vars
        self.delta_of = [0] * self.num_vars
        self.suffix_count = [[] for _ in range(self.num_vars + 1)]


def marking_expression(
    context: Union[SolverContext, "_ConfigContext"], place: int
) -> Tuple[int, List[int]]:
    """``M(s) = const + sum coeffs[i] * x(position i)`` for original place
    ``s`` (the Section 5 transformation).

    Returns ``(const, coeffs)`` where ``const`` counts the minimal
    conditions labelled ``s`` and ``coeffs[i]`` is (producers into ``s``)
    minus (consumers from ``s``) for the event at position ``i``.
    """
    prefix = context.prefix
    const = 0
    coeffs = [0] * context.num_vars
    for b in prefix.conditions_by_place.get(place, ()):
        condition = prefix.conditions[b]
        if condition.pre_event is None:
            const += 1
        else:
            position = context.position.get(condition.pre_event)
            if position is not None:
                coeffs[position] += 1
        for consumer in condition.post_events:
            position = context.position.get(consumer)
            if position is not None:
                coeffs[position] -= 1
    return const, coeffs


def constraint_on_places(
    context: Union[SolverContext, "_ConfigContext"],
    place_weights: Dict[int, int],
    sense: str,
    rhs: int,
) -> LinearConstraint:
    """Lift a linear constraint over original-net place markings onto the
    prefix variables: ``sum w_s * M(s) (sense) rhs``."""
    total_const = 0
    coeffs = [0] * context.num_vars
    for place, weight in place_weights.items():
        const, place_coeffs = marking_expression(context, place)
        total_const += weight * const
        for i, c in enumerate(place_coeffs):
            coeffs[i] += weight * c
    return LinearConstraint(tuple(coeffs), sense, rhs - total_const)


def find_configuration(
    source: Union[PetriNet, STG, Prefix],
    constraints: Sequence[LinearConstraint] = (),
    context: Optional[SolverContext] = None,
    node_budget: Optional[int] = None,
    unfolding_options: Optional[UnfoldingOptions] = None,
) -> Optional[List[int]]:
    """Find a configuration whose Parikh vector satisfies all constraints.

    Returns the configuration as a list of prefix event indices, or ``None``
    if no configuration satisfies the system.  Constraints must have been
    built against the same context (see :func:`make_context`).
    """
    if context is None:
        prefix = source if isinstance(source, Prefix) else unfold(
            source, unfolding_options
        )
        context = make_context(prefix)
    n = context.num_vars

    # interval pruning state per constraint: current value + residual bounds
    pos_tail = [[0] * (n + 1) for _ in constraints]
    neg_tail = [[0] * (n + 1) for _ in constraints]
    for k, constraint in enumerate(constraints):
        for i in range(n - 1, -1, -1):
            c = constraint.coeffs[i]
            pos_tail[k][i] = pos_tail[k][i + 1] + (c if c > 0 else 0)
            neg_tail[k][i] = neg_tail[k][i + 1] + (c if c < 0 else 0)

    nodes = 0

    def feasible(values: List[int], index: int) -> bool:
        for k, constraint in enumerate(constraints):
            low = values[k] + neg_tail[k][index]
            high = values[k] + pos_tail[k][index]
            if constraint.sense == "<=" and low > constraint.rhs:
                return False
            if constraint.sense == ">=" and high < constraint.rhs:
                return False
            if constraint.sense == "==" and not (low <= constraint.rhs <= high):
                return False
        return True

    def descend(index: int, ones: int, values: List[int]) -> Optional[int]:
        nonlocal nodes
        nodes += 1
        if node_budget is not None and nodes > node_budget:
            raise SolverLimitError(f"search exceeded node budget {node_budget}")
        if index == n:
            if all(c.satisfied(v) for c, v in zip(constraints, values)):
                return ones
            return None
        if not feasible(values, index):
            return None
        pred = context.pred_pos[index]
        conf = context.conf_pos[index]
        # try x = 1 first (finds deadlocks deep in the behaviour faster)
        if pred & ~ones == 0 and conf & ones == 0:
            new_values = [
                v + c.coeffs[index] for c, v in zip(constraints, values)
            ]
            found = descend(index + 1, ones | (1 << index), new_values)
            if found is not None:
                return found
        return descend(index + 1, ones, values)

    result = descend(0, 0, [0] * len(constraints))
    if result is None:
        return None
    return context.positions_to_events(result)


def make_context(prefix: Prefix) -> Union[SolverContext, "_ConfigContext"]:
    """Build the right context flavour for STG or plain-net prefixes."""
    if prefix.stg is not None:
        return SolverContext(prefix)
    return _ConfigContext(prefix)


def check_deadlock(
    source: Union[PetriNet, STG, Prefix],
    node_budget: Optional[int] = None,
    unfolding_options: Optional[UnfoldingOptions] = None,
) -> Optional[List[str]]:
    """Find a reachable deadlock, or return ``None`` if the net is live.

    Uses the linear encoding for safe nets ([8], [14]): a marking is dead iff
    for every transition ``t`` some input place is empty, i.e.
    ``sum_{s in •t} M(s) <= |•t| - 1``.  Returns a firing sequence
    (transition names) leading to the deadlock.
    """
    if isinstance(source, Prefix):
        prefix = source
    else:
        prefix = unfold(source, unfolding_options)
    context = make_context(prefix)
    net = prefix.net
    constraints = []
    for t in range(net.num_transitions):
        preset = net.preset(t)
        constraints.append(
            constraint_on_places(
                context,
                {p: 1 for p in preset},
                "<=",
                len(preset) - 1,
            )
        )
    events = find_configuration(
        prefix, constraints, context=context, node_budget=node_budget
    )
    if events is None:
        return None
    from repro.unfolding.configurations import linearise
    from repro.utils.bitset import BitSet

    order = linearise(prefix, BitSet.from_iterable(events))
    return [net.transition_name(t) for t in order]
