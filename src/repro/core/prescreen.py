"""Relaxation prescreens for the conflict system (linear-heuristics layer).

The paper stresses that keeping the constraints linear admits "more good
heuristics".  Two sound prescreens are implemented for the nested
(Proposition 1) formulation, where a USC conflict exists iff some non-empty
balanced window ``D`` has non-zero original-net token flow ``I·x_D``:

1. **kernel test** (exact linear algebra, cheap): if every vector in the
   null space of the signal-balance matrix also lies in the null space of
   the incidence matrix, then *no* balanced vector — integral or not — can
   change the marking, so the STG has no USC conflict and the search can be
   skipped entirely.  Typical conclusive case: fully sequential cyclic
   controllers, whose only balanced window is the full cycle.
2. **LP test** (rational simplex, optional): for each place, maximise the
   token flow into it over the balanced ``[0,1]``-box polytope; if every
   optimum is 0 the same conclusion holds.  Strictly stronger than the
   kernel test (the box can cut off spurious kernel directions) but costs
   up to ``2|P|`` LP solves.

Both are *sound for "no conflict"* only; an inconclusive answer falls
through to the exact search.  Only valid together with Proposition 1, i.e.
for dynamically conflict-free STGs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.context import SolverContext
from repro.petri.analysis import _integer_kernel
from repro.petri.incidence import balance_matrix_from_changes, transition_flow_matrix

if TYPE_CHECKING:
    from repro.refine import RefinementOutcome

#: One relaxation row over the ``2n`` variables ``x'_0..x'_{n-1}, x''_0..``.
RelaxationRow = Tuple[Sequence[int], str, int]


def _balance_matrix(context: SolverContext) -> np.ndarray:
    """Rows: one per signal; columns: free positions; entries: edge deltas."""
    changes = [
        (context.signal_of[i], context.delta_of[i])
        for i in range(context.num_vars)
    ]
    return balance_matrix_from_changes(changes, context.num_signals)


def _flow_matrix(context: SolverContext) -> np.ndarray:
    """Rows: original places; columns: free positions; entries: token flow."""
    transitions = [
        context.prefix.events[context.order[i]].transition
        for i in range(context.num_vars)
    ]
    return transition_flow_matrix(context.prefix.net, transitions)


def kernel_prescreen(context: SolverContext) -> Optional[bool]:
    """The exact-kernel test.

    Returns ``False`` if provably no USC conflict exists (every balanced
    vector has zero token flow), ``None`` if inconclusive.
    """
    balance = _balance_matrix(context)
    flow = _flow_matrix(context)
    kernel = _integer_kernel(balance)
    for vector in kernel:
        if (flow @ vector).any():
            return None
    return False


def nested_pair_rows(context: SolverContext) -> Iterator[RelaxationRow]:
    """The rows of the nested-pair LP relaxation, in canonical order.

    Variable layout: ``x'_0..x'_{n-1}, x''_0..x''_{n-1}`` in ``[0,1]``
    (the box itself is *not* emitted here).  Row order is part of the
    :mod:`repro.refine` certificate-replay contract — signal balance of the
    difference first, then the Proposition 1 nesting rows, then the prefix
    compatibility inequalities in condition order — so both consumers
    (:func:`lp_prescreen` and the refinement loop) see the same system.
    """
    balance = _balance_matrix(context)
    prefix = context.prefix
    n = context.num_vars
    for row in balance:
        if row.any():
            coeffs = [-int(c) for c in row] + [int(c) for c in row]
            yield coeffs, "==", 0
    # x' <= x''  (Proposition 1 nesting)
    for i in range(n):
        coeffs = [0] * (2 * n)
        coeffs[i] = 1
        coeffs[n + i] = -1
        yield coeffs, "<=", 0
    # prefix compatibility for both vectors: every condition's balance >= -M_in
    for condition in prefix.conditions:
        template = [0] * n
        if condition.pre_event is not None:
            position = context.position.get(condition.pre_event)
            if position is not None:
                template[position] += 1
        for consumer in condition.post_events:
            position = context.position.get(consumer)
            if position is not None:
                template[position] -= 1
        if not any(template):
            continue
        initial = 1 if condition.pre_event is None else 0
        yield template + [0] * n, ">=", -initial
        yield [0] * n + template, ">=", -initial


def lp_prescreen(context: SolverContext) -> Optional[bool]:
    """The LP relaxation of the nested pair system (stronger, costlier).

    Variables: relaxed Parikh vectors ``x' <= x''`` in ``[0,1]``.
    Constraints: the *compatibility* (prefix marking-equation) inequalities
    ``M_in + I_unf x >= 0`` for both vectors — the Section 2.2 relaxation —
    plus the signal balance of the difference ``x'' - x'``.  For each
    original place the achievable token-flow difference is maximised in both
    directions; all-zero optima prove the integer system infeasible, i.e.
    no USC conflict.

    Returns ``False`` for "provably conflict-free", ``None`` otherwise.
    """
    from repro.lp import LinearProgram, solve_lp

    flow = _flow_matrix(context)
    n = context.num_vars
    constraints = list(nested_pair_rows(context))

    for place_row in flow:
        if not place_row.any():
            continue
        diff_objective = [Fraction(-int(c)) for c in place_row] + [
            Fraction(int(c)) for c in place_row
        ]
        for sign in (1, -1):
            problem = LinearProgram.feasibility(2 * n, constraints)
            problem.add_upper_bounds(1)
            problem.objective = [sign * c for c in diff_objective]
            result = solve_lp(problem)
            assert result.feasible, "x' = x'' = 0 is always a solution"
            if result.objective_value is None or result.objective_value > 0:
                return None
    return False


def refinement_prescreen(
    context: SolverContext, factbase=None, cert_store=None
) -> Tuple[Optional[bool], "RefinementOutcome"]:
    """The CEGAR trap/siphon refinement tier (:mod:`repro.refine`).

    Strictly stronger than :func:`lp_prescreen` on two axes: the integral
    token-flow difference of a window is rounded against the LP bound
    (an optimum below 1 already proves the integer difference is zero), and
    spurious relaxation solutions are refuted by trap/siphon cuts separated
    from the :mod:`repro.analysis` FactBase or an exact-rational separation
    LP.  Returns ``(False, outcome)`` when the conflict system is refuted
    (with a replayable certificate on the outcome) and ``(None, outcome)``
    otherwise; the outcome's fixed-place classification feeds the in-search
    bound tightening of :mod:`repro.core.search` / :mod:`repro.core.window`.

    Only sound together with Proposition 1 (dynamically conflict-free STGs),
    exactly like the other prescreens in this module.
    """
    from repro.refine import refine_prescreen

    outcome = refine_prescreen(context, factbase=factbase, cert_store=cert_store)
    return (False if outcome.refuted else None), outcome
