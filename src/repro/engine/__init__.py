"""The verification engine: jobs, worker pool, portfolio racing, caching.

This package turns the library's one-shot checkers into a verification
*service*:

* :mod:`repro.engine.jobs` — :class:`VerificationJob` specs, structured
  :class:`JobResult` reports and the engine registry (``ilp``, ``sat``,
  ``bdd``, ``sg``);
* :mod:`repro.engine.pool` — a multiprocess worker pool with per-task
  timeouts, bounded retries on worker death, and graceful degradation to
  in-process execution where ``fork`` is unavailable;
* :mod:`repro.engine.portfolio` — races the selected engines per job and
  cancels the losers on the first sound verdict;
* :mod:`repro.engine.cache` — a content-addressed on-disk result store
  keyed by the canonical STG hash plus the property;
* :mod:`repro.engine.events` — structured progress events and aggregate
  :class:`EngineStats`;
* :mod:`repro.engine.batch` — the driver behind ``repro-stg batch``.
"""

from repro.engine.jobs import (
    ENGINES,
    JobResult,
    PROPERTIES,
    SOUND_VERDICTS,
    VerificationJob,
    engine_names,
    execute_engine,
    register_engine,
)
from repro.engine.pool import Task, TaskOutcome, WorkerPool, register_runner
from repro.engine.portfolio import run_jobs
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.events import EngineEvent, EngineStats, EventLog
from repro.engine.batch import (
    BatchReport,
    build_jobs,
    build_jobs_reporting,
    default_targets,
    format_batch_report,
    resolve_target,
    run_batch,
)

__all__ = [
    "ENGINES",
    "PROPERTIES",
    "SOUND_VERDICTS",
    "VerificationJob",
    "JobResult",
    "engine_names",
    "execute_engine",
    "register_engine",
    "Task",
    "TaskOutcome",
    "WorkerPool",
    "register_runner",
    "run_jobs",
    "ResultCache",
    "default_cache_dir",
    "EngineEvent",
    "EngineStats",
    "EventLog",
    "BatchReport",
    "build_jobs",
    "build_jobs_reporting",
    "default_targets",
    "format_batch_report",
    "resolve_target",
    "run_batch",
]
