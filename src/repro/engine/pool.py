"""A multiprocess worker pool with timeouts, bounded retries and degradation.

The pool executes generic :class:`Task` items: a task names a *runner* (a
registered top-level callable) and carries a picklable payload.  Verification
tasks register the ``"verification"`` runner (:mod:`repro.engine.jobs`);
the Table 1 harness registers ``"table1-row"`` (:mod:`repro.bench.table1`).

Robustness contract:

* **per-task timeouts** — a worker that overruns its deadline is terminated
  and reported with status ``"timeout"`` (never retried: the rerun would
  time out again);
* **bounded retries on worker death** — a worker that dies without
  reporting (segfault, ``os._exit``, OOM kill) is retried up to
  ``max_retries`` times, then reported with status ``"crashed"``;
* **graceful degradation** — when the ``fork`` start method is unavailable
  (or ``max_workers=0`` is requested), tasks run in-process, in submission
  order; timeouts then become best-effort (checked after the fact, never
  pre-empted) and worker death cannot occur.  Degradation is announced via
  a ``pool_degraded`` event.

Workers inherit the parent's runner/engine registries through ``fork``; the
``spawn`` start method is deliberately *not* used (it would re-import the
world and lose test-registered runners), which is exactly why the inline
fallback exists.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Iterator, Optional

from repro.engine import events as ev
from repro.exceptions import ReproError

#: Runner registry: name -> callable(payload) -> picklable result.
RUNNERS: Dict[str, Callable[[Any], Any]] = {}

#: Poll interval of the parent supervision loop, seconds.
_POLL_INTERVAL = 0.005

STATUS_OK = "ok"
STATUS_RAISED = "raised"
STATUS_TIMEOUT = "timeout"
STATUS_CRASHED = "crashed"


def register_runner(name: str, fn: Callable[[Any], Any]) -> None:
    """Register (or replace) a task runner under ``name``."""
    RUNNERS[name] = fn


@dataclass(frozen=True)
class Task:
    """One unit of work: run ``RUNNERS[runner](payload)``."""

    task_id: str
    group: str
    runner: str
    payload: Any
    timeout: Optional[float] = None


@dataclass
class TaskOutcome:
    """What happened to one task."""

    task_id: str
    group: str
    status: str                  # ok | raised | timeout | crashed
    value: Any = None            # the runner's return value when ok
    error: Optional[str] = None  # exception text when raised
    elapsed: float = 0.0         # wall clock including process spawn
    attempts: int = 1


@dataclass
class _Running:
    task: Task
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    started: float
    attempts: int
    first_started: float


def _worker_main(runner: str, payload: Any, conn) -> None:
    """Child entry point: run the task, ship the outcome over the pipe."""
    try:
        fn = RUNNERS.get(runner)
        if fn is None:
            conn.send((STATUS_RAISED, f"unknown runner {runner!r}"))
        else:
            conn.send((STATUS_OK, fn(payload)))
    except BaseException as exc:  # report *everything*; crashes are silent
        try:
            conn.send((STATUS_RAISED, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """Supervises up to ``max_workers`` forked workers over queued tasks.

    Use :meth:`submit` to enqueue, :meth:`outcomes` to drain completions,
    :meth:`cancel_group` to abandon a group once its verdict is known, and
    :meth:`shutdown` (or the context manager protocol) to clean up.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_retries: int = 1,
        default_timeout: Optional[float] = None,
        events: Optional[ev.EventLog] = None,
    ):
        if max_workers is None:
            max_workers = multiprocessing.cpu_count()
        if max_workers < 0:
            raise ReproError("max_workers must be >= 0")
        self.max_retries = max_retries
        self.default_timeout = default_timeout
        self.events = events or ev.EventLog()
        self.inline = max_workers == 0 or not fork_available()
        if self.inline and max_workers != 0:
            self.events.emit(
                ev.POOL_DEGRADED, detail="fork unavailable; running in-process"
            )
        self.max_workers = max_workers
        self._context = None if self.inline else multiprocessing.get_context("fork")
        self._pending: deque = deque()
        self._running: List[_Running] = []
        self._cancelled_groups: set = set()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Drop queued tasks and terminate every running worker."""
        self._pending.clear()
        for running in self._running:
            self._kill(running)
        self._running.clear()

    # -- submission & cancellation -------------------------------------------

    def submit(self, task: Task) -> None:
        if task.runner not in RUNNERS:
            raise ReproError(
                f"unknown runner {task.runner!r}; registered: "
                f"{', '.join(sorted(RUNNERS))}"
            )
        self._pending.append((task, 1, None))

    def cancel_group(self, group: str) -> int:
        """Abandon all queued and running tasks of ``group``.

        Returns the number of tasks cancelled; they produce no outcome.
        """
        cancelled = 0
        kept = deque()
        for entry in self._pending:
            if entry[0].group == group:
                cancelled += 1
                self.events.emit(ev.TASK_CANCELLED, job_id=entry[0].task_id)
            else:
                kept.append(entry)
        self._pending = kept
        survivors = []
        for running in self._running:
            if running.task.group == group:
                self._kill(running)
                cancelled += 1
                self.events.emit(ev.TASK_CANCELLED, job_id=running.task.task_id)
            else:
                survivors.append(running)
        self._running = survivors
        self._cancelled_groups.add(group)
        return cancelled

    # -- completion ----------------------------------------------------------

    def outcomes(self) -> Iterator[TaskOutcome]:
        """Yield outcomes as tasks finish, until the pool is drained.

        Cancelling a group mid-iteration is supported (and is how the
        portfolio driver stops losers): cancelled tasks simply never yield.
        """
        while self._pending or self._running:
            outcome = self._next_outcome()
            if outcome is not None:
                yield outcome

    def _next_outcome(self) -> Optional[TaskOutcome]:
        if self.inline:
            return self._run_inline()
        outcome = None
        while outcome is None and (self._pending or self._running):
            self._start_ready()
            outcome = self._reap()
            if outcome is None:
                time.sleep(_POLL_INTERVAL)
        return outcome

    def _run_inline(self) -> Optional[TaskOutcome]:
        if not self._pending:
            return None
        task, attempts, first_started = self._pending.popleft()
        self.events.emit(ev.TASK_STARTED, job_id=task.task_id, detail="inline")
        started = time.monotonic()
        try:
            value = RUNNERS[task.runner](task.payload)
            status, error = STATUS_OK, None
        except Exception as exc:
            value, status = None, STATUS_RAISED
            error = f"{type(exc).__name__}: {exc}"
        elapsed = time.monotonic() - started
        timeout = self._timeout_of(task)
        if timeout is not None and elapsed > timeout:
            # best-effort: inline execution cannot pre-empt, only report
            self.events.emit(
                ev.TASK_TIMEOUT,
                job_id=task.task_id,
                elapsed=elapsed,
                detail="post-hoc (inline)",
            )
            return TaskOutcome(
                task_id=task.task_id,
                group=task.group,
                status=STATUS_TIMEOUT,
                elapsed=elapsed,
                attempts=attempts,
            )
        return TaskOutcome(
            task_id=task.task_id,
            group=task.group,
            status=status,
            value=value,
            error=error,
            elapsed=elapsed,
            attempts=attempts,
        )

    def _start_ready(self) -> None:
        while self._pending and len(self._running) < self.max_workers:
            task, attempts, first_started = self._pending.popleft()
            parent_conn, child_conn = self._context.Pipe(duplex=False)
            process = self._context.Process(
                target=_worker_main,
                args=(task.runner, task.payload, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            now = time.monotonic()
            self._running.append(
                _Running(
                    task=task,
                    process=process,
                    conn=parent_conn,
                    started=now,
                    attempts=attempts,
                    first_started=first_started if first_started else now,
                )
            )
            self.events.emit(
                ev.TASK_STARTED,
                job_id=task.task_id,
                detail=f"attempt {attempts}",
            )

    def _reap(self) -> Optional[TaskOutcome]:
        now = time.monotonic()
        for index, running in enumerate(self._running):
            task = running.task
            if running.conn.poll():
                del self._running[index]
                try:
                    status, value = running.conn.recv()
                except (EOFError, OSError):
                    return self._handle_death(running)
                running.process.join()
                running.conn.close()
                elapsed = now - running.first_started
                if status == STATUS_OK:
                    return TaskOutcome(
                        task_id=task.task_id,
                        group=task.group,
                        status=STATUS_OK,
                        value=value,
                        elapsed=elapsed,
                        attempts=running.attempts,
                    )
                return TaskOutcome(
                    task_id=task.task_id,
                    group=task.group,
                    status=STATUS_RAISED,
                    error=str(value),
                    elapsed=elapsed,
                    attempts=running.attempts,
                )
            timeout = self._timeout_of(task)
            if timeout is not None and now - running.started > timeout:
                del self._running[index]
                self._kill(running)
                self.events.emit(
                    ev.TASK_TIMEOUT,
                    job_id=task.task_id,
                    elapsed=now - running.started,
                )
                return TaskOutcome(
                    task_id=task.task_id,
                    group=task.group,
                    status=STATUS_TIMEOUT,
                    elapsed=now - running.first_started,
                    attempts=running.attempts,
                )
            if not running.process.is_alive():
                del self._running[index]
                return self._handle_death(running)
        return None

    def _handle_death(self, running: _Running) -> Optional[TaskOutcome]:
        """A worker died without reporting: retry (bounded) or give up."""
        task = running.task
        running.process.join()
        running.conn.close()
        exitcode = running.process.exitcode
        if running.attempts <= self.max_retries:
            self.events.emit(
                ev.TASK_RETRY,
                job_id=task.task_id,
                detail=f"worker died (exit {exitcode}); "
                f"attempt {running.attempts + 1}",
            )
            self._pending.append(
                (task, running.attempts + 1, running.first_started)
            )
            return None
        self.events.emit(
            ev.TASK_CRASHED,
            job_id=task.task_id,
            detail=f"worker died (exit {exitcode}) after "
            f"{running.attempts} attempt(s)",
        )
        return TaskOutcome(
            task_id=task.task_id,
            group=task.group,
            status=STATUS_CRASHED,
            error=f"worker died (exit {exitcode})",
            elapsed=time.monotonic() - running.first_started,
            attempts=running.attempts,
        )

    # -- helpers -------------------------------------------------------------

    def _timeout_of(self, task: Task) -> Optional[float]:
        return task.timeout if task.timeout is not None else self.default_timeout

    def _kill(self, running: _Running) -> None:
        if running.process.is_alive():
            running.process.terminate()
        running.process.join()
        try:
            running.conn.close()
        except OSError:
            pass
