"""Portfolio racing: run several engines per job, first sound verdict wins.

The four back-ends (``ilp``, ``sat``, ``bdd``, ``sg``) are deliberately
independent implementations with very different performance profiles — the
paper's IP method is near-instant on conflict-carrying STGs but works for
its living on conflict-free ones, while the state-graph baselines behave the
other way around.  Racing them and cancelling the losers turns that spread
into a win: each job costs roughly the *minimum* over the portfolio instead
of a fixed engine's worst case.

Before any engine runs, every uncached job goes through the static lint
pass (:mod:`repro.lint`): it costs no state-space construction, and when
one of its certifying pre-filter rules decides the job's property the
verdict is returned immediately — with the machine-checkable certificate
attached — and the pool never sees the job.  (The cache is consulted
first: a disk read is cheaper still than linting.)  Jobs with
``use_facts=True`` then warm the structural :class:`~repro.analysis.FactBase`
(once per STG hash, persisted in the result cache) so the racing ilp
engines load it instead of recomputing.

:func:`run_jobs` is also the plain driver for single-engine jobs (a
portfolio of one); every job flows cache → lint → analysis → pool →
arbitration → result, and each step is reported through the
:class:`~repro.engine.events.EventLog`.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.engine import events as ev
from repro.engine.cache import ResultCache
from repro.engine.jobs import (
    JobResult,
    SOURCE_LINT,
    VERDICT_ERROR,
    VERDICT_HOLDS,
    VERDICT_TIMEOUT,
    VERDICT_VIOLATED,
    VerificationJob,
    execute_engine,
    failure_result,
)
from repro.engine.pool import (
    STATUS_CRASHED,
    STATUS_OK,
    STATUS_TIMEOUT,
    Task,
    TaskOutcome,
    WorkerPool,
    register_runner,
)


def _run_verification_task(payload) -> JobResult:
    """Pool runner: one (job, engine) pair, executed inside a worker."""
    job, engine = payload
    return execute_engine(job, engine)


register_runner("verification", _run_verification_task)


def run_jobs(
    jobs: Sequence[VerificationJob],
    pool: WorkerPool,
    cache: Optional[ResultCache] = None,
    events: Optional[ev.EventLog] = None,
    lint: bool = True,
    lint_size_budget: int = 160,
) -> List[JobResult]:
    """Run every job through cache + lint + portfolio racing; results in
    job order.

    Cache hits return immediately (re-badged ``source="cache"``).  Every
    uncached job then passes the static lint stage (once per distinct STG,
    shared across its properties); a certifying pre-filter decision
    short-circuits the job entirely.  Otherwise the engines in
    ``job.engines`` race in the pool; the first *sound* verdict
    (holds/violated) wins, the remaining engine tasks are cancelled, and the
    result is cached.  Unsound outcomes (timeout, budget exhaustion, engine
    error, worker crash) only fail the job once every engine of its
    portfolio has failed.  ``lint=False`` disables stage zero;
    ``lint_size_budget`` caps the net size for its polyhedral rules.
    """
    events = events or pool.events
    if cache is not None:
        # point refinement jobs at the result cache's refine-cert domain so
        # their dual certificates persist across runs; callers that already
        # set an explicit store keep theirs
        jobs = [
            replace(job, cert_cache_dir=str(cache.root))
            if job.use_refinement and not job.cert_cache_dir
            else job
            for job in jobs
        ]
    results: Dict[int, JobResult] = {}
    failures: Dict[int, List[JobResult]] = {}
    lint_reports: Dict[str, Optional[tuple]] = {}
    analyzed: Dict[str, bool] = {}

    for index, job in enumerate(jobs):
        events.emit(ev.JOB_QUEUED, job_id=job.job_id)
        if cache is not None:
            hit = cache.get(job)
            if hit is not None:
                results[index] = hit
                events.emit(
                    ev.CACHE_HIT, job_id=job.job_id, engine=hit.engine
                )
                continue
            events.emit(ev.CACHE_MISS, job_id=job.job_id)
        if lint:
            settled = _lint_stage(job, events, lint_reports, lint_size_budget)
            if settled is not None:
                results[index] = settled
                continue
        if job.use_facts or job.use_refinement:
            # refinement jobs also touch the FactBase (DCF licence check,
            # tier-1 cut separation), so warm it for them too
            _analysis_stage(job, events, cache, analyzed)
        failures[index] = []
        for engine in job.engines:
            pool.submit(
                Task(
                    task_id=f"{index}:{engine}",
                    group=str(index),
                    runner="verification",
                    payload=(job, engine),
                    timeout=job.timeout,
                )
            )

    for outcome in pool.outcomes():
        index = int(outcome.group)
        if index in results:
            continue  # stale outcome of an already-settled job
        job = jobs[index]
        result = _result_of(job, outcome)
        if result.sound:
            results[index] = result
            pool.cancel_group(outcome.group)
            events.emit(
                ev.ENGINE_WON,
                job_id=job.job_id,
                engine=result.engine,
                elapsed=result.elapsed,
            )
            events.emit(ev.JOB_DONE, job_id=job.job_id, engine=result.engine)
            if cache is not None:
                cache.put(job, result)
            continue
        failures[index].append(result)
        if len(failures[index]) == len(job.engines):
            results[index] = _aggregate_failure(job, failures[index])
            events.emit(
                ev.JOB_FAILED,
                job_id=job.job_id,
                detail=results[index].error or results[index].verdict,
            )

    missing = [i for i in range(len(jobs)) if i not in results]
    for index in missing:  # defensive: a drained pool should leave none
        results[index] = failure_result(
            jobs[index], VERDICT_ERROR, error="pool drained without outcome"
        )
    return [results[index] for index in range(len(jobs))]


def _analysis_stage(
    job: VerificationJob,
    events: ev.EventLog,
    cache: Optional[ResultCache],
    analyzed: Dict[str, bool],
) -> None:
    """Warm the FactBase of a ``use_facts`` job, once per STG hash.

    Purely an optimisation pass: facts land in the in-process memo and (when
    a cache is configured) in the result cache, where the racing ilp engines
    — possibly in other processes — load them instead of recomputing.
    Failures degrade silently to in-engine computation.
    """
    if job.stg_hash in analyzed:
        return
    analyzed[job.stg_hash] = True
    from repro.analysis import analyze

    started = time.perf_counter()
    try:
        facts = analyze(job.stg, cache=cache)
    except Exception as exc:  # analysis bug: the engines recompute/degrade
        events.emit(
            ev.ANALYSIS_PASS,
            job_id=job.job_id,
            detail=f"analysis crashed ({type(exc).__name__}: {exc})",
        )
        return
    events.emit(
        ev.ANALYSIS_PASS,
        job_id=job.job_id,
        elapsed=time.perf_counter() - started,
        detail=f"{len(facts.facts)} facts",
    )


def _lint_stage(
    job: VerificationJob,
    events: ev.EventLog,
    reports: Dict[str, Optional[tuple]],
    size_budget: int,
) -> Optional[JobResult]:
    """Stage zero: lint the job's STG; a JobResult if lint decided it.

    The lint report is computed once per distinct STG content hash and
    reused for the other properties of the same STG.  Lint failures are
    reported but never fail the job — the engines still run.  Lint-decided
    results are *not* cached: recomputing them is as cheap as reading the
    cache, and the certificate stays tied to the exact STG.
    """
    if job.stg_hash not in reports:
        from repro.lint import run_lint

        started = time.perf_counter()
        try:
            report = run_lint(job.stg, size_budget=size_budget)
        except Exception as exc:  # lint bug: degrade to the engines
            events.emit(
                ev.LINT_PASS,
                job_id=job.job_id,
                detail=f"lint crashed ({type(exc).__name__}: {exc})",
            )
            reports[job.stg_hash] = None
            return None
        reports[job.stg_hash] = (report, time.perf_counter() - started)
        events.emit(
            ev.LINT_PASS,
            job_id=job.job_id,
            elapsed=reports[job.stg_hash][1],
            detail=report.summary(),
        )
    cached = reports[job.stg_hash]
    if cached is None:  # earlier crash for this STG
        return None
    report, elapsed = cached
    decision = report.decisions().get(job.property)
    if decision is None:
        return None
    diagnostic = decision.diagnostic
    events.emit(
        ev.LINT_DECIDED,
        job_id=job.job_id,
        engine="lint",
        elapsed=elapsed,
        detail=f"{job.property}="
        f"{'holds' if decision.holds else 'violated'} by {diagnostic.rule_id}",
    )
    events.emit(ev.JOB_DONE, job_id=job.job_id, engine="lint")
    return JobResult(
        job_id=job.job_id,
        name=job.name,
        property=job.property,
        verdict=VERDICT_HOLDS if decision.holds else VERDICT_VIOLATED,
        engine="lint",
        holds=decision.holds,
        elapsed=elapsed,
        source=SOURCE_LINT,
        witness=diagnostic.message,
        stats={
            "lint_rule": diagnostic.rule_id,
            "diagnostics": len(report.diagnostics),
        },
        certificate=diagnostic.certificate,
    )


def _result_of(job: VerificationJob, outcome: TaskOutcome) -> JobResult:
    """Translate a pool outcome into a JobResult (synthesising failures)."""
    engine = outcome.task_id.split(":", 1)[1]
    if outcome.status == STATUS_OK and isinstance(outcome.value, JobResult):
        result = outcome.value
        result.attempts = outcome.attempts
        return result
    if outcome.status == STATUS_TIMEOUT:
        return failure_result(
            job,
            VERDICT_TIMEOUT,
            engine=engine,
            error=f"engine {engine} exceeded the {job.timeout}s deadline",
            elapsed=outcome.elapsed,
            attempts=outcome.attempts,
        )
    if outcome.status == STATUS_CRASHED:
        return failure_result(
            job,
            VERDICT_ERROR,
            engine=engine,
            error=outcome.error or "worker crashed",
            elapsed=outcome.elapsed,
            attempts=outcome.attempts,
        )
    return failure_result(
        job,
        VERDICT_ERROR,
        engine=engine,
        error=outcome.error or f"unexpected outcome {outcome.status!r}",
        elapsed=outcome.elapsed,
        attempts=outcome.attempts,
    )


def _aggregate_failure(
    job: VerificationJob, attempts: List[JobResult]
) -> JobResult:
    """Every engine failed: summarise the portfolio-wide failure."""
    verdict = (
        VERDICT_TIMEOUT
        if all(a.verdict == VERDICT_TIMEOUT for a in attempts)
        else VERDICT_ERROR
    )
    detail = "; ".join(
        f"{a.engine}: {a.verdict}" + (f" ({a.error})" if a.error else "")
        for a in attempts
    )
    return failure_result(
        job,
        verdict,
        error=f"all engines failed: {detail}",
        elapsed=max(a.elapsed for a in attempts),
        attempts=sum(a.attempts for a in attempts),
    )
