"""Structured progress/telemetry events of the verification engine.

Every stage of the engine (queueing, worker pool, portfolio arbitration,
result cache) reports what it does through an :class:`EventLog`: each event
is appended to an in-memory list (so tests and tools can assert on exact
sequences), forwarded to stdlib :mod:`logging` under the ``repro.engine``
logger (so ``repro-stg -v`` streams progress), and folded into an
:class:`EngineStats` aggregate (so batch reports can summarise a run).

When tracing is enabled (:mod:`repro.obs`), every event additionally leaves
a zero-duration ``engine.<kind>`` point span in the trace — so a JSONL
trace interleaves the engine's lifecycle markers with the spans of the
checkers they triggered — and :meth:`EngineStats.report` appends the
aggregated per-phase wall-time breakdown of the run.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs

#: Event kinds emitted by the engine subsystem.
JOB_QUEUED = "job_queued"
JOB_DONE = "job_done"
JOB_FAILED = "job_failed"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
ENGINE_WON = "engine_won"
LINT_PASS = "lint_pass"
LINT_DECIDED = "lint_decided"
ANALYSIS_PASS = "analysis_pass"
TASK_STARTED = "task_started"
TASK_TIMEOUT = "task_timeout"
TASK_RETRY = "task_retry"
TASK_CRASHED = "task_crashed"
TASK_CANCELLED = "task_cancelled"
POOL_DEGRADED = "pool_degraded"

EVENT_KINDS = frozenset(
    {
        JOB_QUEUED,
        JOB_DONE,
        JOB_FAILED,
        CACHE_HIT,
        CACHE_MISS,
        ENGINE_WON,
        LINT_PASS,
        LINT_DECIDED,
        ANALYSIS_PASS,
        TASK_STARTED,
        TASK_TIMEOUT,
        TASK_RETRY,
        TASK_CRASHED,
        TASK_CANCELLED,
        POOL_DEGRADED,
    }
)


@dataclass(frozen=True)
class EngineEvent:
    """One structured telemetry event."""

    kind: str
    job_id: str = ""
    engine: Optional[str] = None
    elapsed: Optional[float] = None
    detail: str = ""

    def __str__(self) -> str:
        parts = [self.kind]
        if self.job_id:
            parts.append(f"job={self.job_id}")
        if self.engine:
            parts.append(f"engine={self.engine}")
        if self.elapsed is not None:
            parts.append(f"elapsed={self.elapsed:.3f}s")
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


@dataclass
class EngineStats:
    """Aggregate counters over one engine run — the batch report footer."""

    jobs: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    lint_passes: int = 0
    lint_decided: int = 0
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    cancelled: int = 0
    degraded: int = 0
    wins_by_engine: Dict[str, int] = field(default_factory=dict)
    #: Per-phase wall-time breakdown (seconds) folded in from a traced run;
    #: empty when tracing was off (see :meth:`record_phases`).
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def record(self, event: EngineEvent) -> None:
        if event.kind == JOB_QUEUED:
            self.jobs += 1
        elif event.kind == JOB_DONE:
            self.completed += 1
        elif event.kind == JOB_FAILED:
            self.failed += 1
        elif event.kind == CACHE_HIT:
            self.cache_hits += 1
        elif event.kind == CACHE_MISS:
            self.cache_misses += 1
        elif event.kind == LINT_PASS:
            self.lint_passes += 1
        elif event.kind == LINT_DECIDED:
            self.lint_decided += 1
        elif event.kind == TASK_TIMEOUT:
            self.timeouts += 1
        elif event.kind == TASK_CRASHED:
            self.crashes += 1
        elif event.kind == TASK_RETRY:
            self.retries += 1
        elif event.kind == TASK_CANCELLED:
            self.cancelled += 1
        elif event.kind == POOL_DEGRADED:
            self.degraded += 1
        if event.kind in (ENGINE_WON, LINT_DECIDED) and event.engine:
            self.wins_by_engine[event.engine] = (
                self.wins_by_engine.get(event.engine, 0) + 1
            )

    def record_phases(self, phases: Dict[str, float]) -> None:
        """Fold a tracer's phase-time aggregation into the stats.

        Called by the batch driver after a traced run; only phases with
        measurable time are kept so :meth:`report` stays quiet otherwise.
        """
        for phase, seconds in phases.items():
            if seconds > 0.0:
                self.phase_seconds[phase] = (
                    self.phase_seconds.get(phase, 0.0) + seconds
                )

    def report(self) -> str:
        """A one-paragraph human-readable summary."""
        wins = ", ".join(
            f"{engine}={count}"
            for engine, count in sorted(self.wins_by_engine.items())
        )
        lines = [
            f"jobs: {self.jobs} queued, {self.completed} completed, "
            f"{self.failed} failed",
            f"lint: {self.lint_passes} passes, {self.lint_decided} "
            f"statically decided",
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses",
            f"pool: {self.timeouts} timeouts, {self.crashes} crashes, "
            f"{self.retries} retries, {self.cancelled} cancelled",
        ]
        if wins:
            lines.append(f"wins: {wins}")
        if self.phase_seconds:
            breakdown = " ".join(
                f"{phase}={seconds:.3f}s"
                for phase, seconds in sorted(self.phase_seconds.items())
            )
            lines.append(f"phases: {breakdown}")
        if self.degraded:
            lines.append("pool degraded to in-process execution")
        return "\n".join(lines)


class EventLog:
    """Collects :class:`EngineEvent` objects and mirrors them to logging."""

    def __init__(self, logger: Optional[logging.Logger] = None):
        self.events: List[EngineEvent] = []
        self.stats = EngineStats()
        self._logger = logger or logging.getLogger("repro.engine")

    def emit(
        self,
        kind: str,
        job_id: str = "",
        engine: Optional[str] = None,
        elapsed: Optional[float] = None,
        detail: str = "",
    ) -> EngineEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        event = EngineEvent(
            kind=kind, job_id=job_id, engine=engine, elapsed=elapsed, detail=detail
        )
        self.events.append(event)
        self.stats.record(event)
        obs.event(f"engine.{kind}")
        level = (
            logging.WARNING
            if kind in (TASK_CRASHED, TASK_TIMEOUT, JOB_FAILED, POOL_DEGRADED)
            else logging.INFO
        )
        self._logger.log(level, "%s", event)
        return event

    def of_kind(self, kind: str) -> List[EngineEvent]:
        return [event for event in self.events if event.kind == kind]
