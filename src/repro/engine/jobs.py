"""Verification job specifications and structured results.

A :class:`VerificationJob` freezes everything needed to verify one property
of one STG — the STG itself, the property, the candidate engines, and the
resource limits — so a job can be pickled into a worker process, hashed into
a cache key, and replayed deterministically.  A :class:`JobResult` follows
the repo's reports-not-booleans convention: it carries the verdict *and* its
evidence (winning engine, witness description, engine statistics, timings).

The mapping from engine name to checker lives in the :data:`ENGINES`
registry; :func:`register_engine` lets extensions (and the robustness test
suite) add engines without touching this module.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs
from repro.exceptions import ReproError, SolverLimitError
from repro.stg.stg import STG

#: Properties the engine subsystem can verify.
PROPERTIES = ("usc", "csc", "normalcy")

#: Sound verdicts — the property was definitely decided.
VERDICT_HOLDS = "holds"
VERDICT_VIOLATED = "violated"
#: Unsound verdicts — the engine gave up; never cached, portfolio keeps going.
VERDICT_TIMEOUT = "timeout"
VERDICT_LIMIT = "limit"
VERDICT_ERROR = "error"

SOUND_VERDICTS = frozenset({VERDICT_HOLDS, VERDICT_VIOLATED})

#: Where a result came from: a live engine run, the result cache, or the
#: static lint pre-filter (stage zero — no state space was built at all).
SOURCE_FRESH = "fresh"
SOURCE_CACHE = "cache"
SOURCE_LINT = "lint"

# Both dataclasses have a field named ``property`` (the checked property),
# which shadows the builtin inside their class bodies; alias it for decorators.
_property = property


@dataclass(frozen=True)
class VerificationJob:
    """An immutable, picklable job spec: verify ``property`` of ``stg``."""

    stg: STG = field(compare=False)
    property: str = "csc"
    engines: Tuple[str, ...] = ("ilp",)
    timeout: Optional[float] = None
    node_budget: Optional[int] = None
    #: Intra-check workers for the ilp engine's frontier-split search
    #: (0 = sequential); excluded from the cache identity like the other
    #: resource knobs — it cannot change the verdict.
    workers: int = 0
    #: Let the ilp engine consume the structural FactBase (facts-licensed
    #: prescreen, clique-capacity pruning).  Verdicts and witnesses are
    #: byte-identical either way, so — like ``workers`` — the flag is
    #: excluded from the cache identity.
    use_facts: bool = False
    #: Run the repro.refine CEGAR prescreen / in-search tightening in the
    #: ilp engine.  Same contract as ``use_facts``: verdicts, witnesses and
    #: candidate counts are byte-identical, so the flag is excluded from
    #: the cache identity too.
    use_refinement: bool = False
    #: Directory of a :class:`repro.engine.cache.ResultCache` whose
    #: refine-cert domain the refinement prescreen may replay verified
    #: certificates from (and persist new ones to).  Purely a perf hint —
    #: cached material is always re-verified — so, like ``workers``, it is
    #: excluded from the cache identity.  Empty/None disables the store.
    cert_cache_dir: Optional[str] = None
    name: str = ""
    stg_hash: str = ""

    def __post_init__(self):
        if self.property not in PROPERTIES:
            raise ReproError(
                f"unknown property {self.property!r}; expected one of "
                f"{', '.join(PROPERTIES)}"
            )
        if not self.engines:
            raise ReproError("a job needs at least one engine")
        for engine in self.engines:
            if engine not in ENGINES:
                raise ReproError(
                    f"unknown engine {engine!r}; registered: "
                    f"{', '.join(sorted(ENGINES))}"
                )
        object.__setattr__(self, "engines", tuple(self.engines))
        if not self.name:
            object.__setattr__(self, "name", self.stg.name)
        if not self.stg_hash:
            object.__setattr__(self, "stg_hash", self.stg.content_hash())

    @_property
    def job_id(self) -> str:
        """Stable, human-readable id: name, property and content digest."""
        return f"{self.name}:{self.property}@{self.stg_hash[:10]}"

    def cache_fields(self) -> Tuple[str, str]:
        """The verdict-relevant identity: (content hash, property).

        Engine choice and resource limits are excluded on purpose — a sound
        verdict does not depend on which engine produced it or how much
        budget it was given, and unsound results are never cached.
        """
        return (self.stg_hash, self.property)


@dataclass
class JobResult:
    """Outcome of one job — verdict plus evidence."""

    job_id: str
    name: str
    property: str
    verdict: str
    engine: Optional[str] = None
    holds: Optional[bool] = None
    elapsed: float = 0.0
    from_cache: bool = False
    #: ``fresh`` / ``cache`` / ``lint`` — how the verdict was obtained.
    source: str = SOURCE_FRESH
    attempts: int = 1
    witness: Optional[str] = None
    stats: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: Machine-checkable evidence for lint-decided verdicts (see
    #: :func:`repro.lint.verify_certificate`); ``None`` for engine verdicts.
    certificate: Optional[Dict[str, Any]] = None

    @_property
    def sound(self) -> bool:
        return self.verdict in SOUND_VERDICTS

    def __bool__(self) -> bool:
        return self.holds is True

    def signature(self) -> Tuple:
        """Everything except timings — equal across deterministic reruns."""
        payload = asdict(self)
        payload.pop("elapsed")
        payload["stats"] = tuple(sorted(payload["stats"].items()))
        return tuple(sorted(payload.items()))


#: Engine registry: name -> callable(job) -> (holds, witness, stats).
EngineFn = Callable[[VerificationJob], Tuple[bool, Optional[str], Dict[str, Any]]]
ENGINES: Dict[str, EngineFn] = {}


def register_engine(name: str, fn: EngineFn) -> None:
    """Register (or replace) a verification engine under ``name``."""
    ENGINES[name] = fn


def engine_names() -> Tuple[str, ...]:
    return tuple(sorted(ENGINES))


def execute_engine(job: VerificationJob, engine: str) -> JobResult:
    """Run one engine on one job in-process and report the outcome.

    Engine exceptions never escape: resource exhaustion becomes a ``limit``
    verdict, any other :class:`ReproError` (or unexpected exception) becomes
    an ``error`` verdict, so a portfolio can keep racing the other engines.
    """
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}; registered: {', '.join(engine_names())}"
        )
    started = time.perf_counter()
    try:
        with obs.trace(f"engine.{engine}"):
            holds, witness, stats = ENGINES[engine](job)
    except SolverLimitError as exc:
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            property=job.property,
            verdict=VERDICT_LIMIT,
            engine=engine,
            elapsed=time.perf_counter() - started,
            error=str(exc),
        )
    except ReproError as exc:
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            property=job.property,
            verdict=VERDICT_ERROR,
            engine=engine,
            elapsed=time.perf_counter() - started,
            error=str(exc),
        )
    except Exception as exc:  # engine bug: report, do not kill the pool
        return JobResult(
            job_id=job.job_id,
            name=job.name,
            property=job.property,
            verdict=VERDICT_ERROR,
            engine=engine,
            elapsed=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
        )
    return JobResult(
        job_id=job.job_id,
        name=job.name,
        property=job.property,
        verdict=VERDICT_HOLDS if holds else VERDICT_VIOLATED,
        engine=engine,
        holds=holds,
        elapsed=time.perf_counter() - started,
        witness=witness,
        stats=stats,
    )


def failure_result(
    job: VerificationJob,
    verdict: str,
    engine: Optional[str] = None,
    error: Optional[str] = None,
    elapsed: float = 0.0,
    attempts: int = 1,
) -> JobResult:
    """Synthesise an unsound result for pool-level failures (timeout/crash)."""
    return JobResult(
        job_id=job.job_id,
        name=job.name,
        property=job.property,
        verdict=verdict,
        engine=engine,
        elapsed=elapsed,
        attempts=attempts,
        error=error,
    )


# -- built-in engines ---------------------------------------------------------


def _unsupported(engine: str, job: VerificationJob) -> ReproError:
    return ReproError(
        f"engine {engine!r} does not support property {job.property!r}"
    )


def _run_ilp(job: VerificationJob):
    """The paper's method: unfolding + integer programming."""
    from repro.core import check_csc, check_normalcy, check_usc

    if job.property == "normalcy":
        report = check_normalcy(
            job.stg, node_budget=job.node_budget, workers=job.workers
        )
        violating = report.violating_signals()
        witness = (
            f"abnormal signals: {', '.join(violating)}" if violating else None
        )
        return (
            report.normal,
            witness,
            {
                "prefix": dict(report.prefix_stats),
                "search_nodes": report.search_stats.nodes,
            },
        )
    check = check_usc if job.property == "usc" else check_csc
    cert_cache = None
    if job.use_refinement and job.cert_cache_dir:
        # built worker-side: ResultCache holds no file handles, so a fresh
        # instance per process is cheap and fork-safe
        from repro.engine.cache import ResultCache

        cert_cache = ResultCache(job.cert_cache_dir)
    report = check(
        job.stg,
        node_budget=job.node_budget,
        workers=job.workers,
        use_facts=job.use_facts,
        use_refinement=job.use_refinement,
        cert_cache=cert_cache,
    )
    return (
        report.holds,
        report.witness.describe() if report.witness is not None else None,
        {
            "prefix": dict(report.prefix_stats),
            "search_nodes": report.search_stats.nodes,
            "usc_only_candidates": report.usc_only_candidates,
        },
    )


def _run_sat(job: VerificationJob):
    """The SAT back-end (CDCL over the CNF conflict encoding)."""
    from repro.sat import check_csc_sat, check_usc_sat

    if job.property == "normalcy":
        raise _unsupported("sat", job)
    check = check_usc_sat if job.property == "usc" else check_csc_sat
    report = check(job.stg)
    witness = None
    if report.witness_traces is not None:
        trace_a, trace_b = report.witness_traces
        witness = (
            f"{job.property.upper()} conflict: "
            f"[{', '.join(trace_a)}] vs [{', '.join(trace_b)}]"
        )
    return (
        report.holds,
        witness,
        {
            "vars": report.num_vars,
            "clauses": report.num_clauses,
            "sat_conflicts": report.sat_conflicts,
            "candidates_blocked": report.candidates_blocked,
        },
    )


def _run_bdd(job: VerificationJob):
    """The symbolic (Petrify-style) state-graph baseline."""
    from repro.symbolic import symbolic_check

    if job.property == "normalcy":
        raise _unsupported("bdd", job)
    report = symbolic_check(job.stg, job.property)
    witness = None
    if report.witness is not None:
        code_a, code_b = report.witness
        witness = f"conflicting codes: {code_a} vs {code_b}"
    return (
        report.holds,
        witness,
        {
            "states": report.num_states,
            "conflict_pairs": report.num_conflict_pairs,
            "bdd_nodes": report.bdd_nodes,
        },
    )


def _run_sg(job: VerificationJob):
    """The explicit state graph — the ground-truth oracle."""
    from repro.stg.normalcy import check_normalcy_state_graph
    from repro.stg.stategraph import build_state_graph

    if job.property == "normalcy":
        report = check_normalcy_state_graph(job.stg)
        violating = report.violating_signals()
        witness = (
            f"abnormal signals: {', '.join(violating)}" if violating else None
        )
        return report.normal, witness, {}
    graph = build_state_graph(job.stg)
    conflicts = (
        graph.usc_conflicts(first_only=True)
        if job.property == "usc"
        else graph.csc_conflicts(first_only=True)
    )
    witness = conflicts[0].describe(job.stg) if conflicts else None
    return (
        not conflicts,
        witness,
        {"states": graph.num_states, "arcs": graph.num_arcs},
    )


register_engine("ilp", _run_ilp)
register_engine("sat", _run_sat)
register_engine("bdd", _run_bdd)
register_engine("sg", _run_sg)
