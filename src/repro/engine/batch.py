"""Batch verification driver: many STGs × many properties through the pool.

This is the back-end of the ``repro-stg batch`` subcommand.  Targets are
either registered benchmark model names (``TABLE1_BENCHMARKS`` /
``CLASSIC_MODELS``) or paths to astg ``.g`` files; every target × property
pair becomes one :class:`~repro.engine.jobs.VerificationJob`, the jobs flow
through the cache + portfolio pipeline of :mod:`repro.engine.portfolio`,
and the outcome is a :class:`BatchReport` with per-job rows and the
aggregate :class:`~repro.engine.events.EngineStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.engine import events as ev
from repro.engine.cache import ResultCache
from repro.engine.jobs import JobResult, VerificationJob
from repro.engine.pool import WorkerPool
from repro.engine.portfolio import run_jobs
from repro.exceptions import ReproError
from repro.stg.stg import STG
from repro.utils.tables import format_table


@dataclass
class BatchReport:
    """Everything one batch run produced."""

    results: List[JobResult]
    stats: ev.EngineStats
    elapsed: float

    @property
    def all_sound(self) -> bool:
        return all(result.sound for result in self.results)

    @property
    def violations(self) -> List[JobResult]:
        return [r for r in self.results if r.holds is False]

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.from_cache)

    @property
    def lint_decided(self) -> List[JobResult]:
        """Jobs settled by the static lint pre-filter (no pool work at all)."""
        from repro.engine.jobs import SOURCE_LINT

        return [r for r in self.results if r.source == SOURCE_LINT]


def resolve_target(target: str) -> Tuple[str, STG]:
    """A registered model name, or a path to a ``.g`` file.

    Every way a target can be bad — unknown name, unreadable file,
    undecodable bytes, unparsable astg text — raises :class:`ReproError`
    naming the target, so callers can turn it into a structured per-target
    error (see :func:`build_jobs_reporting`) instead of crashing.
    """
    from repro.models import CLASSIC_MODELS, TABLE1_BENCHMARKS

    if target in TABLE1_BENCHMARKS:
        return target, TABLE1_BENCHMARKS[target]()
    if target in CLASSIC_MODELS:
        return target, CLASSIC_MODELS[target]()
    if target.endswith(".g"):
        from repro.stg.parser import parse_stg

        try:
            with open(target, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ReproError(f"cannot read {target}: {exc}") from exc
        except UnicodeDecodeError as exc:
            raise ReproError(
                f"cannot decode {target}: not UTF-8 text ({exc})"
            ) from exc
        try:
            stg = parse_stg(text, filename=target)
        except ReproError as exc:
            raise ReproError(f"cannot parse {target}: {exc}") from exc
        return stg.name, stg
    raise ReproError(
        f"unknown target {target!r}: not a registered model name and not a "
        f".g file"
    )


def build_jobs(
    targets: Sequence[str],
    properties: Sequence[str] = ("csc",),
    engines: Sequence[str] = ("ilp",),
    timeout: Optional[float] = None,
    node_budget: Optional[int] = None,
    workers: int = 0,
) -> List[VerificationJob]:
    """One job per target × property, all racing the same engine portfolio."""
    jobs: List[VerificationJob] = []
    for target in targets:
        name, stg = resolve_target(target)
        for prop in properties:
            jobs.append(
                VerificationJob(
                    stg=stg,
                    property=prop,
                    engines=tuple(engines),
                    timeout=timeout,
                    node_budget=node_budget,
                    workers=workers,
                    name=name,
                )
            )
    return jobs


def build_jobs_reporting(
    targets: Sequence[str],
    properties: Sequence[str] = ("csc",),
    engines: Sequence[str] = ("ilp",),
    timeout: Optional[float] = None,
    node_budget: Optional[int] = None,
    workers: int = 0,
) -> Tuple[List[VerificationJob], List[JobResult]]:
    """Like :func:`build_jobs`, but bad targets become structured errors.

    A target that cannot be resolved (unreadable, undecodable or unparsable
    ``.g`` file, unknown model name) yields one ``error``-verdict
    :class:`JobResult` per requested property instead of aborting the whole
    batch; the good targets still become jobs.  The CLI prepends the error
    rows to the batch report (making it exit 2 via ``all_sound``), and the
    service maps the same failures to HTTP 400 payloads.
    """
    from repro.engine.jobs import VERDICT_ERROR

    jobs: List[VerificationJob] = []
    errors: List[JobResult] = []
    for target in targets:
        try:
            name, stg = resolve_target(target)
        except ReproError as exc:
            for prop in properties:
                errors.append(
                    JobResult(
                        job_id=f"{target}:{prop}@invalid",
                        name=target,
                        property=prop,
                        verdict=VERDICT_ERROR,
                        error=str(exc),
                    )
                )
            continue
        for prop in properties:
            try:
                jobs.append(
                    VerificationJob(
                        stg=stg,
                        property=prop,
                        engines=tuple(engines),
                        timeout=timeout,
                        node_budget=node_budget,
                        workers=workers,
                        name=name,
                    )
                )
            except ReproError as exc:  # unknown property/engine names
                errors.append(
                    JobResult(
                        job_id=f"{name}:{prop}@invalid",
                        name=name,
                        property=prop,
                        verdict=VERDICT_ERROR,
                        error=str(exc),
                    )
                )
    return jobs, errors


def default_targets() -> List[str]:
    """Every registered Table 1 benchmark model, in the paper's row order."""
    from repro.models import TABLE1_BENCHMARKS

    return list(TABLE1_BENCHMARKS)


def run_batch(
    jobs: Sequence[VerificationJob],
    max_workers: Optional[int] = None,
    max_retries: int = 1,
    cache_dir: Optional[Union[str, "ResultCache"]] = None,
    events: Optional[ev.EventLog] = None,
) -> BatchReport:
    """Run ``jobs`` through a fresh pool; returns the structured report."""
    events = events or ev.EventLog()
    cache: Optional[ResultCache]
    if cache_dir is None:
        cache = None
    elif isinstance(cache_dir, ResultCache):
        cache = cache_dir
    else:
        cache = ResultCache(cache_dir)
    started = time.perf_counter()
    with WorkerPool(
        max_workers=max_workers, max_retries=max_retries, events=events
    ) as pool:
        results = run_jobs(jobs, pool, cache=cache, events=events)
    tracer = obs.get_tracer()
    if tracer.enabled:
        # per-phase wall time of the run (in-process work only: engines that
        # ran inside forked workers traced into their own process's registry)
        events.stats.record_phases(tracer.phase_times())
    return BatchReport(
        results=results,
        stats=events.stats,
        elapsed=time.perf_counter() - started,
    )


def format_batch_report(report: BatchReport) -> str:
    """The batch table plus the aggregate stats footer."""
    headers = ["job", "property", "verdict", "engine", "time[s]", "source"]
    body = []
    for result in report.results:
        body.append(
            [
                result.name,
                result.property,
                result.verdict,
                result.engine or "-",
                f"{result.elapsed:.3f}",
                result.source,
            ]
        )
    table = format_table(headers, body, title="Batch verification")
    footer = report.stats.report()
    return (
        f"{table}\n\n{footer}\n"
        f"total wall time: {report.elapsed:.3f}s"
    )
