"""Content-addressed on-disk cache of verification results.

Results are keyed by what they *mean*, not by where they came from: the key
is the SHA-256 of the job's canonical STG content hash
(:func:`repro.stg.hashing.canonical_stg_hash`) plus the property name, under
a schema version.  Consequences:

* reordering places/transitions in a ``.g`` file, or rebuilding the same
  model programmatically, still hits the cache;
* a sound verdict cached from one engine is served to portfolios that do
  not even include that engine (verdicts are engine-independent);
* unsound results (timeout / limit / error) are **never** stored — a rerun
  with a bigger budget must actually rerun;
* bumping :data:`SCHEMA_VERSION` (or the hash scheme version) invalidates
  every entry without touching the files.

Entries are one JSON file each, written atomically (temp file + ``rename``)
and fanned out over 256 two-hex-digit subdirectories so that even millions
of entries keep directory listings fast; the mechanics live in the shared
:class:`repro.utils.filestore.FileStore` (also used by the fuzz corpus).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.engine.jobs import SOURCE_CACHE, JobResult, VerificationJob
from repro.utils.filestore import FileStore

#: Bump to invalidate every stored result (e.g. when JobResult grows fields).
#: v3: analysis FactBase entries share the store (``get_facts``/``put_facts``).
#: v4: refinement certificate entries (``get_refine_cert``/``put_refine_cert``)
#:     and per-STG cut logs (``get_refine_cuts``/``put_refine_cuts``) share
#:     the store under their own key domains.
SCHEMA_VERSION = 4


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else the XDG-style ``~/.cache/repro-stg``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-stg"


class ResultCache:
    """A directory of cached :class:`JobResult` objects."""

    def __init__(self, root: Union[str, Path]):
        self._store = FileStore(root)
        self.hits = 0
        self.misses = 0

    @property
    def root(self) -> Path:
        return self._store.root

    # -- keys ----------------------------------------------------------------

    def key_for(self, job: VerificationJob) -> str:
        stg_hash, prop = job.cache_fields()
        material = f"repro-result-cache:v{SCHEMA_VERSION}\n{stg_hash}\n{prop}\n"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self._store.path_for(key)

    def _write_atomic(self, path: Path, payload: Dict[str, object]) -> bool:
        """Write one entry atomically via the shared :class:`FileStore`."""
        return self._store.write_atomic(path, payload)

    # -- store/load ----------------------------------------------------------

    def get(self, job: VerificationJob) -> Optional[JobResult]:
        """The cached result for ``job``, re-badged ``from_cache=True``."""
        path = self._path(self.key_for(job))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = JobResult(
                job_id=payload["job_id"],
                name=payload["name"],
                property=payload["property"],
                verdict=payload["verdict"],
                engine=payload.get("engine"),
                holds=payload.get("holds"),
                elapsed=payload.get("elapsed", 0.0),
                from_cache=True,
                source=SOURCE_CACHE,
                attempts=payload.get("attempts", 1),
                witness=payload.get("witness"),
                stats=payload.get("stats", {}),
                error=payload.get("error"),
                certificate=payload.get("certificate"),
            )
        except KeyError:
            self.misses += 1
            return None
        if not result.sound:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, job: VerificationJob, result: JobResult) -> bool:
        """Store a *sound* result; returns whether anything was written."""
        if not result.sound:
            return False
        payload = {
            "schema": SCHEMA_VERSION,
            "job_id": result.job_id,
            "name": result.name,
            "property": result.property,
            "verdict": result.verdict,
            "engine": result.engine,
            "holds": result.holds,
            "elapsed": result.elapsed,
            "attempts": result.attempts,
            "witness": result.witness,
            "stats": result.stats,
            "error": result.error,
            # the *producing* source ("fresh"/"lint"); get() rebadges "cache"
            "source": result.source,
            "certificate": result.certificate,
            "domain": "result",
        }
        return self._write_atomic(self._path(self.key_for(job)), payload)

    # -- analysis facts ------------------------------------------------------

    def facts_key_for(self, stg_hash: str) -> str:
        """Key of the serialized :class:`repro.analysis.FactBase` of one STG.

        Same store and schema version as results (a schema bump invalidates
        facts too), but a distinct key domain so a facts entry can never
        shadow a verdict.
        """
        material = f"repro-facts-cache:v{SCHEMA_VERSION}\n{stg_hash}\n"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def get_facts(self, stg_hash: str) -> Optional[Dict[str, object]]:
        """The cached ``FactBase.to_dict()`` payload, or ``None``."""
        path = self._path(self.facts_key_for(stg_hash))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION or "facts" not in payload:
            self.misses += 1
            return None
        self.hits += 1
        body = payload.get("body")
        return body if isinstance(body, dict) else None

    def put_facts(self, stg_hash: str, body: Dict[str, object]) -> bool:
        """Store a ``FactBase.to_dict()`` payload atomically."""
        payload = {
            "schema": SCHEMA_VERSION,
            "facts": True,
            "property": "analysis-facts",
            "verdict": "facts",
            "domain": "facts",
            "body": body,
        }
        return self._write_atomic(self._path(self.facts_key_for(stg_hash)), payload)

    # -- refinement certificates ---------------------------------------------

    @staticmethod
    def _refine_version() -> int:
        # imported lazily: repro.refine pulls in scipy-adjacent modules the
        # cache must not require
        from repro.refine.certificate import REFINE_VERSION

        return int(REFINE_VERSION)

    def refine_cert_key_for(
        self, stg_hash: str, place: str, sign: int, cut_hash: str
    ) -> str:
        """Key of one verified dual bound: the objective's ``(place, sign)``
        against the exact cut state (order-sensitive hash) it was certified
        under.  Distinct key domain — a cert entry can never shadow a
        verdict or a facts entry."""
        material = (
            f"repro-refine-cert:v{SCHEMA_VERSION}\n{stg_hash}\n{place}\n"
            f"{sign}\n{cut_hash}\n"
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def get_refine_cert(
        self, stg_hash: str, place: str, sign: int, cut_hash: str
    ) -> Optional[Dict[str, Any]]:
        """The cached bound payload (``{"bound": ..., "cuts_after": ...}``),
        or ``None``.  Callers re-verify the bound with exact arithmetic —
        the store is a shortcut, never an authority."""
        path = self._path(self.refine_cert_key_for(stg_hash, place, sign, cut_hash))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            payload.get("schema") != SCHEMA_VERSION
            or payload.get("domain") != "refine-cert"
            or payload.get("refine_version") != self._refine_version()
        ):
            self.misses += 1
            return None
        body = payload.get("body")
        if not isinstance(body, dict):
            self.misses += 1
            return None
        self.hits += 1
        return body

    def put_refine_cert(
        self,
        stg_hash: str,
        place: str,
        sign: int,
        cut_hash: str,
        body: Dict[str, Any],
    ) -> bool:
        """Store one verified dual bound atomically."""
        payload = {
            "schema": SCHEMA_VERSION,
            "domain": "refine-cert",
            "property": "refine-cert",
            "verdict": "certificate",
            "refine_version": self._refine_version(),
            "stg_hash": stg_hash,
            "cut_hash": cut_hash,
            "cuts_referenced": bool(body.get("cuts_referenced")),
            "body": body,
        }
        return self._write_atomic(
            self._path(self.refine_cert_key_for(stg_hash, place, sign, cut_hash)),
            payload,
        )

    def refine_cuts_key_for(self, stg_hash: str) -> str:
        """Key of one STG's refinement cut log (discovery order)."""
        material = f"repro-refine-cuts:v{SCHEMA_VERSION}\n{stg_hash}\n"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def get_refine_cuts(self, stg_hash: str) -> Optional[List[Dict[str, Any]]]:
        """The cached cut log (list of ``Cut.to_dict()`` payloads), or
        ``None``.  Callers replay every cut through the exact verifier."""
        path = self._path(self.refine_cuts_key_for(stg_hash))
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            payload.get("schema") != SCHEMA_VERSION
            or payload.get("domain") != "refine-cuts"
        ):
            self.misses += 1
            return None
        body = payload.get("body")
        if not isinstance(body, list):
            self.misses += 1
            return None
        self.hits += 1
        return body

    def put_refine_cuts(
        self, stg_hash: str, cuts: List[Dict[str, Any]]
    ) -> bool:
        """Store one STG's cut log atomically."""
        payload = {
            "schema": SCHEMA_VERSION,
            "domain": "refine-cuts",
            "property": "refine-cuts",
            "verdict": "cuts",
            "stg_hash": stg_hash,
            "body": cuts,
        }
        return self._write_atomic(
            self._path(self.refine_cuts_key_for(stg_hash)), payload
        )

    # -- maintenance ---------------------------------------------------------

    def _entries(self):
        """Every finished entry file (in-flight ``.tmp-*`` files excluded —
        ``pathlib.glob`` matches dotfiles, unlike shell globs).  Delegates
        to the shared :meth:`FileStore.entries`."""
        yield from self._store.entries()

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def stats(self) -> Dict[str, object]:
        """Inspect the on-disk store: entry counts, bytes, breakdowns.

        Reads every entry's JSON (cheap: one small file each), so operators
        can see what the store actually holds — entries by property, by
        verdict, by schema version (stale-schema entries are dead weight
        that :meth:`prune` with ``older_than=0`` will not remove but a
        schema bump made unreachable), plus age bounds for sizing a prune.
        """
        entries = 0
        total_bytes = 0
        by_property: Dict[str, int] = {}
        by_verdict: Dict[str, int] = {}
        by_schema: Dict[str, int] = {}
        by_domain: Dict[str, int] = {}
        oldest: Optional[float] = None
        newest: Optional[float] = None
        unreadable = 0
        if self.root.exists():
            for path in self._entries():
                try:
                    stat = path.stat()
                    payload = json.loads(path.read_text())
                except (OSError, ValueError):
                    unreadable += 1
                    continue
                entries += 1
                total_bytes += stat.st_size
                oldest = stat.st_mtime if oldest is None else min(oldest, stat.st_mtime)
                newest = stat.st_mtime if newest is None else max(newest, stat.st_mtime)
                prop = str(payload.get("property", "?"))
                by_property[prop] = by_property.get(prop, 0) + 1
                verdict = str(payload.get("verdict", "?"))
                by_verdict[verdict] = by_verdict.get(verdict, 0) + 1
                schema = str(payload.get("schema", "?"))
                by_schema[schema] = by_schema.get(schema, 0) + 1
                domain = str(
                    payload.get(
                        "domain", "facts" if payload.get("facts") else "result"
                    )
                )
                by_domain[domain] = by_domain.get(domain, 0) + 1
        return {
            "root": str(self.root),
            "schema_version": SCHEMA_VERSION,
            "entries": entries,
            "total_bytes": total_bytes,
            "unreadable": unreadable,
            "by_property": by_property,
            "by_verdict": by_verdict,
            "by_schema": by_schema,
            "by_domain": by_domain,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def prune(
        self, older_than: float, now: Optional[float] = None
    ) -> int:
        """Delete entries last written more than ``older_than`` seconds ago.

        Also sweeps orphaned ``.tmp-*`` files of the same age (leftovers of
        writers killed between ``mkstemp`` and ``rename``).  Returns the
        number of cache entries removed; concurrent writers are safe — an
        entry rewritten after the cutoff check simply survives the next
        prune, and unlink races are tolerated.

        A consistency pass follows the age sweep: a ``refine-cert`` entry
        whose bound was certified under cuts (``cuts_referenced``) is only
        replayable through the STG's ``refine-cuts`` log, so if the age
        sweep removed that log the cert entries referencing it are removed
        too — pruning never leaves certs pointing at a vanished cut log.
        """
        if older_than < 0:
            raise ValueError("older_than must be >= 0 seconds")
        cutoff = (now if now is not None else time.time()) - older_than
        removed = 0
        if not self.root.exists():
            return removed
        candidates = [(path, True) for path in self._entries()]
        candidates += [(path, False) for path in self._store.tmp_files()]
        for path, is_entry in candidates:
            try:
                if path.stat().st_mtime >= cutoff:
                    continue
                path.unlink()
            except OSError:
                continue  # concurrent prune/rewrite; nothing to do
            if is_entry:
                removed += 1
        # consistency pass: drop cut-referencing certs without a cut log
        cut_logs = set()
        cert_entries = []
        for path in self._entries():
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            domain = payload.get("domain")
            if domain == "refine-cuts":
                cut_logs.add(payload.get("stg_hash"))
            elif domain == "refine-cert" and payload.get("cuts_referenced"):
                cert_entries.append((path, payload.get("stg_hash")))
        for path, stg_hash in cert_entries:
            if stg_hash in cut_logs:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
