"""Bounded FIFO admission queue with backpressure for the serve subsystem.

The queue is the service's only admission point: ``offer`` either accepts a
job (FIFO order, bounded depth) or refuses it immediately — it never blocks
the HTTP handler.  A refusal means the caller should answer HTTP 429 with
the ``Retry-After`` estimate from :meth:`AdmissionQueue.retry_after`, which
is derived from the current depth and an exponentially-weighted moving
average of recent job service times (so the hint tracks the actual drain
rate instead of a constant).

Draining: :meth:`close` flips the queue into drain mode — every further
``offer`` raises :class:`QueueClosed` (HTTP 503) while ``take`` keeps
serving the already-accepted backlog until it is empty.  Accepted work is
therefore never dropped by the queue itself; only :meth:`clear` (the
hard-cancel path) removes entries, and it returns them so the caller can
mark the jobs cancelled rather than lose them silently.

All methods are thread-safe; ``offer`` is called from HTTP handler threads,
``take`` from the dispatcher.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Deque, List, Optional

from repro.exceptions import ReproError

#: Fallback Retry-After (seconds) before any service time was observed.
_DEFAULT_RETRY_AFTER = 1.0

#: EWMA smoothing factor for the per-job service-time estimate.
_EWMA_ALPHA = 0.3


class QueueClosed(ReproError):
    """``offer`` was called on a draining queue (HTTP 503)."""


class AdmissionQueue:
    """A bounded, closable FIFO of pending service jobs."""

    def __init__(self, limit: int = 64):
        if limit < 1:
            raise ReproError("queue limit must be >= 1")
        self.limit = limit
        self._items: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        # admission accounting (exported by /v1/metrics)
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.high_water = 0
        self._service_time_ewma: Optional[float] = None

    # -- admission -------------------------------------------------------------

    def offer(self, item: Any) -> bool:
        """Enqueue ``item``; ``False`` when full, :class:`QueueClosed` when
        draining."""
        with self._lock:
            if self._closed:
                raise QueueClosed("service is draining; not admitting new work")
            self.offered += 1
            if len(self._items) >= self.limit:
                self.rejected += 1
                return False
            self._items.append(item)
            self.accepted += 1
            self.high_water = max(self.high_water, len(self._items))
            self._available.notify()
            return True

    # -- consumption -----------------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Block up to ``timeout`` seconds for the next item; ``None`` when
        nothing arrived (or the queue is closed and empty)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._available.wait(remaining)
            return self._items.popleft()

    def drain_batch(self, max_items: int) -> List[Any]:
        """Immediately take up to ``max_items`` more entries (no blocking)."""
        taken: List[Any] = []
        with self._lock:
            while self._items and len(taken) < max_items:
                taken.append(self._items.popleft())
        return taken

    def clear(self) -> List[Any]:
        """Remove and return every queued entry (the hard-cancel path)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._available.notify_all()
            return items

    # -- drain -----------------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; ``take`` keeps draining the accepted backlog."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- introspection ---------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def note_service_time(self, seconds: float) -> None:
        """Feed one completed job's wall time into the drain-rate estimate."""
        if seconds < 0:
            return
        with self._lock:
            if self._service_time_ewma is None:
                self._service_time_ewma = seconds
            else:
                self._service_time_ewma = (
                    _EWMA_ALPHA * seconds
                    + (1.0 - _EWMA_ALPHA) * self._service_time_ewma
                )

    def retry_after(self) -> int:
        """A whole-seconds ``Retry-After`` hint for rejected clients.

        Estimates when a queue slot frees up: the time to drain one entry
        (the EWMA of recent service times) — clients re-attempting after it
        land when roughly one slot has opened, staggering the retry storm.
        """
        with self._lock:
            per_job = self._service_time_ewma
        if per_job is None or per_job <= 0:
            return int(_DEFAULT_RETRY_AFTER)
        return max(1, int(math.ceil(per_job)))

    def stats(self) -> dict:
        """The queue's metrics snapshot (exported by ``/v1/metrics``)."""
        with self._lock:
            return {
                "depth": len(self._items),
                "limit": self.limit,
                "high_water": self.high_water,
                "offered": self.offered,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "closed": self._closed,
                "service_time_ewma_s": self._service_time_ewma,
            }
