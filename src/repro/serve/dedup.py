"""In-flight request deduplication by canonical STG content hash.

The on-disk :class:`~repro.engine.cache.ResultCache` already collapses
*sequential* duplicates — the second identical request is a cache hit.  What
it cannot collapse is *concurrent* duplicates: two clients posting the same
STG while the first verification is still queued or running would both miss
the cache and both occupy pool workers.  The :class:`DedupIndex` closes that
window: the first request of a given identity becomes the **primary**, every
identical request that arrives before the primary publishes becomes a
**follower** that never touches the admission queue — it is resolved with a
copy of the primary's results the moment they land.

The identity is :meth:`repro.serve.protocol.CheckRequest.dedup_key` — the
canonical STG content hash plus the property set, engine portfolio and
resource limits, i.e. everything that could change the reported outcome.

Thread-safety: ``acquire`` runs on HTTP handler threads, ``complete`` on the
dispatcher; one lock serialises the index.  The lock is held only *inside*
each call — the moment ``acquire`` returns, the dispatcher may ``complete``
the key and resolve the follower ids it recorded.  Callers must therefore
make a follower's job id resolvable (register it in their job table)
*before* calling ``acquire``; ids that ``complete``/``release`` return but
the caller cannot resolve are silently lost.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable, List, Optional, Tuple


class DedupIndex:
    """Tracks in-flight request identities and their follower job ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._primaries: Dict[Hashable, str] = {}
        self._followers: Dict[Hashable, List[str]] = {}
        self.hits = 0

    def acquire(self, key: Hashable, job_id: str) -> Optional[str]:
        """Register ``job_id`` under ``key``.

        Returns ``None`` when ``job_id`` became the primary (the caller must
        enqueue it and later call :meth:`complete`), or the primary's job id
        when ``job_id`` was attached as a follower (the caller must *not*
        enqueue it).
        """
        with self._lock:
            primary = self._primaries.get(key)
            if primary is None:
                self._primaries[key] = job_id
                self._followers[key] = []
                return None
            self._followers[key].append(job_id)
            self.hits += 1
            return primary

    def complete(self, key: Hashable) -> List[str]:
        """Resolve ``key``: returns the follower ids and frees the slot.

        Idempotent — completing an unknown key returns no followers (the
        primary may have been rejected by the queue before registration was
        rolled back; see :meth:`release`).
        """
        with self._lock:
            self._primaries.pop(key, None)
            return self._followers.pop(key, [])

    def release(self, key: Hashable, job_id: str) -> List[str]:
        """Roll back a failed admission of primary ``job_id``.

        Used when the primary was refused by the admission queue *after*
        registering: the slot is freed so the next identical request can
        become a fresh primary.  Any followers that raced in between are
        returned so the caller can fail them alongside the primary.
        """
        with self._lock:
            if self._primaries.get(key) == job_id:
                self._primaries.pop(key, None)
                return self._followers.pop(key, [])
            return []

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._primaries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "in_flight": len(self._primaries),
                "hits": self.hits,
                "followers_waiting": sum(
                    len(ids) for ids in self._followers.values()
                ),
            }

    def snapshot(self) -> Tuple[Dict[Hashable, str], Dict[Hashable, List[str]]]:
        """A consistent copy of the index (tests/debugging)."""
        with self._lock:
            return dict(self._primaries), {
                key: list(ids) for key, ids in self._followers.items()
            }
