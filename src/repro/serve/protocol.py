"""Wire schemas of the ``repro-serve/1`` HTTP/JSON protocol.

Every message the service sends or accepts is a JSON object wrapped in a
versioned envelope — ``{"schema": "repro-serve/1", ...}`` — so clients can
reject payloads from an incompatible server (and vice versa) before
interpreting a single field.  This module is deliberately transport-free:
it knows nothing about sockets, only about dictionaries, so the in-process
tests, the stdlib client and the HTTP handler all share one source of truth
for field names and validation.

A check request names its STG in exactly one of three ways:

* ``source`` — the astg ``.g`` text (parsed with the repo's parser);
* ``stg``    — the canonical JSON STG form (:func:`stg_from_json`);
* ``model``  — a registered benchmark model name (``TABLE1_BENCHMARKS`` /
  ``CLASSIC_MODELS``), resolved server-side.

Request options mirror the ``repro-stg check`` flags: ``properties`` (a list
over usc/csc/normalcy), ``engines`` (the portfolio to race), ``node_budget``,
``deadline`` (per-job wall-clock seconds) and ``use_facts`` (let the ilp
engine consume the structural facts of :mod:`repro.analysis`; verdicts are
byte-identical either way).  Validation failures raise
:class:`ProtocolError`, which the HTTP layer maps to a 400 with a JSON error
payload; nothing in this module raises anything else at a client's fault.

The canonical JSON STG form (``repro-stg-json/1``) round-trips through
:func:`repro.stg.hashing.canonical_stg_hash`: serialising and re-parsing an
STG yields the same content hash, so JSON submissions share cache entries
and dedup slots with ``.g`` submissions of the same net.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine.jobs import (
    PROPERTIES,
    SOUND_VERDICTS,
    JobResult,
    VerificationJob,
)
from repro.exceptions import ReproError
from repro.stg.stg import STG, SignalEdge

#: The protocol version tag carried by every envelope.
SCHEMA = "repro-serve/1"

#: The canonical JSON STG format tag (field ``format`` of a ``stg`` payload).
STG_JSON_FORMAT = "repro-stg-json/1"

#: Lifecycle states of a service job.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

#: States a client can stop polling at.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED, STATE_CANCELLED})


class ProtocolError(ReproError):
    """A malformed or unsatisfiable request payload (HTTP 400)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def envelope(**payload: Any) -> Dict[str, Any]:
    """Wrap ``payload`` fields in the versioned protocol envelope."""
    document: Dict[str, Any] = {"schema": SCHEMA}
    document.update(payload)
    return document


def error_payload(message: str, **extra: Any) -> Dict[str, Any]:
    """The JSON body of every non-2xx response."""
    return envelope(error=message, **extra)


# -- canonical JSON STG form ---------------------------------------------------


def stg_to_json(stg: STG) -> Dict[str, Any]:
    """Serialise ``stg`` into the canonical JSON form.

    The form mirrors what :func:`repro.stg.hashing.canonical_stg_form`
    hashes: signal declarations, places with their initial tokens,
    transitions with their labels (``None`` for dummies), arcs with weights,
    and the explicitly pinned components of the initial code.
    """
    net = stg.net
    marking = net.initial_marking
    return {
        "format": STG_JSON_FORMAT,
        "name": stg.name,
        "inputs": list(stg.inputs),
        "outputs": list(stg.outputs),
        "internal": list(stg.internal),
        "initial": dict(stg.declared_initial_code),
        "places": [
            [name, marking[index]] for index, name in enumerate(net.places)
        ],
        "transitions": [
            [name, None if stg.label(index) is None else str(stg.label(index))]
            for index, name in enumerate(net.transitions)
        ],
        "arcs": [[source, target, weight] for source, target, weight in net.arcs()],
    }


def _expect_names(payload: Mapping[str, Any], field: str) -> List[str]:
    value = payload.get(field, [])
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(f"stg field {field!r} must be a list of strings")
    return value


def stg_from_json(payload: Any) -> STG:
    """Parse the canonical JSON form back into an :class:`STG`.

    Raises :class:`ProtocolError` on any structural problem — including the
    net-level errors (duplicate nodes, undeclared signals) the STG builder
    itself reports.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("stg payload must be a JSON object")
    if payload.get("format") != STG_JSON_FORMAT:
        raise ProtocolError(
            f"unknown stg format {payload.get('format')!r} "
            f"(expected {STG_JSON_FORMAT!r})"
        )
    name = payload.get("name", "stg")
    if not isinstance(name, str) or not name:
        raise ProtocolError("stg field 'name' must be a non-empty string")
    try:
        stg = STG(
            name,
            inputs=_expect_names(payload, "inputs"),
            outputs=_expect_names(payload, "outputs"),
            internal=_expect_names(payload, "internal"),
        )
        for entry in payload.get("places", []):
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], int)
                or entry[1] < 0
            ):
                raise ProtocolError(
                    "stg places must be [name, tokens] pairs with tokens >= 0"
                )
            stg.add_place(entry[0], tokens=entry[1])
        for entry in payload.get("transitions", []):
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not isinstance(entry[0], str)
                or not (entry[1] is None or isinstance(entry[1], str))
            ):
                raise ProtocolError(
                    "stg transitions must be [name, label-or-null] pairs"
                )
            label = None if entry[1] is None else SignalEdge.parse(entry[1])
            stg.add_transition(entry[0], label)
        for entry in payload.get("arcs", []):
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) not in (2, 3)
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], str)
            ):
                raise ProtocolError(
                    "stg arcs must be [source, target] or [source, target, "
                    "weight] triples"
                )
            weight = entry[2] if len(entry) == 3 else 1
            if not isinstance(weight, int) or weight < 1:
                raise ProtocolError("stg arc weight must be a positive integer")
            stg.net.add_arc(entry[0], entry[1], weight)
        initial = payload.get("initial", {})
        if not isinstance(initial, Mapping):
            raise ProtocolError("stg field 'initial' must be an object")
        for signal, value in initial.items():
            if not isinstance(value, int) or value not in (0, 1):
                raise ProtocolError(
                    f"initial value of signal {signal!r} must be 0 or 1"
                )
            stg.set_initial_value(signal, value)
    except ProtocolError:
        raise
    except (ReproError, ValueError) as exc:
        raise ProtocolError(f"invalid stg payload: {exc}") from exc
    return stg


# -- check requests ------------------------------------------------------------


class CheckRequest:
    """A validated ``POST /v1/check`` payload, resolved to a live STG."""

    def __init__(
        self,
        stg: STG,
        name: str,
        properties: Tuple[str, ...],
        engines: Tuple[str, ...] = ("ilp",),
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
        use_facts: bool = False,
        use_refinement: bool = False,
    ):
        self.stg = stg
        self.name = name
        self.properties = properties
        self.engines = engines
        self.node_budget = node_budget
        self.deadline = deadline
        self.use_facts = use_facts
        self.use_refinement = use_refinement
        self.stg_hash = stg.content_hash()

    def jobs(
        self,
        default_deadline: Optional[float] = None,
        cert_cache_dir: Optional[str] = None,
    ) -> List[VerificationJob]:
        """One :class:`VerificationJob` per requested property.

        ``cert_cache_dir`` points refinement jobs at the service's result
        cache so their dual certificates persist across requests; it is a
        perf hint excluded from both the job cache identity and the request
        dedup key (certificates are always re-verified on replay).
        """
        deadline = self.deadline if self.deadline is not None else default_deadline
        try:
            return [
                VerificationJob(
                    stg=self.stg,
                    property=prop,
                    engines=self.engines,
                    timeout=deadline,
                    node_budget=self.node_budget,
                    use_facts=self.use_facts,
                    use_refinement=self.use_refinement,
                    cert_cache_dir=(
                        cert_cache_dir if self.use_refinement else None
                    ),
                    name=self.name,
                    stg_hash=self.stg_hash,
                )
                for prop in self.properties
            ]
        except ReproError as exc:  # unknown engine names surface here
            raise ProtocolError(str(exc)) from exc

    def dedup_key(self) -> Tuple:
        """The in-flight deduplication identity of this request.

        Content hash plus everything that can change the *reported* result:
        the property set, the engine portfolio and the resource limits.  Two
        concurrent requests with equal keys would do byte-identical work, so
        the second piggybacks on the first instead of queueing.
        """
        return (
            self.stg_hash,
            self.properties,
            self.engines,
            self.node_budget,
            self.deadline,
            self.use_facts,
            self.use_refinement,
        )


def parse_check_request(payload: Any) -> CheckRequest:
    """Validate a ``POST /v1/check`` body into a :class:`CheckRequest`."""
    if not isinstance(payload, Mapping):
        raise ProtocolError("request body must be a JSON object")
    schema = payload.get("schema", SCHEMA)
    if schema != SCHEMA:
        raise ProtocolError(
            f"unsupported schema {schema!r} (this server speaks {SCHEMA!r})"
        )
    sources = [key for key in ("source", "stg", "model") if key in payload]
    if len(sources) != 1:
        raise ProtocolError(
            "request must carry exactly one of 'source' (astg text), 'stg' "
            "(canonical JSON) or 'model' (registered name); got "
            f"{sources or 'none'}"
        )
    kind = sources[0]
    if kind == "source":
        text = payload["source"]
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("'source' must be non-empty astg text")
        from repro.stg.parser import parse_stg

        try:
            stg = parse_stg(text)
        except ReproError as exc:
            raise ProtocolError(f"cannot parse 'source': {exc}") from exc
        name = stg.name
    elif kind == "stg":
        stg = stg_from_json(payload["stg"])
        name = stg.name
    else:
        model = payload["model"]
        if not isinstance(model, str):
            raise ProtocolError("'model' must be a registered model name")
        from repro.engine.batch import resolve_target

        try:
            name, stg = resolve_target(model)
        except ReproError as exc:
            raise ProtocolError(str(exc)) from exc

    properties = payload.get("properties", ["csc"])
    if (
        not isinstance(properties, list)
        or not properties
        or not all(isinstance(prop, str) for prop in properties)
    ):
        raise ProtocolError("'properties' must be a non-empty list of strings")
    properties = [prop.lower() for prop in properties]
    for prop in properties:
        if prop not in PROPERTIES:
            raise ProtocolError(
                f"unknown property {prop!r}; expected one of "
                f"{', '.join(PROPERTIES)}"
            )

    engines = payload.get("engines", ["ilp"])
    if (
        not isinstance(engines, list)
        or not engines
        or not all(isinstance(engine, str) for engine in engines)
    ):
        raise ProtocolError("'engines' must be a non-empty list of strings")

    node_budget = payload.get("node_budget")
    if node_budget is not None and (
        not isinstance(node_budget, int) or node_budget < 1
    ):
        raise ProtocolError("'node_budget' must be a positive integer")

    deadline = payload.get("deadline")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0:
            raise ProtocolError("'deadline' must be a positive number of seconds")
        deadline = float(deadline)

    use_facts = payload.get("use_facts", False)
    if not isinstance(use_facts, bool):
        raise ProtocolError("'use_facts' must be a boolean")

    use_refinement = payload.get("use_refinement", False)
    if not isinstance(use_refinement, bool):
        raise ProtocolError("'use_refinement' must be a boolean")

    request = CheckRequest(
        stg=stg,
        name=str(payload.get("name", name)),
        properties=tuple(dict.fromkeys(properties)),
        engines=tuple(dict.fromkeys(engines)),
        node_budget=node_budget,
        deadline=deadline,
        use_facts=use_facts,
        use_refinement=use_refinement,
    )
    # Fail fast on unknown engine names: building the jobs validates them.
    request.jobs()
    return request


# -- results -------------------------------------------------------------------


def result_to_dict(result: JobResult) -> Dict[str, Any]:
    """One property's outcome as a wire dictionary."""
    return {
        "property": result.property,
        "verdict": result.verdict,
        "holds": result.holds,
        "engine": result.engine,
        "witness": result.witness,
        "elapsed": result.elapsed,
        "source": result.source,
        "error": result.error,
        "stats": result.stats,
    }


def exit_code_for(results: Sequence[Mapping[str, Any]]) -> int:
    """The ``repro-stg check`` exit semantics over wire result dicts.

    2 when any property failed to reach a sound verdict (timeout, budget,
    engine error), else 1 when any property is violated, else 0 — exactly
    the contract of ``repro.cli._run_check``.
    """
    if any(result["verdict"] not in SOUND_VERDICTS for result in results):
        return 2
    if any(result["holds"] is False for result in results):
        return 1
    return 0
