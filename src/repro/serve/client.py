"""A tiny stdlib client for the ``repro-serve/1`` HTTP API.

Used by the test suite, the CI smoke job and the benchmark harness's
``serve`` scenario; also convenient interactively::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8421")
    job = client.check(source=open("vme.g").read(), properties=["csc"])
    job = client.wait_for(job["id"])
    print(job["results"][0]["verdict"], "exit", job["exit_code"])

Error mapping: HTTP 429 raises :class:`Rejected` (carrying the server's
``Retry-After`` hint), every other non-2xx raises :class:`ClientError` with
the decoded JSON error payload attached.  Both derive from
:class:`~repro.exceptions.ReproError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.serve import protocol


class ClientError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Dict[str, Any]):
        message = payload.get("error") or f"HTTP {status}"
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class Rejected(ClientError):
    """The service refused admission (HTTP 429); retry after ``retry_after``."""

    def __init__(self, payload: Dict[str, Any], retry_after: int):
        super().__init__(429, payload)
        self.retry_after = retry_after


class ServeClient:
    """Talks to one ``repro-stg serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.headers.items()},
                    json.loads(body.decode("utf-8")) if body else {},
                )
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                document = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, ValueError):
                document = {"error": body.decode("utf-8", "replace")}
            return (
                exc.code,
                {k.lower(): v for k, v in exc.headers.items()},
                document,
            )

    def _raise_for(self, status: int, headers: Dict[str, str], payload: Dict) -> None:
        if 200 <= status < 300:
            return
        if status == 429:
            # Retry-After may be a non-integer through proxies (HTTP allows
            # HTTP-dates); never let a parse failure mask the Rejected.
            raw = headers.get("retry-after", payload.get("retry_after"))
            try:
                retry_after = int(raw)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                retry_after = 1
            raise Rejected(payload, retry_after)
        raise ClientError(status, payload)

    # -- API -------------------------------------------------------------------

    def check(
        self,
        source: Optional[str] = None,
        model: Optional[str] = None,
        stg: Optional[Dict[str, Any]] = None,
        properties: Optional[List[str]] = None,
        engines: Optional[List[str]] = None,
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
        wait: bool = False,
        wait_timeout: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit a check; returns the job document (terminal if ``wait``)."""
        payload: Dict[str, Any] = {"schema": protocol.SCHEMA}
        if source is not None:
            payload["source"] = source
        if model is not None:
            payload["model"] = model
        if stg is not None:
            payload["stg"] = stg
        if properties is not None:
            payload["properties"] = properties
        if engines is not None:
            payload["engines"] = engines
        if node_budget is not None:
            payload["node_budget"] = node_budget
        if deadline is not None:
            payload["deadline"] = deadline
        status, headers, document = self._request("POST", "/v1/check", payload)
        self._raise_for(status, headers, document)
        job = document["job"]
        if wait:
            return self.wait_for(job["id"], timeout=wait_timeout)
        return job

    def job(self, job_id: str) -> Dict[str, Any]:
        status, headers, document = self._request("GET", f"/v1/jobs/{job_id}")
        self._raise_for(status, headers, document)
        return document["job"]

    def wait_for(
        self, job_id: str, timeout: float = 60.0, poll: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in protocol.TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"job {job_id} still {job['state']!r} after {timeout}s"
                )
            time.sleep(poll)

    def healthz(self) -> bool:
        status, _, _ = self._request("GET", "/v1/healthz")
        return status == 200

    def readyz(self) -> bool:
        status, _, _ = self._request("GET", "/v1/readyz")
        return status == 200

    def metrics(self) -> Dict[str, Any]:
        status, headers, document = self._request("GET", "/v1/metrics")
        self._raise_for(status, headers, document)
        return document

    @staticmethod
    def exit_code(job: Dict[str, Any]) -> int:
        """The ``repro-stg check`` exit code equivalent of a terminal job."""
        if "exit_code" in job:
            return int(job["exit_code"])
        return protocol.exit_code_for(job.get("results", []))
