"""The verification service: admission, dispatch, observability, HTTP.

Architecture (one process, three kinds of threads):

* **HTTP handler threads** (``ThreadingHTTPServer``) parse requests and call
  :meth:`VerificationService.submit` / :meth:`get` / :meth:`metrics` — all
  cheap, lock-protected operations that never touch an engine;
* **one dispatcher thread** pulls admitted jobs from the
  :class:`~repro.serve.queue.AdmissionQueue` in FIFO batches and drives them
  through the *persistent* engine :class:`~repro.engine.pool.WorkerPool`
  (created once at service start, reused for every batch — the whole point
  of serving instead of one-shot CLI runs) via the same
  :func:`repro.engine.portfolio.run_jobs` pipeline the ``batch`` subcommand
  uses, so cache → lint → portfolio semantics are identical to the CLI;
* **engine worker processes** forked by the pool do the actual verification.

Every verdict therefore flows through the existing result cache and lint
pre-filter; concurrent identical requests additionally collapse through the
:class:`~repro.serve.dedup.DedupIndex` before ever reaching the queue.

Lifecycle: ``healthz`` is true from construction until shutdown — or until
the dispatcher dies abnormally, which turns health red and fails every
non-terminal job so orchestrators restart instead of routing to a service
that can never run its queue (liveness); ``readyz`` is true only while
admitting (readiness).  :meth:`drain` — the SIGTERM path — stops admission,
lets the dispatcher finish every accepted job (each bounded by its
deadline), then shuts the pool down; accepted work is only ever dropped by
:meth:`close` with ``cancel=True``, and then the affected jobs are reported
``cancelled``, never silently lost.

Memory: finished job documents are retained for a bounded window
(``terminal_cap`` newest, each for at most ``terminal_ttl`` seconds) so the
job table cannot grow with total requests served; polling an evicted id
answers 404.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.engine import events as ev
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.jobs import JobResult
from repro.engine.pool import WorkerPool
from repro.engine.portfolio import run_jobs
from repro.exceptions import ReproError
from repro.serve import protocol
from repro.serve.dedup import DedupIndex
from repro.serve.protocol import CheckRequest, ProtocolError
from repro.serve.queue import AdmissionQueue, QueueClosed

logger = logging.getLogger("repro.serve")

#: Largest request body the HTTP layer accepts (a .g file is a few KB).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceSaturated(ReproError):
    """The admission queue is full (HTTP 429)."""

    def __init__(self, message: str, retry_after: int):
        super().__init__(message)
        self.retry_after = retry_after


class Histogram:
    """A fixed-bucket latency histogram (seconds), Prometheus-style.

    Cumulative bucket counts plus count/sum; :meth:`quantile` interpolates
    within the winning bucket, which is exact enough for p50/p95 reporting
    over log-spaced bounds.
    """

    BOUNDS = (
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
        0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += seconds
            for index, bound in enumerate(self.BOUNDS):
                if seconds <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    def quantile(self, q: float) -> Optional[float]:
        with self._lock:
            if self.count == 0:
                return None
            target = q * self.count
            cumulative = 0
            lower = 0.0
            for index, bound in enumerate(self.BOUNDS):
                in_bucket = self._counts[index]
                if cumulative + in_bucket >= target:
                    if in_bucket == 0:
                        return bound
                    fraction = (target - cumulative) / in_bucket
                    return lower + fraction * (bound - lower)
                cumulative += in_bucket
                lower = bound
            return self.BOUNDS[-1]

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            buckets: Dict[str, int] = {}
            cumulative = 0
            for index, bound in enumerate(self.BOUNDS):
                cumulative += self._counts[index]
                buckets[f"{bound:g}"] = cumulative
            buckets["+Inf"] = cumulative + self._counts[-1]
            count, total = self.count, self.sum
        return {
            "count": count,
            "sum_s": total,
            "buckets": buckets,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
        }


@dataclass
class ServeJob:
    """One accepted ``POST /v1/check`` and everything that became of it."""

    id: str
    request: CheckRequest
    state: str = protocol.STATE_QUEUED
    submitted: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    results: List[JobResult] = field(default_factory=list)
    error: Optional[str] = None
    #: Primary job id when this request was deduplicated in flight.
    deduped_of: Optional[str] = None
    #: Set once the job entered the service's terminal-retention window
    #: (guards against double-appending to the eviction order).
    noted_terminal: bool = field(default=False, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "name": self.request.name,
            "stg_hash": self.request.stg_hash,
            "properties": list(self.request.properties),
            "engines": list(self.request.engines),
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "deduped_of": self.deduped_of,
            "error": self.error,
        }
        if self.results:
            results = [protocol.result_to_dict(result) for result in self.results]
            document["results"] = results
            if self.state in protocol.TERMINAL_STATES:
                document["exit_code"] = (
                    2
                    if self.state != protocol.STATE_DONE
                    else protocol.exit_code_for(results)
                )
        elif self.state in protocol.TERMINAL_STATES:
            document["results"] = []
            document["exit_code"] = 2
        return document


class VerificationService:
    """The long-lived verification service behind the HTTP endpoints."""

    def __init__(
        self,
        workers: Optional[int] = None,
        queue_limit: int = 64,
        deadline: Optional[float] = None,
        cache: Optional[ResultCache] = None,
        cache_dir: Optional[str] = None,
        lint: bool = True,
        batch_limit: int = 8,
        terminal_cap: int = 1024,
        terminal_ttl: Optional[float] = 900.0,
    ):
        if batch_limit < 1:
            raise ReproError("batch_limit must be >= 1")
        if terminal_cap < 0:
            raise ReproError("terminal_cap must be >= 0")
        self.deadline = deadline
        self.lint = lint
        self.batch_limit = batch_limit
        #: Retention bounds for terminal job documents: at most
        #: ``terminal_cap`` are kept, each for at most ``terminal_ttl``
        #: seconds after finishing — without them a long-lived service would
        #: retain every job (request STG included) forever.  Evicted jobs
        #: answer 404 on ``GET /v1/jobs/{id}``.
        self.terminal_cap = terminal_cap
        self.terminal_ttl = terminal_ttl
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.events = ev.EventLog()
        self.pool = WorkerPool(max_workers=workers, events=self.events)
        self.queue = AdmissionQueue(limit=queue_limit)
        self.dedup = DedupIndex()
        self._jobs: Dict[str, ServeJob] = {}
        self._jobs_lock = threading.Lock()
        self._published = threading.Condition(self._jobs_lock)
        self._terminal_order: Deque[str] = deque()
        self.jobs_evicted = 0
        self._ids = itertools.count(1)
        self._started_at = time.time()
        self._draining = False
        self._closed = False
        self._crashed = False
        self._drained = threading.Event()
        self.latency = Histogram()        # submit -> finished
        self.queue_wait = Histogram()     # submit -> started
        self.exec_time = Histogram()      # started -> finished
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._dispatcher.start()
        logger.info(
            "service up: workers=%s queue_limit=%d deadline=%s cache=%s",
            "auto" if workers is None else workers,
            queue_limit,
            deadline,
            getattr(cache, "root", None),
        )

    # -- admission (HTTP handler threads) --------------------------------------

    def submit(self, payload: Any) -> ServeJob:
        """Admit one check request; raises
        :class:`~repro.serve.protocol.ProtocolError` (400),
        :class:`ServiceSaturated` (429) or
        :class:`~repro.serve.queue.QueueClosed` (503).
        """
        if self._draining or self._crashed:
            raise QueueClosed("service is draining; not admitting new work")
        request = protocol.parse_check_request(payload)
        job = ServeJob(id=self._new_id(request), request=request)
        key = request.dedup_key()
        # Register the job *before* touching the dedup index: the dispatcher's
        # dedup.complete() (and the release() rollback below) resolve follower
        # ids through self._jobs, and either may run the instant acquire()
        # returns — the dedup lock is only held *inside* acquire().  A
        # follower registered afterwards would be silently dropped and poll
        # as 'queued' forever.
        with self._jobs_lock:
            self._evict_terminal_locked(time.time())
            self._jobs[job.id] = job
        primary = self.dedup.acquire(key, job.id)
        if primary is not None:
            job.deduped_of = primary
            logger.info("job %s deduplicated onto %s", job.id, primary)
            return job
        try:
            admitted = self.queue.offer((key, job))
        except QueueClosed:
            orphans = self.dedup.release(key, job.id)
            self._forget(job.id)
            self._fail_orphans(orphans, "primary request was refused admission")
            raise
        if not admitted:
            orphans = self.dedup.release(key, job.id)
            self._forget(job.id)
            self._fail_orphans(orphans, "primary request was refused admission")
            raise ServiceSaturated(
                f"admission queue full ({self.queue.limit} pending)",
                retry_after=self.queue.retry_after(),
            )
        logger.info(
            "job %s admitted: %s %s (depth %d)",
            job.id,
            request.name,
            ",".join(request.properties),
            self.queue.depth,
        )
        return job

    def _new_id(self, request: CheckRequest) -> str:
        return f"j{next(self._ids):06d}-{request.stg_hash[:8]}"

    def _forget(self, job_id: str) -> None:
        """Unregister a job whose admission failed (the client never saw it)."""
        with self._jobs_lock:
            self._jobs.pop(job_id, None)

    def _fail_orphans(self, job_ids: List[str], reason: str) -> None:
        now = time.time()
        with self._jobs_lock:
            for job_id in job_ids:
                job = self._jobs.get(job_id)
                if job is not None and job.state not in protocol.TERMINAL_STATES:
                    job.state = protocol.STATE_FAILED
                    job.error = reason
                    job.finished = now
                    self._note_terminal_locked(job, now)
            if job_ids:
                self._published.notify_all()

    # -- terminal-job retention (all methods require _jobs_lock held) ----------

    def _note_terminal_locked(self, job: ServeJob, now: float) -> None:
        """Enter ``job`` into the bounded retention window of finished jobs."""
        if job.noted_terminal:
            return
        job.noted_terminal = True
        self._terminal_order.append(job.id)
        self._evict_terminal_locked(now)

    def _evict_terminal_locked(self, now: float) -> None:
        """Drop finished jobs beyond :attr:`terminal_cap` / ``terminal_ttl``."""
        while self._terminal_order:
            job = self._jobs.get(self._terminal_order[0])
            if job is None:
                self._terminal_order.popleft()
                continue
            over_cap = len(self._terminal_order) > self.terminal_cap
            expired = (
                self.terminal_ttl is not None
                and job.finished is not None
                and now - job.finished >= self.terminal_ttl
            )
            if not over_cap and not expired:
                break
            self._terminal_order.popleft()
            del self._jobs[job.id]
            self.jobs_evicted += 1

    # -- queries ---------------------------------------------------------------

    def get(self, job_id: str) -> Optional[ServeJob]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float = 30.0) -> Optional[ServeJob]:
        """Block until ``job_id`` reaches a terminal state (or ``timeout``)."""
        deadline = time.monotonic() + timeout
        with self._jobs_lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.state in protocol.TERMINAL_STATES:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
                self._published.wait(remaining)

    @property
    def healthy(self) -> bool:
        """Liveness: the process is up and the dispatcher has not crashed.

        A crashed dispatcher sets :attr:`_drained` too (so :meth:`drain`
        cannot hang), but that is *not* a clean drain — the ``_crashed``
        flag keeps health red so orchestrators restart the process instead
        of routing to a service that can never run its queue.
        """
        return not self._closed and not self._crashed and (
            self._dispatcher.is_alive() or self._drained.is_set()
        )

    @property
    def ready(self) -> bool:
        """Readiness: admitting new work (false while draining)."""
        return self.healthy and not self._draining and not self.queue.closed

    def metrics(self) -> Dict[str, Any]:
        """The ``/v1/metrics`` document: queue, dedup, cache, engine, latency."""
        with self._jobs_lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            retained = len(self._jobs)
            evicted = self.jobs_evicted
        stats = self.events.stats
        cache_hits = self.cache.hits if self.cache else 0
        cache_misses = self.cache.misses if self.cache else 0
        looked_up = cache_hits + cache_misses
        return protocol.envelope(
            uptime_s=time.time() - self._started_at,
            ready=self.ready,
            draining=self._draining,
            jobs=states,
            jobs_retained=retained,
            jobs_evicted=evicted,
            queue=self.queue.stats(),
            dedup=self.dedup.stats(),
            cache={
                "enabled": self.cache is not None,
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_ratio": (cache_hits / looked_up) if looked_up else None,
            },
            engine={
                "jobs": stats.jobs,
                "completed": stats.completed,
                "failed": stats.failed,
                "lint_decided": stats.lint_decided,
                "timeouts": stats.timeouts,
                "crashes": stats.crashes,
                "retries": stats.retries,
                "cancelled": stats.cancelled,
                "wins_by_engine": dict(stats.wins_by_engine),
                "pool_workers": self.pool.max_workers,
                "pool_inline": self.pool.inline,
            },
            latency={
                "total": self.latency.to_dict(),
                "queue_wait": self.queue_wait.to_dict(),
                "exec": self.exec_time.to_dict(),
            },
        )

    # -- dispatch (the single dispatcher thread) -------------------------------

    def _dispatch_loop(self) -> None:
        try:
            while True:
                entry = self.queue.take(timeout=0.1)
                if entry is None:
                    if self.queue.closed:
                        break
                    continue
                batch = [entry] + self.queue.drain_batch(self.batch_limit - 1)
                self._run_batch(batch)
        except Exception:
            logger.exception("dispatcher crashed")
            self._crashed = True
            self.queue.close()  # stop admitting: nobody will run new work
            with self._jobs_lock:
                # fail everything non-terminal so pollers learn the truth
                # now instead of spinning until their own timeouts
                now = time.time()
                for job in list(self._jobs.values()):
                    if job.state not in protocol.TERMINAL_STATES:
                        job.state = protocol.STATE_FAILED
                        job.error = "dispatcher crashed"
                        job.finished = now
                        self._note_terminal_locked(job, now)
                self._published.notify_all()
            # swallow after recording: the crash lives on in _crashed (health
            # red), the log, and the failed jobs — re-raising into the thread
            # runtime adds nothing but an unhandled-exception hook firing
        finally:
            self._drained.set()

    def _run_batch(self, entries: List[Tuple[Any, ServeJob]]) -> None:
        now = time.time()
        with self._jobs_lock:
            for _, job in entries:
                job.state = protocol.STATE_RUNNING
                job.started = now
        verification_jobs = []
        slices: List[Tuple[Any, ServeJob, int, int]] = []
        cert_cache_dir = (
            str(self.cache.root) if self.cache is not None else None
        )
        for key, job in entries:
            jobs = job.request.jobs(
                default_deadline=self.deadline, cert_cache_dir=cert_cache_dir
            )
            slices.append(
                (key, job, len(verification_jobs), len(verification_jobs) + len(jobs))
            )
            verification_jobs.extend(jobs)
        try:
            results = run_jobs(
                verification_jobs,
                self.pool,
                cache=self.cache,
                events=self.events,
                lint=self.lint,
            )
        except Exception as exc:  # engine-layer bug: fail the batch, stay up
            logger.exception("batch execution failed")
            for key, job, _, _ in slices:
                self._publish(
                    key, job, [], error=f"{type(exc).__name__}: {exc}"
                )
            return
        for key, job, lo, hi in slices:
            self._publish(key, job, results[lo:hi])

    def _publish(
        self,
        key: Any,
        job: ServeJob,
        results: List[JobResult],
        error: Optional[str] = None,
    ) -> None:
        finished = time.time()
        followers = self.dedup.complete(key)
        with self._jobs_lock:
            targets = [job] + [
                f for f in (self._jobs.get(fid) for fid in followers)
                if f is not None
            ]
            for target in targets:
                target.results = results
                target.error = error
                target.started = target.started or job.started
                target.finished = finished
                target.state = (
                    protocol.STATE_FAILED if error else protocol.STATE_DONE
                )
                self._note_terminal_locked(target, finished)
            self._published.notify_all()
        service_time = finished - job.submitted
        self.queue.note_service_time(service_time)
        self.latency.observe(service_time)
        if job.started is not None:
            self.queue_wait.observe(job.started - job.submitted)
            self.exec_time.observe(finished - job.started)
        logger.info(
            "job %s %s in %.3fs (%d follower(s))",
            job.id,
            job.state,
            service_time,
            len(followers),
        )

    # -- lifecycle -------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting; safe to call from a signal handler thread."""
        self._draining = True
        self.queue.close()
        logger.info("drain started: %d job(s) still queued", self.queue.depth)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, finish accepted work.

        Returns ``True`` when every accepted job reached a terminal state
        within ``timeout`` (each engine run is itself bounded by its
        deadline); ``False`` when work is still running — call
        :meth:`close` with ``cancel=True`` to hard-stop it.
        """
        self.begin_drain()
        finished = self._drained.wait(timeout)
        if finished:
            if self.cache is not None:
                # result files are written eagerly; nothing buffered to lose
                logger.info(
                    "drain complete: cache %d hit(s) / %d miss(es)",
                    self.cache.hits,
                    self.cache.misses,
                )
            self.pool.shutdown()
        return finished

    def close(self, timeout: float = 5.0, cancel: bool = False) -> None:
        """Drain, then (optionally) cancel whatever is still in flight."""
        if not self.drain(timeout) and cancel:
            dropped = self.queue.clear()
            ids = [job.id for _, job in dropped]
            with self._jobs_lock:
                now = time.time()
                for job in list(self._jobs.values()):
                    if job.state not in protocol.TERMINAL_STATES:
                        job.state = protocol.STATE_CANCELLED
                        job.error = job.error or "service shut down"
                        job.finished = now
                        self._note_terminal_locked(job, now)
                self._published.notify_all()
            self.pool.shutdown()
            self._drained.wait(timeout)
            logger.warning("hard close: cancelled %d queued job(s)", len(ids))
        self._closed = True


# -- HTTP layer ----------------------------------------------------------------


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`VerificationService`."""

    daemon_threads = True
    allow_reuse_address = True
    # the socketserver default (5) drops connections under concurrent
    # pollers long before the admission queue gets a say; raise the listen
    # backlog so saturation is reported as 429, not as connection resets
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: VerificationService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServeHTTPServer

    # -- plumbing --------------------------------------------------------------

    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)

    def _send(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- routes ----------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") != "/v1/check":
            self._send(404, protocol.error_payload(f"no such route {self.path}"))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length <= 0:
            self._send(400, protocol.error_payload("missing request body"))
            return
        if length > MAX_BODY_BYTES:
            self._send(413, protocol.error_payload("request body too large"))
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._send(
                400, protocol.error_payload(f"request body is not JSON: {exc}")
            )
            return
        service = self.server.service
        try:
            job = service.submit(payload)
        except ProtocolError as exc:
            self._send(exc.status, protocol.error_payload(str(exc)))
            return
        except ServiceSaturated as exc:
            self._send(
                429,
                protocol.error_payload(
                    str(exc), retry_after=exc.retry_after
                ),
                headers={"Retry-After": str(exc.retry_after)},
            )
            return
        except QueueClosed as exc:
            self._send(503, protocol.error_payload(str(exc)))
            return
        except ReproError as exc:
            self._send(400, protocol.error_payload(str(exc)))
            return
        self._send(
            202,
            protocol.envelope(
                job=job.to_dict(), status_url=f"/v1/jobs/{job.id}"
            ),
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path = self.path.rstrip("/") or "/"
        if path == "/v1/healthz":
            if service.healthy:
                self._send(200, protocol.envelope(status="alive"))
            else:
                self._send(500, protocol.envelope(status="dead"))
            return
        if path == "/v1/readyz":
            if service.ready:
                self._send(200, protocol.envelope(status="ready"))
            else:
                self._send(503, protocol.envelope(status="draining"))
            return
        if path == "/v1/metrics":
            self._send(200, service.metrics())
            return
        if path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):]
            job = service.get(job_id)
            if job is None:
                self._send(
                    404, protocol.error_payload(f"no such job {job_id!r}")
                )
                return
            self._send(200, protocol.envelope(job=job.to_dict()))
            return
        self._send(404, protocol.error_payload(f"no such route {self.path}"))


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    **service_kwargs: Any,
) -> ServeHTTPServer:
    """Build a bound (but not yet serving) server plus its service."""
    service = VerificationService(**service_kwargs)
    return ServeHTTPServer((host, port), service)


def run_server(
    host: str = "127.0.0.1",
    port: int = 0,
    drain_timeout: Optional[float] = None,
    **service_kwargs: Any,
) -> int:
    """Serve until SIGTERM/SIGINT, then drain gracefully.  Blocks.

    The listening address is announced on stdout (``serving on http://...``)
    so wrappers binding port 0 can discover the ephemeral port.
    """
    import signal
    import sys

    httpd = make_server(host, port, **service_kwargs)
    service = httpd.service
    stop_started = threading.Event()

    def _stop(signum: int, _frame: Any) -> None:
        if stop_started.is_set():  # second signal: hard stop
            threading.Thread(
                target=lambda: (service.close(timeout=0.5, cancel=True),
                                httpd.shutdown()),
                daemon=True,
            ).start()
            return
        stop_started.set()
        service.begin_drain()  # refuse new work immediately

        def _graceful() -> None:
            service.drain(drain_timeout)
            httpd.shutdown()

        threading.Thread(target=_graceful, daemon=True).start()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _stop),
    }
    try:
        print(f"serving on {httpd.url}", flush=True)
        httpd.serve_forever(poll_interval=0.1)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        httpd.server_close()
        if not service._drained.is_set():
            service.close(timeout=drain_timeout or 5.0, cancel=True)
        print("serve: drained, bye", file=sys.stderr)
    return 0
