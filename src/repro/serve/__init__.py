"""``repro.serve`` — the HTTP/JSON verification service.

A dependency-free (stdlib ``http.server`` + ``threading``) service that
keeps one engine :class:`~repro.engine.pool.WorkerPool` alive across
requests and puts admission control in front of it:

* :mod:`repro.serve.protocol` — the versioned ``repro-serve/1`` wire
  schemas, including the canonical JSON STG form;
* :mod:`repro.serve.queue` — the bounded FIFO admission queue with
  backpressure (HTTP 429 + ``Retry-After``) and drain semantics;
* :mod:`repro.serve.dedup` — in-flight request deduplication by canonical
  STG content hash;
* :mod:`repro.serve.server` — the :class:`VerificationService` core, the
  HTTP layer and the SIGTERM drain path;
* :mod:`repro.serve.client` — a tiny stdlib client used by tests, CI and
  the benchmark harness.

Entry point: ``repro-stg serve --port 8421`` (see docs/serving.md).
"""

from repro.serve.client import ClientError, Rejected, ServeClient
from repro.serve.dedup import DedupIndex
from repro.serve.protocol import (
    SCHEMA,
    CheckRequest,
    ProtocolError,
    exit_code_for,
    parse_check_request,
    stg_from_json,
    stg_to_json,
)
from repro.serve.queue import AdmissionQueue, QueueClosed
from repro.serve.server import (
    ServeHTTPServer,
    ServeJob,
    ServiceSaturated,
    VerificationService,
    make_server,
    run_server,
)

__all__ = [
    "SCHEMA",
    "AdmissionQueue",
    "CheckRequest",
    "ClientError",
    "DedupIndex",
    "ProtocolError",
    "QueueClosed",
    "Rejected",
    "ServeClient",
    "ServeHTTPServer",
    "ServeJob",
    "ServiceSaturated",
    "VerificationService",
    "exit_code_for",
    "make_server",
    "parse_check_request",
    "run_server",
    "stg_from_json",
    "stg_to_json",
]
