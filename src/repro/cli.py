"""Command-line interface: ``repro-stg`` (or ``python -m repro``).

Subcommands:

* ``check FILE.g``   — verify USC / CSC / normalcy / consistency / deadlock
  with a choice of engine (``ilp`` = the paper's unfolding+IP method,
  ``sg`` = explicit state graph, ``bdd`` = symbolic state graph);
* ``unfold FILE.g``  — build and describe the complete prefix;
* ``stats FILE.g``   — print STG / prefix / state-graph size statistics;
* ``bench``          — regenerate the paper's Table 1 (delegates to
  :mod:`repro.bench.table1`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exceptions import ReproError


def _load_stg(path: str):
    from repro.stg.parser import parse_stg

    with open(path) as handle:
        return parse_stg(handle.read())


def _cmd_check(args: argparse.Namespace) -> int:
    stg = _load_stg(args.file)
    properties = args.properties or ["csc"]
    failures = 0
    for prop in properties:
        prop = prop.lower()
        if prop == "consistency":
            from repro.stg.consistency import is_consistent

            holds = is_consistent(stg)
            print(f"consistency: {'OK' if holds else 'VIOLATED'}")
            failures += 0 if holds else 1
            continue
        if prop == "deadlock":
            from repro.core.reachability import check_deadlock

            trace = check_deadlock(stg)
            if trace is None:
                print("deadlock: none (live)")
            else:
                print(f"deadlock: reachable via [{', '.join(trace)}]")
                failures += 1
            continue
        if prop == "autoconcurrency":
            from repro.stg.implementability import check_autoconcurrency

            witness = check_autoconcurrency(stg)
            if witness is None:
                print("autoconcurrency: none")
            else:
                print(
                    f"autoconcurrency: signal {witness.signal} "
                    f"after [{', '.join(witness.trace)}]"
                )
                failures += 1
            continue
        if prop == "persistency":
            from repro.stg.implementability import check_output_persistency

            violations = check_output_persistency(stg)
            if not violations:
                print("persistency: OK")
            else:
                first = violations[0]
                print(
                    f"persistency: VIOLATED ({first.disabled_edge} disabled "
                    f"by {first.disabling_transition}; "
                    f"{len(violations)} violation(s))"
                )
                failures += 1
            continue
        if prop == "normalcy":
            holds = _check_normalcy(stg, args.method)
            print(f"normalcy: {'OK' if holds else 'VIOLATED'}")
            failures += 0 if holds else 1
            continue
        if prop in ("usc", "csc"):
            holds = _check_coding(stg, prop, args.method, args.verbose)
            print(f"{prop.upper()}: {'OK' if holds else 'CONFLICT'}")
            failures += 0 if holds else 1
            continue
        raise ReproError(f"unknown property {prop!r}")
    return 1 if failures else 0


def _check_coding(stg, prop: str, method: str, verbose: bool) -> bool:
    if method == "ilp":
        from repro.core import check_csc, check_usc

        report = (check_usc if prop == "usc" else check_csc)(stg)
        if verbose and report.witness is not None:
            print(f"  witness: {report.witness.describe()}")
        if verbose:
            stats = report.prefix_stats
            print(
                f"  prefix: |B|={stats['conditions']} |E|={stats['events']} "
                f"|E_cut|={stats['cutoffs']}; search nodes: "
                f"{report.search_stats.nodes}; {report.elapsed:.3f}s"
            )
        return report.holds
    if method == "sg":
        from repro.stg.stategraph import build_state_graph

        graph = build_state_graph(stg)
        if verbose:
            print(f"  state graph: {graph.num_states} states")
        return graph.has_usc() if prop == "usc" else graph.has_csc()
    if method == "bdd":
        from repro.symbolic import symbolic_check

        report = symbolic_check(stg, prop)
        if verbose:
            print(
                f"  symbolic: {report.num_states} states, "
                f"{report.num_conflict_pairs} conflict pairs, "
                f"{report.bdd_nodes} BDD nodes; {report.elapsed:.3f}s"
            )
        return report.holds
    if method == "sat":
        from repro.sat import check_csc_sat, check_usc_sat

        report = (check_usc_sat if prop == "usc" else check_csc_sat)(stg)
        if verbose:
            print(
                f"  SAT: {report.num_vars} vars, {report.num_clauses} "
                f"clauses, {report.sat_conflicts} conflicts, "
                f"{report.candidates_blocked} candidates blocked; "
                f"{report.elapsed:.3f}s"
            )
        return report.holds
    raise ReproError(f"unknown method {method!r}")


def _check_normalcy(stg, method: str) -> bool:
    if method in ("ilp",):
        from repro.core import check_normalcy

        return check_normalcy(stg).normal
    from repro.stg.normalcy import check_normalcy_state_graph

    return check_normalcy_state_graph(stg).normal


def _cmd_unfold(args: argparse.Namespace) -> int:
    from repro.unfolding import unfold

    stg = _load_stg(args.file)
    prefix = unfold(stg)
    print(
        f"{stg.name}: |B|={prefix.num_conditions} |E|={prefix.num_events} "
        f"|E_cut|={prefix.num_cutoffs}"
    )
    if args.events:
        for event in prefix.events:
            marker = "  [cutoff]" if event.is_cutoff else ""
            print(f"  {prefix.event_name(event.index)}{marker}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.stg.stategraph import build_state_graph
    from repro.unfolding import unfold

    stg = _load_stg(args.file)
    stats = stg.stats()
    print(
        f"STG {stg.name}: |S|={stats['places']} |T|={stats['transitions']} "
        f"|Z|={stats['signals']}"
    )
    prefix = unfold(stg)
    print(
        f"prefix: |B|={prefix.num_conditions} |E|={prefix.num_events} "
        f"|E_cut|={prefix.num_cutoffs}"
    )
    graph = build_state_graph(stg)
    print(f"state graph: {graph.num_states} states, {graph.num_arcs} arcs")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.stg.stategraph import build_state_graph
    from repro.synthesis import resolve_csc, synthesise

    stg = _load_stg(args.file)
    resolution = resolve_csc(stg, max_signals=args.max_signals)
    if resolution.insertions:
        print(f"CSC resolved by inserting: {resolution.describe()}")
    stg = resolution.stg
    result = synthesise(stg)
    print("complex-gate equations:")
    for equation in result.equations():
        print(f"  {equation}")
    if args.gc:
        print("generalised C-element networks:")
        for impl in result.per_signal.values():
            print(f"  {impl.gc_equations(result.names)}")
    if not result.verify(build_state_graph(stg)):
        raise ReproError("internal error: covers do not match the state graph")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.export import prefix_to_dot, state_graph_to_dot, stg_to_dot
    from repro.stg.stategraph import build_state_graph
    from repro.unfolding import unfold

    stg = _load_stg(args.file)
    if args.what == "stg":
        print(stg_to_dot(stg))
    elif args.what == "prefix":
        print(prefix_to_dot(unfold(stg)))
    else:
        print(state_graph_to_dot(build_state_graph(stg)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.table1 import run_table1

    print(run_table1(include_slow=args.full))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stg",
        description="STG state-coding verification via unfoldings and "
        "integer programming (DATE 2002 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="verify properties of an STG")
    check.add_argument("file", help="astg .g file")
    check.add_argument(
        "--property",
        "-p",
        dest="properties",
        action="append",
        choices=[
            "usc",
            "csc",
            "normalcy",
            "consistency",
            "deadlock",
            "autoconcurrency",
            "persistency",
        ],
        help="property to verify (repeatable; default: csc)",
    )
    check.add_argument(
        "--method",
        "-m",
        default="ilp",
        choices=["ilp", "sg", "bdd", "sat"],
        help="engine: unfolding+IP (default), explicit or symbolic state "
        "graph, or the SAT back-end",
    )
    check.add_argument("--verbose", "-v", action="store_true")
    check.set_defaults(func=_cmd_check)

    unfold_cmd = sub.add_parser("unfold", help="build the complete prefix")
    unfold_cmd.add_argument("file")
    unfold_cmd.add_argument("--events", action="store_true", help="list events")
    unfold_cmd.set_defaults(func=_cmd_unfold)

    stats = sub.add_parser("stats", help="size statistics")
    stats.add_argument("file")
    stats.set_defaults(func=_cmd_stats)

    synth = sub.add_parser(
        "synth", help="resolve CSC if needed and derive boolean equations"
    )
    synth.add_argument("file")
    synth.add_argument("--gc", action="store_true", help="also print set/reset covers")
    synth.add_argument("--max-signals", type=int, default=2)
    synth.set_defaults(func=_cmd_synth)

    export = sub.add_parser("export", help="emit Graphviz DOT")
    export.add_argument("file")
    export.add_argument(
        "what", choices=["stg", "prefix", "sg"], help="which view to export"
    )
    export.set_defaults(func=_cmd_export)

    bench = sub.add_parser("bench", help="regenerate the paper's Table 1")
    bench.add_argument(
        "--full", action="store_true", help="include the slowest baseline runs"
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
