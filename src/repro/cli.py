"""Command-line interface: ``repro-stg`` (or ``python -m repro``).

Subcommands:

* ``check FILE.g``   — verify USC / CSC / normalcy / consistency / deadlock
  with a choice of engine (``ilp`` = the paper's unfolding+IP method,
  ``sg`` = explicit state graph, ``bdd`` = symbolic state graph, ``sat`` =
  the CDCL back-end) or an engine portfolio raced in parallel;
* ``batch``          — verify many STGs × properties through the worker
  pool, with portfolio racing and the on-disk result cache;
* ``lint FILE.g``    — static diagnostics (well-formedness, STG semantics,
  certifying conflict pre-filters) with compiler-style exit codes;
* ``profile FILE.g`` — run the verification under the :mod:`repro.obs`
  tracer and print the per-phase wall-time breakdown (parse / unfold /
  closure / solver / total) plus the counter catalogue, as text or
  ``--json``;
* ``serve``          — run the long-lived HTTP/JSON verification service
  (:mod:`repro.serve`): bounded admission queue, in-flight dedup, the
  shared result cache and live metrics (docs/serving.md);
* ``cache``          — inspect (``stats``) and bound (``prune``) the
  on-disk result store shared by batch, portfolios and serve;
* ``unfold FILE.g``  — build and describe the complete prefix;
* ``stats FILE.g``   — print STG / prefix / state-graph size statistics;
* ``bench``          — regenerate the paper's Table 1 (delegates to
  :mod:`repro.bench.table1`).

``check`` and ``batch`` additionally accept ``--trace-out FILE.jsonl`` to
record the whole run as a JSON-Lines trace (docs/observability.md).

A global ``-v/--verbose`` flag (before the subcommand) streams the
``repro.engine`` progress events and other library logging to stderr.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from repro.exceptions import ReproError, SolverLimitError


def _load_stg(path: str):
    from repro.stg.parser import parse_stg

    with open(path) as handle:
        return parse_stg(handle.read(), filename=path)


def _configure_logging(verbosity: int) -> None:
    """Wire the package loggers to stderr: ``-v`` = INFO, ``-vv`` = DEBUG."""
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    logging.basicConfig(
        level=level,
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    logging.getLogger("repro").setLevel(level)


def _with_trace_out(args: argparse.Namespace, fn):
    """Run ``fn`` under the tracer and dump a JSONL trace if requested."""
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return fn()
    from repro import obs

    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    tracer.reset()
    try:
        return fn()
    finally:
        records = obs.write_jsonl(tracer, trace_out)
        print(f"trace: {records} records written to {trace_out}", file=sys.stderr)
        if not was_enabled:
            tracer.disable()


def _cmd_check(args: argparse.Namespace) -> int:
    return _with_trace_out(args, lambda: _run_check(args))


def _run_check(args: argparse.Namespace) -> int:
    stg = _load_stg(args.file)
    properties = args.properties or ["csc"]
    failures = 0
    errors = 0
    for prop in properties:
        prop = prop.lower()
        try:
            failures += 0 if _check_property(stg, prop, args) else 1
        except SolverLimitError as exc:
            print(f"{prop}: UNDECIDED (budget exhausted)")
            print(
                f"error: {prop} check on {args.file} gave up: {exc}",
                file=sys.stderr,
            )
            errors += 1
        except ReproError as exc:
            print(f"{prop}: ERROR")
            print(
                f"error: {prop} check on {args.file} failed: {exc}",
                file=sys.stderr,
            )
            errors += 1
    if errors:
        return 2
    return 1 if failures else 0


def _check_property(stg, prop: str, args: argparse.Namespace) -> bool:
    """Check one property, print its verdict line, return whether it holds."""
    if prop == "consistency":
        from repro.stg.consistency import is_consistent

        holds = is_consistent(stg)
        print(f"consistency: {'OK' if holds else 'VIOLATED'}")
        return holds
    if prop == "deadlock":
        from repro.core.reachability import check_deadlock

        trace = check_deadlock(stg)
        if trace is None:
            print("deadlock: none (live)")
            return True
        print(f"deadlock: reachable via [{', '.join(trace)}]")
        return False
    if prop == "autoconcurrency":
        from repro.stg.implementability import check_autoconcurrency

        witness = check_autoconcurrency(stg)
        if witness is None:
            print("autoconcurrency: none")
            return True
        print(
            f"autoconcurrency: signal {witness.signal} "
            f"after [{', '.join(witness.trace)}]"
        )
        return False
    if prop == "persistency":
        from repro.stg.implementability import check_output_persistency

        violations = check_output_persistency(stg)
        if not violations:
            print("persistency: OK")
            return True
        first = violations[0]
        print(
            f"persistency: VIOLATED ({first.disabled_edge} disabled "
            f"by {first.disabling_transition}; "
            f"{len(violations)} violation(s))"
        )
        return False
    if prop == "normalcy":
        if args.portfolio:
            holds = _check_portfolio(stg, prop, args)
        else:
            holds = _check_normalcy(
                stg, args.method, args.node_budget, args.workers
            )
        print(f"normalcy: {'OK' if holds else 'VIOLATED'}")
        return holds
    if prop in ("usc", "csc"):
        if args.portfolio:
            holds = _check_portfolio(stg, prop, args)
        else:
            holds = _check_coding(
                stg, prop, args.method, args.verbose, args.node_budget,
                args.workers, use_facts=getattr(args, "facts", False),
                use_refinement=getattr(args, "refine", False),
            )
        print(f"{prop.upper()}: {'OK' if holds else 'CONFLICT'}")
        return holds
    raise ReproError(f"unknown property {prop!r}")


def _check_portfolio(stg, prop: str, args: argparse.Namespace) -> bool:
    """Race the engines named in ``--portfolio`` via :mod:`repro.engine`."""
    from repro.engine import VerificationJob, WorkerPool, run_jobs

    engines = tuple(name.strip() for name in args.portfolio.split(",") if name.strip())
    job = VerificationJob(
        stg=stg,
        property=prop,
        engines=engines,
        timeout=args.timeout,
        node_budget=args.node_budget,
        workers=getattr(args, "workers", 0),
        use_facts=getattr(args, "facts", False),
        use_refinement=getattr(args, "refine", False),
    )
    with WorkerPool(max_workers=len(engines)) as pool:
        result = run_jobs([job], pool)[0]
    if not result.sound:
        message = result.error or result.verdict
        if result.verdict in ("timeout", "limit"):
            raise SolverLimitError(message)
        raise ReproError(message)
    if args.verbose:
        print(f"  portfolio: {result.engine} won in {result.elapsed:.3f}s")
        if result.witness:
            print(f"  witness: {result.witness}")
    return bool(result.holds)


def _check_coding(
    stg,
    prop: str,
    method: str,
    verbose: bool,
    node_budget: Optional[int] = None,
    workers: int = 0,
    use_facts: bool = False,
    use_refinement: bool = False,
) -> bool:
    if method == "ilp":
        from repro.core import check_csc, check_usc

        report = (check_usc if prop == "usc" else check_csc)(
            stg, node_budget=node_budget, workers=workers, use_facts=use_facts,
            use_refinement=use_refinement,
        )
        if verbose and report.witness is not None:
            print(f"  witness: {report.witness.describe()}")
        if verbose:
            stats = report.prefix_stats
            print(
                f"  prefix: |B|={stats['conditions']} |E|={stats['events']} "
                f"|E_cut|={stats['cutoffs']}; search nodes: "
                f"{report.search_stats.nodes}; {report.elapsed:.3f}s"
            )
        return report.holds
    if method == "sg":
        from repro.stg.stategraph import build_state_graph

        graph = build_state_graph(stg)
        if verbose:
            print(f"  state graph: {graph.num_states} states")
        return graph.has_usc() if prop == "usc" else graph.has_csc()
    if method == "bdd":
        from repro.symbolic import symbolic_check

        report = symbolic_check(stg, prop)
        if verbose:
            print(
                f"  symbolic: {report.num_states} states, "
                f"{report.num_conflict_pairs} conflict pairs, "
                f"{report.bdd_nodes} BDD nodes; {report.elapsed:.3f}s"
            )
        return report.holds
    if method == "sat":
        from repro.sat import check_csc_sat, check_usc_sat

        report = (check_usc_sat if prop == "usc" else check_csc_sat)(stg)
        if verbose:
            print(
                f"  SAT: {report.num_vars} vars, {report.num_clauses} "
                f"clauses, {report.sat_conflicts} conflicts, "
                f"{report.candidates_blocked} candidates blocked; "
                f"{report.elapsed:.3f}s"
            )
        return report.holds
    raise ReproError(f"unknown method {method!r}")


def _check_normalcy(
    stg, method: str, node_budget: Optional[int] = None, workers: int = 0
) -> bool:
    if method in ("ilp",):
        from repro.core import check_normalcy

        return check_normalcy(
            stg, node_budget=node_budget, workers=workers
        ).normal
    from repro.stg.normalcy import check_normalcy_state_graph

    return check_normalcy_state_graph(stg).normal


def _cmd_profile(args: argparse.Namespace) -> int:
    """Verify under the tracer and print the phase-time breakdown."""
    import json

    from repro import obs
    from repro.engine.batch import resolve_target
    from repro.utils.tables import format_table

    tracer = obs.get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    tracer.reset()
    try:
        with tracer.span("parse.target"):
            name, stg = resolve_target(args.file)
        properties = args.properties or ["usc", "csc"]
        verdicts = {}
        for prop in properties:
            with tracer.span(f"profile.{prop}"):
                verdicts[prop] = _profile_property(stg, prop, args)
        phases = tracer.phase_times()
        snapshot = tracer.snapshot()
        if args.trace_out:
            records = obs.write_jsonl(tracer, args.trace_out)
            print(
                f"trace: {records} records written to {args.trace_out}",
                file=sys.stderr,
            )
    finally:
        if not was_enabled:
            tracer.disable()

    refine_detail = _refine_detail(snapshot)

    if args.json:
        document = {
            "schema": "repro-profile/1",
            "target": name,
            "method": args.method,
            "properties": {
                prop: ("holds" if holds else "violated")
                for prop, holds in verdicts.items()
            },
            "phases": phases,
            "refine_detail": refine_detail,
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "timers": snapshot["timers"],
        }
        print(json.dumps(document, indent=2))
        return 0

    total = phases.get("total") or 0.0
    body = []
    rows = ["parse", "unfold", "closure", "solver", "lint", "analysis"]
    # the refinement row appears only when the phase actually ran (the
    # --refine path); a disabled refinement degrades to no row, not a crash
    show_refine = phases.get("refine", 0.0) > 0.0 or getattr(
        args, "refine", False
    )
    if show_refine:
        rows.insert(rows.index("solver") + 1, "refine")
    # likewise the fuzz row: only present when fuzz.* spans were recorded
    # (e.g. profiling a campaign driven through this process's tracer)
    if phases.get("fuzz", 0.0) > 0.0:
        rows.append("fuzz")
    for phase in rows:
        seconds = phases.get(phase, 0.0)
        share = f"{100.0 * seconds / total:.1f}%" if total > 0 else "-"
        body.append([phase, f"{seconds * 1000:.3f}", share])
        if phase == "refine":
            # split the refinement phase into its LP-solve and exact
            # certification components (nested spans, so they are shadowed
            # in the phase totals and never double-count above)
            for sub in ("lp_solve", "certify"):
                sub_seconds = refine_detail.get(sub, 0.0)
                sub_share = (
                    f"{100.0 * sub_seconds / total:.1f}%" if total > 0 else "-"
                )
                body.append(
                    [f"  refine.{sub}", f"{sub_seconds * 1000:.3f}", sub_share]
                )
    body.append(["total", f"{total * 1000:.3f}", "100.0%" if total > 0 else "-"])
    print(
        format_table(
            ["phase", "ms", "share"],
            body,
            title=f"Phase breakdown: {name} ({', '.join(properties)}, "
            f"method={args.method})",
        )
    )
    for prop, holds in verdicts.items():
        print(f"{prop}: {'holds' if holds else 'violated'}")
    counters = snapshot["counters"]
    if counters:
        print("\ncounters:")
        for counter, value in sorted(counters.items()):  # type: ignore[union-attr]
            print(f"  {counter} = {value}")
    gauges = snapshot["gauges"]
    if gauges:
        print("gauges:")
        for gauge, value in sorted(gauges.items()):  # type: ignore[union-attr]
            print(f"  {gauge} = {value:g}")
    return 0


def _refine_detail(snapshot) -> dict:
    """Summed ``refine.lp_solve`` / ``refine.certify`` span durations.

    These spans are nested under ``refine.prescreen``, so the phase table's
    ``refine`` row already includes them; the detail rows show where inside
    the phase the time went.
    """
    detail = {"lp_solve": 0.0, "certify": 0.0}
    for span in snapshot.get("spans", ()):
        name = span.get("name", "")
        if name == "refine.lp_solve":
            detail["lp_solve"] += span.get("dur", 0.0)
        elif name == "refine.certify":
            detail["certify"] += span.get("dur", 0.0)
    return detail


def _profile_property(stg, prop: str, args: argparse.Namespace) -> bool:
    workers = getattr(args, "workers", 0)
    if prop == "normalcy":
        return _check_normalcy(stg, args.method, args.node_budget, workers)
    return _check_coding(
        stg, prop, args.method, False, args.node_budget, workers,
        use_facts=getattr(args, "facts", False),
        use_refinement=getattr(args, "refine", False),
    )


def _cmd_unfold(args: argparse.Namespace) -> int:
    from repro.unfolding import unfold

    stg = _load_stg(args.file)
    prefix = unfold(stg)
    print(
        f"{stg.name}: |B|={prefix.num_conditions} |E|={prefix.num_events} "
        f"|E_cut|={prefix.num_cutoffs}"
    )
    if args.events:
        for event in prefix.events:
            marker = "  [cutoff]" if event.is_cutoff else ""
            print(f"  {prefix.event_name(event.index)}{marker}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.stg.stategraph import build_state_graph
    from repro.unfolding import unfold

    stg = _load_stg(args.file)
    stats = stg.stats()
    print(
        f"STG {stg.name}: |S|={stats['places']} |T|={stats['transitions']} "
        f"|Z|={stats['signals']}"
    )
    prefix = unfold(stg)
    print(
        f"prefix: |B|={prefix.num_conditions} |E|={prefix.num_events} "
        f"|E_cut|={prefix.num_cutoffs}"
    )
    graph = build_state_graph(stg)
    print(f"state graph: {graph.num_states} states, {graph.num_arcs} arcs")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.stg.stategraph import build_state_graph
    from repro.synthesis import resolve_csc, synthesise

    stg = _load_stg(args.file)
    resolution = resolve_csc(stg, max_signals=args.max_signals)
    if resolution.insertions:
        print(f"CSC resolved by inserting: {resolution.describe()}")
    stg = resolution.stg
    result = synthesise(stg)
    print("complex-gate equations:")
    for equation in result.equations():
        print(f"  {equation}")
    if args.gc:
        print("generalised C-element networks:")
        for impl in result.per_signal.values():
            print(f"  {impl.gc_equations(result.names)}")
    if not result.verify(build_state_graph(stg)):
        raise ReproError("internal error: covers do not match the state graph")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.export import prefix_to_dot, state_graph_to_dot, stg_to_dot
    from repro.stg.stategraph import build_state_graph
    from repro.unfolding import unfold

    stg = _load_stg(args.file)
    if args.what == "stg":
        print(stg_to_dot(stg))
    elif args.what == "prefix":
        print(prefix_to_dot(unfold(stg)))
    else:
        print(state_graph_to_dot(build_state_graph(stg)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.table1 import run_table1

    print(run_table1(include_slow=args.full, jobs=args.jobs))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    return _with_trace_out(args, lambda: _run_batch_cmd(args))


def _run_batch_cmd(args: argparse.Namespace) -> int:
    from repro.engine import (
        EventLog,
        build_jobs_reporting,
        default_cache_dir,
        default_targets,
        format_batch_report,
        run_batch,
    )

    engines = tuple(
        name.strip() for name in args.portfolio.split(",") if name.strip()
    )
    if not engines:
        raise ReproError("empty --portfolio")
    targets = args.targets or default_targets()
    jobs, target_errors = build_jobs_reporting(
        targets,
        properties=args.properties or ["csc"],
        engines=engines,
        timeout=args.timeout,
        node_budget=args.node_budget,
        workers=args.workers,
    )
    cache_dir = None if args.no_cache else (args.cache_dir or str(default_cache_dir()))
    report = run_batch(
        jobs,
        max_workers=args.jobs,
        max_retries=args.retries,
        cache_dir=cache_dir,
        events=EventLog(),
    )
    # bad targets become structured error rows instead of aborting the batch
    report.results = target_errors + report.results
    print(format_batch_report(report))
    if not report.all_sound:
        failed = [r for r in report.results if not r.sound]
        print(
            f"error: {len(failed)} job(s) did not reach a verdict "
            f"(first: {failed[0].job_id}: {failed[0].error})",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_server

    return run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        cache_dir=None if args.no_cache else (args.cache_dir or _cache_dir_default()),
        batch_limit=args.batch_limit,
        lint=not args.no_lint,
        drain_timeout=args.drain_timeout,
    )


def _cache_dir_default() -> str:
    from repro.engine import default_cache_dir

    return str(default_cache_dir())


def parse_age(text: str) -> float:
    """``30d`` / ``12h`` / ``45m`` / ``90s`` / plain seconds -> seconds."""
    text = text.strip().lower()
    if not text:
        raise ReproError("empty age")
    multiplier = 1.0
    if text[-1] in "smhdw":
        multiplier = {"s": 1, "m": 60, "h": 3600, "d": 86400, "w": 604800}[text[-1]]
        text = text[:-1]
    try:
        value = float(text)
    except ValueError:
        raise ReproError(
            f"cannot parse age {text!r}: use e.g. 30d, 12h, 45m or seconds"
        ) from None
    if value < 0:
        raise ReproError("age must be non-negative")
    return value * multiplier


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro.engine import ResultCache

    cache = ResultCache(args.cache_dir or _cache_dir_default())
    if args.cache_command == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        print(f"cache: {stats['root']} (schema v{stats['schema_version']})")
        print(
            f"  {stats['entries']} entries, {stats['total_bytes']} bytes"
            + (f", {stats['unreadable']} unreadable" if stats["unreadable"] else "")
        )
        for title, key in (("domain", "by_domain"), ("property", "by_property"),
                           ("verdict", "by_verdict"), ("schema", "by_schema")):
            breakdown = stats[key]
            if breakdown:
                body = ", ".join(
                    f"{name}={count}" for name, count in sorted(breakdown.items())
                )
                print(f"  by {title}: {body}")
        if stats["oldest_mtime"] is not None:
            import time as _time

            age = _time.time() - stats["oldest_mtime"]
            print(f"  oldest entry: {age / 86400:.1f} day(s) old")
        return 0
    if args.cache_command == "prune":
        seconds = parse_age(args.older_than)
        removed = cache.prune(seconds)
        if args.json:
            print(json.dumps({"removed": removed, "older_than_s": seconds}))
        else:
            print(
                f"cache prune: removed {removed} entr"
                f"{'y' if removed == 1 else 'ies'} older than {args.older_than}"
            )
        return 0
    raise ReproError(f"unknown cache command {args.cache_command!r}")


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.engine.batch import resolve_target
    from repro.lint import render_text, report_to_dict, run_lint

    exit_code = 0
    payloads = []
    for target in args.targets:
        _, stg = resolve_target(target)
        report = run_lint(
            stg,
            rules=args.rules,
            prefilter=not args.no_prefilter,
            size_budget=args.size_budget,
        )
        if args.json:
            payloads.append(report_to_dict(report))
        else:
            print(
                render_text(
                    report,
                    verbose=args.verbose or args.verbosity > 0,
                    color=sys.stdout.isatty(),
                )
            )
        exit_code = max(exit_code, report.exit_code)
    if args.json:
        document = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(document, indent=2))
    return exit_code


def _cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import AnalysisOptions, analyze
    from repro.engine.batch import resolve_target

    options = AnalysisOptions(
        trap_max_size=args.set_size,
        trap_max_count=args.set_count,
        siphon_max_size=args.set_size,
        siphon_max_count=args.set_count,
    )
    exit_code = 0
    payloads = []
    for target in args.targets:
        _, stg = resolve_target(target)
        facts = analyze(stg, options=options)
        bad = facts.verify_all(stg) if args.verify else []
        if bad:
            exit_code = 2
        if args.json:
            document = facts.to_dict()
            if args.verify:
                document["verified"] = not bad
                document["failed_facts"] = [f.to_dict() for f in bad]
            payloads.append(document)
            continue
        counts = facts.counts()
        summary = (
            ", ".join(f"{kind}={n}" for kind, n in sorted(counts.items()))
            or "no facts"
        )
        print(f"{stg.name}: {len(facts.facts)} facts ({summary})")
        if facts.proves_dynamic_conflict_freeness():
            print(
                "  dynamic conflict-freeness: proven (every structural "
                "conflict pair is never co-enabled)"
            )
        if args.verbose or args.verbosity > 0:
            for fact in facts.facts:
                print(f"  [{fact.kind}] {fact.claim}")
        if args.verify:
            if bad:
                print(f"  VERIFICATION FAILED for {len(bad)} fact(s):")
                for fact in bad:
                    print(f"    [{fact.kind}] {fact.claim}")
            else:
                print(f"  verified: all {len(facts.facts)} facts check out")
    if args.json:
        document = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(document, indent=2))
    return exit_code


def _fuzz_config(args: argparse.Namespace):
    from repro.fuzz import OracleConfig

    kwargs = {}
    if getattr(args, "engines", None):
        kwargs["engines"] = tuple(args.engines.split(","))
    if getattr(args, "max_states", None):
        kwargs["max_states"] = args.max_states
    return OracleConfig(**kwargs)


def _fuzz_corpus(args: argparse.Namespace):
    from repro.fuzz import CorpusStore

    return CorpusStore(getattr(args, "corpus_dir", None))


def _cmd_fuzz(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_fuzz_run,
        "repro": _cmd_fuzz_repro,
        "shrink": _cmd_fuzz_shrink,
        "corpus": _cmd_fuzz_corpus,
    }
    return handlers[args.fuzz_command](args)


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    import time

    from repro.fuzz import run_campaign

    corpus = None if args.no_corpus else _fuzz_corpus(args)
    started = time.perf_counter()
    result = run_campaign(args.seed, args.budget, _fuzz_config(args), corpus)
    elapsed = time.perf_counter() - started
    summary = result.summary
    if args.json:
        print(summary.to_json())
    else:
        print(f"campaign seed={summary.seed} budget={summary.budget}:")
        print(
            f"  {summary.cases} cases, {summary.checkable} checkable, "
            f"{sum(summary.skipped.values())} skipped "
            f"({', '.join(f'{k}={v}' for k, v in sorted(summary.skipped.items())) or 'none'})"
        )
        print(
            f"  {summary.oracle_runs} oracle runs, "
            f"{summary.divergences} divergence(s), "
            f"{summary.unique_signatures} unique signature(s)"
        )
        if corpus is not None:
            print(
                f"  corpus: {summary.corpus_new} new, "
                f"{summary.corpus_dup} duplicate ({corpus.root})"
            )
    # wall-clock goes to stderr so stdout stays identical across reruns
    print(f"elapsed: {elapsed:.1f}s", file=sys.stderr)
    for divergence in result.divergences:
        print(divergence.describe(), file=sys.stderr)
    return 1 if summary.divergences else 0


def _cmd_fuzz_repro(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz import reproduce_case, run_oracles

    try:
        case = reproduce_case(args.case_id)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    outcome = run_oracles(case, _fuzz_config(args))
    if args.json:
        document = {
            "case_id": case.case_id,
            "base": case.base,
            "mutations": list(case.mutations),
            "preserving": case.preserving,
            "checkable": outcome.checkable,
            "skip_reason": outcome.skip_reason,
            "oracle_runs": outcome.oracle_runs,
            "divergences": [
                {
                    "oracle": d.oracle,
                    "subject": d.subject,
                    "signature": d.signature,
                    "detail": d.detail,
                }
                for d in outcome.divergences
            ],
        }
        print(json.dumps(document, indent=2))
    else:
        print(case.describe())
        if outcome.checkable:
            print(f"checkable; {outcome.oracle_runs} oracle run(s)")
        else:
            print(f"skipped by guards: {outcome.skip_reason}")
        for divergence in outcome.divergences:
            print(divergence.describe())
        if not outcome.divergences:
            print("no divergence")
    return 1 if outcome.divergences else 0


def _cmd_fuzz_shrink(args: argparse.Namespace) -> int:
    from repro.fuzz import reproduce_case, shrink_case
    from repro.stg.parser import write_stg

    corpus = _fuzz_corpus(args)
    signature = args.signature
    entry = None
    if signature is None:
        matches = corpus.find(args.case_id)
        if not matches:
            print(
                f"error: no corpus entry matches {args.case_id!r} and no "
                "--signature given",
                file=sys.stderr,
            )
            return 2
        entry = matches[0]
        signature = entry["signature"]
    try:
        case = reproduce_case(args.case_id)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = shrink_case(
        case, signature, _fuzz_config(args), max_checks=args.max_checks
    )
    if result is None:
        print(
            f"{args.case_id}: signature {signature!r} did not reproduce",
            file=sys.stderr,
        )
        return 1
    text = write_stg(result.stg)
    print(f"# shrunk {args.case_id} [{signature}]: {result.stats()}")
    print(text, end="")
    if entry is not None:
        corpus.mark_minimized(entry["key"], text)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"written to {args.out}", file=sys.stderr)
    return 0


def _cmd_fuzz_corpus(args: argparse.Namespace) -> int:
    import json

    corpus = _fuzz_corpus(args)
    if args.corpus_command == "clear":
        removed = corpus.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.corpus_command == "show":
        matches = corpus.find(args.key)
        if not matches:
            print(f"error: no entry matches {args.key!r}", file=sys.stderr)
            return 2
        print(json.dumps(matches[0], indent=2, sort_keys=True))
        return 0
    entries = list(corpus.entries())
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"corpus at {corpus.root} is empty")
        return 0
    print(f"corpus at {corpus.root}: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
    for entry in entries:
        flag = "minimized" if entry.get("minimized") else "raw"
        print(
            f"  {entry['key'][:12]}  {entry['case_id']:<12} "
            f"hits={entry.get('hits', 1):<4} [{flag}] {entry['signature']}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stg",
        description="STG state-coding verification via unfoldings and "
        "integer programming (DATE 2002 reproduction)",
    )
    parser.add_argument(
        "--verbose",
        "-v",
        action="count",
        default=0,
        dest="verbosity",
        help="stream library logging to stderr (-v = INFO, -vv = DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="verify properties of an STG")
    check.add_argument("file", help="astg .g file")
    check.add_argument(
        "--property",
        "-p",
        dest="properties",
        action="append",
        choices=[
            "usc",
            "csc",
            "normalcy",
            "consistency",
            "deadlock",
            "autoconcurrency",
            "persistency",
        ],
        help="property to verify (repeatable; default: csc)",
    )
    check.add_argument(
        "--method",
        "-m",
        default="ilp",
        choices=["ilp", "sg", "bdd", "sat"],
        help="engine: unfolding+IP (default), explicit or symbolic state "
        "graph, or the SAT back-end",
    )
    check.add_argument(
        "--portfolio",
        metavar="ENGINES",
        help="race a comma-separated engine portfolio (e.g. ilp,sat) per "
        "property instead of --method; first sound verdict wins",
    )
    check.add_argument(
        "--node-budget",
        type=int,
        metavar="N",
        help="give up (exit 2) if the IP search exceeds N branch-and-bound "
        "nodes",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="split the IP search tree over N worker processes "
        "(default: 0 = sequential; ilp method only)",
    )
    check.add_argument(
        "--facts",
        action="store_true",
        help="let the IP search consume the structural facts engine "
        "(repro.analysis): facts-licensed prescreens and clique-capacity "
        "pruning; verdicts and witnesses are byte-identical either way",
    )
    check.add_argument(
        "--refine",
        action="store_true",
        help="run the CEGAR trap/siphon refinement prescreen (repro.refine) "
        "before the IP search: refuted conflict systems skip the search "
        "entirely with a replayable cut certificate; verdicts and witnesses "
        "are byte-identical either way (docs/refinement.md)",
    )
    check.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="per-engine wall-clock deadline (portfolio mode only)",
    )
    check.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        help="record the run as a JSON-Lines trace (enables tracing)",
    )
    check.add_argument("--verbose", "-v", action="store_true")
    check.set_defaults(func=_cmd_check)

    profile = sub.add_parser(
        "profile",
        help="phase-time breakdown of a verification run",
        description="Verify TARGET (a registered model name or a .g file) "
        "with the repro.obs tracer enabled and print where the time went: "
        "parse, unfold, closure, solver (and lint when it ran), plus the "
        "counter catalogue (events, cut-offs, search nodes, solver "
        "decisions).  See docs/observability.md for the span taxonomy.",
    )
    profile.add_argument("file", help="registered model name or astg .g file")
    profile.add_argument(
        "--property",
        "-p",
        dest="properties",
        action="append",
        choices=["usc", "csc", "normalcy"],
        help="property to profile (repeatable; default: usc and csc)",
    )
    profile.add_argument(
        "--method",
        "-m",
        default="ilp",
        choices=["ilp", "sg", "bdd", "sat"],
        help="engine to profile (default: ilp, the paper's method)",
    )
    profile.add_argument(
        "--node-budget", type=int, metavar="N", help="IP search node budget"
    )
    profile.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="intra-check search workers (default: 0 = sequential)",
    )
    profile.add_argument(
        "--facts",
        action="store_true",
        help="enable the structural-facts search path (ilp method only)",
    )
    profile.add_argument(
        "--refine",
        action="store_true",
        help="enable the CEGAR refinement prescreen (ilp method only); adds "
        "the refine row to the phase table",
    )
    profile.add_argument(
        "--json", action="store_true", help="emit the breakdown as JSON"
    )
    profile.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        help="also write the full trace as JSON Lines",
    )
    profile.set_defaults(func=_cmd_profile)

    batch = sub.add_parser(
        "batch",
        help="verify many STGs through the parallel portfolio engine",
        description="Verify TARGET... (registered model names or .g files; "
        "default: every Table 1 benchmark) against the selected properties "
        "using the worker pool, portfolio racing and the on-disk result "
        "cache.  Exit status 0 means every job reached a sound verdict "
        "(conflicts included — batch reports, it does not gate); 2 means "
        "some job timed out or errored.",
    )
    batch.add_argument(
        "targets",
        nargs="*",
        metavar="TARGET",
        help="model names or .g files (default: all Table 1 benchmarks)",
    )
    batch.add_argument(
        "--property",
        "-p",
        dest="properties",
        action="append",
        choices=["usc", "csc", "normalcy"],
        help="property to verify (repeatable; default: csc)",
    )
    batch.add_argument(
        "--portfolio",
        default="ilp",
        metavar="ENGINES",
        help="comma-separated engines to race per job (default: ilp)",
    )
    batch.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: CPU count; 0 = in-process)",
    )
    batch.add_argument(
        "--timeout", type=float, metavar="SECONDS", help="per-engine deadline"
    )
    batch.add_argument(
        "--node-budget", type=int, metavar="N", help="IP search node budget"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="intra-check search workers per ilp job (default: 0 = "
        "sequential; multiplies with --jobs)",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retries per task after a worker death (default: 1)",
    )
    batch.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-stg)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="neither read nor write the cache"
    )
    batch.add_argument(
        "--trace-out",
        metavar="FILE.jsonl",
        help="record the run as a JSON-Lines trace (enables tracing; traces "
        "in-process work — use --jobs 0 for full engine coverage)",
    )
    batch.set_defaults(func=_cmd_batch)

    lint = sub.add_parser(
        "lint",
        help="static STG diagnostics with certifying conflict pre-filters",
        description="Run the three-tier static analysis (well-formedness, "
        "STG semantics, conflict pre-filters) over TARGET... (registered "
        "model names or .g files) without building any state space.  Exit "
        "status follows the compiler convention: 0 clean, 1 warnings only, "
        "2 errors.",
    )
    lint.add_argument(
        "targets",
        nargs="+",
        metavar="TARGET",
        help="model names or .g files",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the structured report (diagnostics, decisions, "
        "certificates) as JSON",
    )
    lint.add_argument(
        "--rules",
        action="append",
        metavar="PATTERN",
        help="only run rules whose id or name matches the glob "
        "(repeatable, e.g. --rules 'W*' --rules usc-affine-certificate)",
    )
    lint.add_argument(
        "--no-prefilter",
        action="store_true",
        help="skip the certifying conflict pre-filter tier",
    )
    lint.add_argument(
        "--size-budget",
        type=int,
        default=160,
        metavar="N",
        help="max places+transitions for the polyhedral rules (default: 160)",
    )
    lint.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="also print fix-it hints and decided properties",
    )
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="compute and print the structural facts of an STG",
        description="Run the repro.analysis facts engine over TARGET... "
        "(registered model names or .g files): structural conflicts, "
        "invariant-backed never-co-enabled exclusions, minimal traps and "
        "siphons, dead transitions, signal trigger/lock structure.  Every "
        "fact carries a machine-checkable justification; --verify replays "
        "them all.  See docs/analysis.md.",
    )
    analyze.add_argument(
        "targets",
        nargs="+",
        metavar="TARGET",
        help="model names or .g files",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the serialized FactBase as JSON",
    )
    analyze.add_argument(
        "--verify",
        action="store_true",
        help="replay every fact's justification; exit 2 if any fails",
    )
    analyze.add_argument(
        "--set-size",
        type=int,
        default=16,
        metavar="N",
        help="max places per enumerated trap/siphon (default 16)",
    )
    analyze.add_argument(
        "--set-count",
        type=int,
        default=32,
        metavar="N",
        help="max minimal traps/siphons to enumerate (default 32)",
    )
    analyze.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="print every fact, not just the per-kind counts",
    )
    analyze.set_defaults(func=_cmd_analyze)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON verification service",
        description="Serve POST /v1/check requests (astg source, canonical "
        "JSON STGs or registered model names) from a long-lived engine "
        "worker pool with a bounded admission queue (HTTP 429 + Retry-After "
        "under load), in-flight deduplication by content hash, the shared "
        "on-disk result cache, and live /v1/metrics.  SIGTERM drains "
        "gracefully: admission stops, accepted jobs finish.  See "
        "docs/serving.md for the API reference.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8421,
        metavar="N",
        help="TCP port (default 8421; 0 = ephemeral, announced on stdout)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="engine worker processes (default: CPU count; 0 = in-process)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="max queued jobs before requests get 429 (default 64)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock deadline (requests may override)",
    )
    serve.add_argument(
        "--batch-limit",
        type=int,
        default=8,
        metavar="N",
        help="max jobs dispatched to the pool per cycle (default 8)",
    )
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro-stg)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="serve without the result cache"
    )
    serve.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the static lint pre-filter stage",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max time to wait for in-flight jobs on SIGTERM (default: wait)",
    )
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache",
        help="inspect and bound the on-disk result cache",
        description="Operate on the content-addressed result store shared "
        "by batch, check --portfolio and serve: 'stats' summarises entry "
        "counts, sizes and breakdowns; 'prune --older-than AGE' deletes "
        "entries (and orphaned temp files) last written before the cutoff.",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="summarise the store")
    cache_prune = cache_sub.add_parser("prune", help="delete old entries")
    cache_prune.add_argument(
        "--older-than",
        required=True,
        metavar="AGE",
        help="age cutoff: 30d, 12h, 45m or plain seconds",
    )
    for cache_cmd in (cache_stats, cache_prune):
        cache_cmd.add_argument(
            "--cache-dir",
            metavar="DIR",
            help="cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro-stg)",
        )
        cache_cmd.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
        cache_cmd.set_defaults(func=_cmd_cache)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the verification engines",
        description="Generate seeded STGs, run them through every engine "
        "and a battery of metamorphic oracles, and record divergences in a "
        "deduplicated corpus.  Campaigns are deterministic: the same seed "
        "and budget produce the same cases, oracle schedule and summary on "
        "any machine (docs/fuzzing.md).",
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser("run", help="run a fuzzing campaign")
    fuzz_run.add_argument("--seed", type=int, default=0, help="campaign seed")
    fuzz_run.add_argument(
        "--budget", type=int, default=200, metavar="N", help="number of cases"
    )
    fuzz_run.add_argument(
        "--no-corpus",
        action="store_true",
        help="do not persist divergences to the corpus",
    )
    fuzz_repro = fuzz_sub.add_parser(
        "repro", help="regenerate one case and re-run its oracles"
    )
    fuzz_repro.add_argument("case_id", metavar="CASE_ID", help="s<seed>-c<index>")
    fuzz_shrink = fuzz_sub.add_parser(
        "shrink", help="minimize a failing case while its divergence persists"
    )
    fuzz_shrink.add_argument("case_id", metavar="CASE_ID")
    fuzz_shrink.add_argument(
        "--signature",
        help="divergence signature to preserve (default: from the corpus "
        "entry recorded for CASE_ID)",
    )
    fuzz_shrink.add_argument(
        "--max-checks",
        type=int,
        default=200,
        metavar="N",
        help="oracle-run budget for the shrink loop (default: 200)",
    )
    fuzz_shrink.add_argument(
        "--out", metavar="FILE", help="also write the minimized .g here"
    )
    fuzz_corpus = fuzz_sub.add_parser(
        "corpus", help="list, show or clear recorded divergences"
    )
    corpus_sub = fuzz_corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_list = corpus_sub.add_parser("list", help="list entries")
    corpus_show = corpus_sub.add_parser("show", help="dump one entry as JSON")
    corpus_show.add_argument("key", help="entry key prefix or case id")
    corpus_clear = corpus_sub.add_parser("clear", help="delete every entry")
    for fuzz_cmd in (fuzz_run, fuzz_repro, fuzz_shrink):
        fuzz_cmd.add_argument(
            "--engines",
            metavar="A,B,...",
            help="engines to run differentially (default: ilp,sat,bdd)",
        )
        fuzz_cmd.add_argument(
            "--max-states",
            type=int,
            default=None,
            metavar="N",
            help="reachability guard: skip cases beyond N states",
        )
    for fuzz_cmd in (fuzz_run, fuzz_shrink, corpus_list, corpus_show, corpus_clear):
        fuzz_cmd.add_argument(
            "--corpus-dir",
            metavar="DIR",
            help="corpus directory (default: $REPRO_FUZZ_CORPUS or "
            "~/.cache/repro-stg-fuzz)",
        )
    for fuzz_cmd in (fuzz_run, fuzz_repro, corpus_list):
        fuzz_cmd.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
    for fuzz_cmd in (fuzz_run, fuzz_repro, fuzz_shrink, fuzz_corpus):
        fuzz_cmd.set_defaults(func=_cmd_fuzz)

    unfold_cmd = sub.add_parser("unfold", help="build the complete prefix")
    unfold_cmd.add_argument("file")
    unfold_cmd.add_argument("--events", action="store_true", help="list events")
    unfold_cmd.set_defaults(func=_cmd_unfold)

    stats = sub.add_parser("stats", help="size statistics")
    stats.add_argument("file")
    stats.set_defaults(func=_cmd_stats)

    synth = sub.add_parser(
        "synth", help="resolve CSC if needed and derive boolean equations"
    )
    synth.add_argument("file")
    synth.add_argument("--gc", action="store_true", help="also print set/reset covers")
    synth.add_argument("--max-signals", type=int, default=2)
    synth.set_defaults(func=_cmd_synth)

    export = sub.add_parser("export", help="emit Graphviz DOT")
    export.add_argument("file")
    export.add_argument(
        "what", choices=["stg", "prefix", "sg"], help="which view to export"
    )
    export.set_defaults(func=_cmd_export)

    bench = sub.add_parser("bench", help="regenerate the paper's Table 1")
    bench.add_argument(
        "--full", action="store_true", help="include the slowest baseline runs"
    )
    bench.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="measure rows in N worker processes (default: 1 = in-process)",
    )
    bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbosity)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
