"""Rendering of lint reports: compiler-style text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.lint.diagnostics import LintReport


def render_text(
    report: LintReport, verbose: bool = False, color: bool = False
) -> str:
    """Compiler-style one-line-per-diagnostic rendering plus a summary.

    ``verbose`` appends fix-it hints and decided properties; certificates
    are never printed in text mode (use JSON for those).
    """
    palette = {
        "error": "\x1b[31m",
        "warning": "\x1b[33m",
        "info": "\x1b[36m",
    }
    reset = "\x1b[0m"
    lines: List[str] = []
    for diagnostic in report.sorted_diagnostics():
        severity = diagnostic.severity
        if color:
            severity = f"{palette[diagnostic.severity]}{severity}{reset}"
        lines.append(
            f"{diagnostic.location}: {severity}[{diagnostic.rule_id}] "
            f"{diagnostic.message}"
        )
        if verbose and diagnostic.fixit:
            lines.append(f"    fix: {diagnostic.fixit}")
        if verbose and diagnostic.decides:
            decided = ", ".join(
                f"{prop}={'holds' if holds else 'violated'}"
                for prop, holds in sorted(diagnostic.decides.items())
            )
            lines.append(f"    decides: {decided}")
    lines.append(f"{report.stg_name}: {report.summary()}")
    return "\n".join(lines)


def report_to_dict(report: LintReport) -> Dict[str, Any]:
    """JSON-safe dict with diagnostics, decisions, and exit code."""
    return {
        "stg": report.stg_name,
        "summary": report.summary(),
        "exit_code": report.exit_code,
        "rules_run": list(report.rules_run),
        "diagnostics": [d.to_dict() for d in report.sorted_diagnostics()],
        "decisions": {
            prop: {
                "holds": decision.holds,
                "rule": decision.diagnostic.rule_id,
            }
            for prop, decision in report.decisions().items()
        },
    }


def render_json(report: LintReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent)
