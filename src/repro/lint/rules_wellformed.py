"""Well-formedness rules (tier 1): structural defects of the net itself.

These rules need nothing but the flow relation and the initial marking; they
catch ``.g`` files that no verification engine can handle meaningfully —
dead or isolated nodes, non-ordinary arcs, non-1-safe initial markings,
transitions that fire unboundedly.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    TIER_WELLFORMED,
)
from repro.lint.registry import RuleContext, rule


@rule("W101", "isolated-node", TIER_WELLFORMED, SEVERITY_WARNING)
def isolated_node(context: RuleContext) -> Iterator[Diagnostic]:
    """A place or transition with no incident arcs plays no role in the net."""
    net = context.net
    for p in range(net.num_places):
        if not net.place_preset(p) and not net.place_postset(p):
            name = net.place_name(p)
            yield Diagnostic(
                rule_id="W101",
                severity=SEVERITY_WARNING,
                message=f"place {name!r} has no arcs; it cannot affect any "
                "behaviour",
                subject=name,
                span=context.place_span(p),
                fixit="remove the place or connect it to a transition",
            )
    for t in range(net.num_transitions):
        if not net.preset(t) and not net.postset(t):
            name = net.transition_name(t)
            yield Diagnostic(
                rule_id="W101",
                severity=SEVERITY_WARNING,
                message=f"transition {name!r} has no arcs; it fires without "
                "any effect",
                subject=name,
                span=context.transition_span(t),
                fixit="remove the transition or connect it to a place",
            )


@rule("W102", "dead-place", TIER_WELLFORMED, SEVERITY_ERROR)
def dead_place(context: RuleContext) -> Iterator[Diagnostic]:
    """An unmarked place with no producers starves all of its consumers."""
    net = context.net
    initial = net.initial_marking
    for p in range(net.num_places):
        consumers = net.place_postset(p)
        if not consumers:
            continue
        if net.place_preset(p) or initial[p] > 0:
            continue
        name = net.place_name(p)
        dead = ", ".join(
            repr(net.transition_name(t)) for t in sorted(consumers)
        )
        yield Diagnostic(
            rule_id="W102",
            severity=SEVERITY_ERROR,
            message=f"place {name!r} has no producers and no initial token; "
            f"its consumer(s) {dead} can never fire",
            subject=name,
            span=context.place_span(p),
            fixit="mark the place in .marking or add a producing arc",
        )


@rule("W103", "silent-transition", TIER_WELLFORMED, SEVERITY_INFO)
def silent_transition(context: RuleContext) -> Iterator[Diagnostic]:
    """A transition with no signal label is silent; conflict analysis loses
    precision on nets with dummies."""
    for t in range(context.net.num_transitions):
        if context.stg.label(t) is None:
            name = context.net.transition_name(t)
            yield Diagnostic(
                rule_id="W103",
                severity=SEVERITY_INFO,
                message=f"transition {name!r} carries no signal label (dummy); "
                "coding-conflict pre-filters are disabled on nets with "
                "silent transitions",
                subject=name,
                span=context.transition_span(t),
            )


@rule("W104", "weighted-arc", TIER_WELLFORMED, SEVERITY_ERROR)
def weighted_arc(context: RuleContext) -> Iterator[Diagnostic]:
    """An arc of weight > 1 (often a duplicated ``.graph`` arc) makes the net
    non-ordinary; the unfolding engine requires ordinary nets."""
    net = context.net
    for t in range(net.num_transitions):
        for p, weight in net.preset(t).items():
            if weight > 1:
                yield _weighted(context, net.place_name(p), net.transition_name(t), weight, t)
        for p, weight in net.postset(t).items():
            if weight > 1:
                yield _weighted(context, net.transition_name(t), net.place_name(p), weight, t)


def _weighted(
    context: RuleContext, source: str, target: str, weight: int, transition: int
) -> Diagnostic:
    return Diagnostic(
        rule_id="W104",
        severity=SEVERITY_ERROR,
        message=f"arc {source!r} -> {target!r} has weight {weight}; the net "
        "is not ordinary (was the arc written twice?)",
        subject=f"{source}->{target}",
        span=context.transition_span(transition),
        fixit="remove the duplicate arc",
    )


@rule("W105", "multi-token-place", TIER_WELLFORMED, SEVERITY_ERROR)
def multi_token_place(context: RuleContext) -> Iterator[Diagnostic]:
    """An initial marking with more than one token on a place is not 1-safe;
    the unfolding engine and the binary code semantics require safe nets."""
    net = context.net
    initial = net.initial_marking
    for p in range(net.num_places):
        if initial[p] > 1:
            name = net.place_name(p)
            yield Diagnostic(
                rule_id="W105",
                severity=SEVERITY_ERROR,
                message=f"place {name!r} initially carries {initial[p]} tokens; "
                "STG verification requires a 1-safe net",
                subject=name,
                span=context.place_span(p),
                fixit="reduce the initial marking to at most one token",
            )


@rule("W106", "source-transition", TIER_WELLFORMED, SEVERITY_ERROR)
def source_transition(context: RuleContext) -> Iterator[Diagnostic]:
    """A transition with an empty preset is always enabled and fires
    unboundedly, so the net cannot be safe."""
    net = context.net
    for t in range(net.num_transitions):
        # fully isolated transitions are W101's finding, not an unboundedness
        if not net.preset(t) and net.postset(t):
            name = net.transition_name(t)
            yield Diagnostic(
                rule_id="W106",
                severity=SEVERITY_ERROR,
                message=f"transition {name!r} has no input places; it is "
                "permanently enabled and makes the net unbounded",
                subject=name,
                span=context.transition_span(t),
                fixit="give the transition at least one input place",
            )
