"""Analysis-facts rules (tier 4, ``A4xx``): findings backed by the
structural facts engine (:mod:`repro.analysis`).

Unlike the S2xx heuristics these rules consume the shared
:class:`~repro.analysis.FactBase` — every negative claim they rely on
(never co-enabled, dead transition, trap/siphon structure) is a
:class:`~repro.analysis.Fact` with a machine-checkable justification.  The
FactBase is memoized per content hash, so the verifier's ``use_facts`` path
and the ``repro-stg analyze`` command reuse the same computation.

Like the pre-filter tier, the rules stay silent on nets beyond the
context's size budget rather than stall the pipeline.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.analysis import FACT_DEAD_TRANSITION, FACT_SIPHON
from repro.lint.diagnostics import (
    Diagnostic,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    TIER_ANALYSIS,
)
from repro.lint.registry import RuleContext, rule


def _within_budget(context: RuleContext) -> bool:
    net = context.net
    return net.num_places + net.num_transitions <= context.size_budget


@rule("A401", "autoconcurrency-unrefuted", TIER_ANALYSIS, SEVERITY_INFO)
def autoconcurrency_unrefuted(context: RuleContext) -> Iterator[Diagnostic]:
    """Two same-signal edges that no structural fact keeps apart may be
    auto-concurrent.  The facts engine tries harder than S201 (weighted
    invariant exclusions, dead-transition proofs), so everything it still
    cannot refute is worth a look — reported as info, not warning, because
    the relation is an over-approximation."""
    if not _within_budget(context):
        return
    stg = context.stg
    net = context.net
    facts = context.facts
    for signal in stg.signals:
        transitions = stg.transitions_of(signal)
        for i, t1 in enumerate(transitions):
            name1 = net.transition_name(t1)
            for t2 in transitions[i + 1:]:
                name2 = net.transition_name(t2)
                if facts.in_structural_conflict(name1, name2):
                    continue  # firing one disables the other
                if facts.never_coenabled(name1, name2):
                    continue  # an invariant or deadness fact separates them
                yield Diagnostic(
                    rule_id="A401",
                    severity=SEVERITY_INFO,
                    message=f"no structural fact separates edges {name1!r} "
                    f"and {name2!r} of signal {signal!r}; they may be "
                    "auto-concurrent",
                    subject=signal,
                    span=context.transition_span(t1),
                )


@rule("A402", "fact-dead-transition", TIER_ANALYSIS, SEVERITY_WARNING)
def fact_dead_transition(context: RuleContext) -> Iterator[Diagnostic]:
    """A transition proven dead by an unmarked-siphon fact: its preset
    intersects a siphon that starts empty and can never gain a token, so
    the transition never fires and its signal edge is unreachable."""
    if not _within_budget(context):
        return
    net = context.net
    for fact in context.facts.of_kind(FACT_DEAD_TRANSITION):
        name = fact.subjects[0]
        yield Diagnostic(
            rule_id="A402",
            severity=SEVERITY_WARNING,
            message=f"transition {name!r} is dead: {fact.claim}",
            subject=name,
            span=context.transition_span(net.transition_index(name)),
            fixit="mark a place of the siphon or remove the transition",
        )


@rule("A403", "siphon-without-marked-trap", TIER_ANALYSIS, SEVERITY_INFO)
def siphon_without_marked_trap(context: RuleContext) -> Iterator[Diagnostic]:
    """A minimal siphon containing no marked trap can drain permanently —
    the Commoner-style liveness argument fails for it, flagging a deadlock
    risk.  Info severity: for non-free-choice nets the condition is only
    sufficient for liveness, not necessary."""
    if not _within_budget(context):
        return
    from repro.analysis import maximal_trap

    net = context.net
    initial = net.initial_marking
    seen: List[Tuple[str, ...]] = []
    for fact in context.facts.of_kind(FACT_SIPHON):
        places = frozenset(net.place_index(name) for name in fact.subjects)
        trap = maximal_trap(net, places)
        if any(int(initial[p]) > 0 for p in trap):
            continue  # the largest trap inside the siphon is marked: live
        if fact.subjects in seen:
            continue
        seen.append(fact.subjects)
        names = ", ".join(fact.subjects)
        yield Diagnostic(
            rule_id="A403",
            severity=SEVERITY_INFO,
            message=f"siphon {{{names}}} contains no marked trap; once it "
            "drains it stays empty and its output transitions die",
            subject=fact.subjects[0],
        )
