"""Conflict pre-filter rules (tier 3): certifying static USC/CSC verdicts.

These rules attempt to *decide* the coding-conflict properties without
building a state space, using the state-equation relaxation over the
incidence matrix (the same relaxation the paper's ILP formulation is built
on).  Both are sound only for consistent, dummy-free STGs — the driver gates
the tier accordingly (see :func:`repro.lint.registry.run_lint`) and each
rule additionally refuses nets with silent transitions.

Because USC conflicts subsume CSC conflicts (equal full codes in particular
agree on inputs and on the enabled-output signature), a USC-safety
certificate decides *both* properties positively.

``C301`` (affine-code certificate) is the cheap exact-kernel test: if the
marking is an affine function of the signal code, distinct markings always
differ in code.  ``C302`` (state-equation LP) is strictly stronger but
costs ``2 |P|`` exact-rational LP solves, so it runs only when C301 was
inconclusive and the net fits the size budget.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.certificates import (
    build_affine_certificate,
    build_lp_certificate,
)
from repro.lint.diagnostics import (
    Diagnostic,
    SEVERITY_INFO,
    TIER_PREFILTER,
)
from repro.lint.registry import RuleContext, rule

#: Properties a USC-safety certificate settles (USC conflicts subsume CSC).
_DECIDES = {"usc": True, "csc": True}


@rule("C301", "usc-affine-certificate", TIER_PREFILTER, SEVERITY_INFO)
def usc_affine_certificate(context: RuleContext) -> Iterator[Diagnostic]:
    """The marking is an affine function of the signal code: every incidence
    row is a rational combination of signal-balance rows, so two reachable
    markings with equal codes are equal — USC (hence CSC) holds."""
    stg = context.stg
    if stg.has_dummies():
        return
    certificate = build_affine_certificate(stg)
    if certificate is None:
        return
    yield Diagnostic(
        rule_id="C301",
        severity=SEVERITY_INFO,
        message="statically USC-safe: the marking is an affine function of "
        "the signal code (certificate attached); USC and CSC hold without "
        "state-space search",
        subject=stg.name,
        decides=dict(_DECIDES),
        certificate=certificate,
    )


@rule("C302", "usc-state-equation", TIER_PREFILTER, SEVERITY_INFO)
def usc_state_equation(context: RuleContext) -> Iterator[Diagnostic]:
    """The state-equation relaxation admits no code-preserving marking
    change: for every place, the LP max/min of the token-flow difference
    over code-balanced Parikh-vector pairs is 0 — USC (hence CSC) holds."""
    stg = context.stg
    if stg.has_dummies():
        return
    if context.decided.get("usc") is not None:
        return  # C301 already settled it; skip the expensive LPs
    if stg.net.num_places + stg.net.num_transitions > context.size_budget:
        return  # 2|P| exact LPs would stall the zero-cost stage
    certificate = build_lp_certificate(stg)
    if certificate is None:
        return
    yield Diagnostic(
        rule_id="C302",
        severity=SEVERITY_INFO,
        message="statically USC-safe: the state-equation relaxation admits "
        "no code-preserving marking change (replayable LP certificate); "
        "USC and CSC hold without state-space search",
        subject=stg.name,
        decides=dict(_DECIDES),
        certificate=certificate,
    )
