"""The lint rule registry and driver.

Rules are plain functions decorated with :func:`rule`; each receives a
:class:`RuleContext` (the STG plus lazily-computed linear-algebra artefacts
shared across rules) and yields :class:`~repro.lint.diagnostics.Diagnostic`
objects.  Registration order is execution order, which matters for the
certifying pre-filter tier: the cheap exact-kernel certificate runs before
the LP relaxation, and a rule can consult ``context.decided`` to skip work
a predecessor already settled.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np

from repro.lint.diagnostics import (
    Diagnostic,
    LintReport,
    SEVERITY_ERROR,
    TIERS,
)
from repro.stg.sourcemap import KIND_PLACE, KIND_SIGNAL, KIND_TRANSITION, SourceSpan
from repro.stg.stg import STG

if TYPE_CHECKING:
    from repro.analysis import FactBase


class RuleContext:
    """Everything a rule may inspect, with shared lazy artefacts.

    ``size_budget`` bounds the net size (places + transitions) up to which
    the polyhedral pre-filter rules are allowed to run; rules that would
    exceed it must stay silent rather than stall the pipeline.
    """

    def __init__(self, stg: STG, size_budget: int = 160):
        self.stg = stg
        self.net = stg.net
        self.size_budget = size_budget
        #: Property verdicts established so far ({"usc": True, ...}).
        self.decided: Dict[str, bool] = {}
        self._incidence: Optional[np.ndarray] = None
        self._balance: Optional[np.ndarray] = None
        self._tinvariants: Optional[List[np.ndarray]] = None
        self._pinvariants: Optional[List[np.ndarray]] = None
        self._facts: Optional["FactBase"] = None

    # -- shared linear algebra -------------------------------------------------

    @property
    def incidence(self) -> np.ndarray:
        """The ``|S| x |T|`` incidence matrix of the underlying net."""
        if self._incidence is None:
            from repro.petri.incidence import incidence_matrix

            self._incidence = incidence_matrix(self.net)
        return self._incidence

    @property
    def balance(self) -> np.ndarray:
        """The ``|Z| x |T|`` signal-balance matrix ``B``.

        ``B[z, t]`` is the code delta of signal ``z`` when ``t`` fires:
        ``+1`` for ``z+`` labels, ``-1`` for ``z-``, 0 elsewhere (dummies
        contribute an all-zero column).
        """
        if self._balance is None:
            from repro.petri.incidence import balance_matrix_from_changes

            changes = [
                self.stg.signal_change(t)
                for t in range(self.net.num_transitions)
            ]
            self._balance = balance_matrix_from_changes(
                changes, len(self.stg.signals)
            )
        return self._balance

    @property
    def tinvariants(self) -> List[np.ndarray]:
        if self._tinvariants is None:
            from repro.petri.analysis import transition_invariants

            self._tinvariants = transition_invariants(self.net)
        return self._tinvariants

    @property
    def pinvariants(self) -> List[np.ndarray]:
        if self._pinvariants is None:
            from repro.petri.analysis import place_invariants

            self._pinvariants = place_invariants(self.net)
        return self._pinvariants

    @property
    def facts(self) -> "FactBase":
        """The structural :class:`~repro.analysis.FactBase` of the STG.

        Memoized per content hash inside :func:`repro.analysis.analyze`, so
        the A4xx rules, the verifier's ``use_facts`` path and the CLI all
        share one computation.
        """
        if self._facts is None:
            from repro.analysis import analyze

            self._facts = analyze(self.stg)
        return self._facts

    def nonneg_pinvariants(self) -> List[np.ndarray]:
        """Basis P-invariants that are sign-definite, flipped non-negative."""
        result = []
        for vector in self.pinvariants:
            if (vector >= 0).all():
                result.append(vector)
            elif (vector <= 0).all():
                result.append(-vector)
        return result

    # -- span helpers ----------------------------------------------------------

    def place_span(self, index: int) -> Optional[SourceSpan]:
        if self.stg.source_map is None:
            return None
        return self.stg.source_map.get(KIND_PLACE, self.net.place_name(index))

    def transition_span(self, index: int) -> Optional[SourceSpan]:
        if self.stg.source_map is None:
            return None
        return self.stg.source_map.get(
            KIND_TRANSITION, self.net.transition_name(index)
        )

    def signal_span(self, name: str) -> Optional[SourceSpan]:
        if self.stg.source_map is None:
            return None
        return self.stg.source_map.get(KIND_SIGNAL, name)


#: A rule takes the context and yields diagnostics.
RuleFn = Callable[[RuleContext], Iterator[Diagnostic]]


@dataclass(frozen=True)
class LintRule:
    """Registered metadata of one rule."""

    rule_id: str
    name: str
    tier: str
    severity: str
    doc: str
    fn: RuleFn

    def run(self, context: RuleContext) -> List[Diagnostic]:
        return list(self.fn(context))


#: Registry in registration (= execution) order.
RULES: Dict[str, LintRule] = {}


def rule(rule_id: str, name: str, tier: str, severity: str) -> Callable[[RuleFn], RuleFn]:
    """Register a lint rule; ``severity`` is the rule's default severity."""
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}")

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        RULES[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            tier=tier,
            severity=severity,
            doc=(fn.__doc__ or "").strip().split("\n", 1)[0],
            fn=fn,
        )
        return fn

    return decorate


def all_rules() -> List[LintRule]:
    _load_builtin_rules()
    return list(RULES.values())


def select_rules(patterns: Optional[Iterable[str]] = None) -> List[LintRule]:
    """Rules whose id or name matches any glob pattern (all when ``None``)."""
    rules = all_rules()
    if patterns is None:
        return rules
    wanted = list(patterns)
    return [
        r
        for r in rules
        if any(
            fnmatch.fnmatch(r.rule_id, p) or fnmatch.fnmatch(r.name, p)
            for p in wanted
        )
    ]


_BUILTINS_LOADED = False


def _load_builtin_rules() -> None:
    """Import the rule modules exactly once (registration side effect)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.lint import rules_analysis  # noqa: F401
    from repro.lint import rules_prefilter  # noqa: F401
    from repro.lint import rules_semantics  # noqa: F401
    from repro.lint import rules_wellformed  # noqa: F401


def run_lint(
    stg: STG,
    rules: Optional[Iterable[str]] = None,
    prefilter: bool = True,
    size_budget: int = 160,
) -> LintReport:
    """Run the (selected) rule set over ``stg`` and return the report.

    ``prefilter=False`` skips the conflict pre-filter tier (useful when only
    style diagnostics are wanted).  ``size_budget`` caps the net size for the
    polyhedral pre-filter; larger nets simply skip it.

    The certifying tier is gated on hygiene: if any *error* diagnostic or
    any consistency-risk warning (rules S202/S203/S204) fired, pre-filter
    rules do not run — their soundness argument presumes a consistent,
    well-formed STG.  The analysis-facts tier (``A4xx``) is likewise skipped
    when errors fired: the facts engine presumes a well-formed net.
    """
    from repro import obs
    from repro.lint.diagnostics import TIER_ANALYSIS, TIER_PREFILTER

    with obs.trace("lint.run"):
        selected = select_rules(list(rules) if rules is not None else None)
        context = RuleContext(stg, size_budget=size_budget)
        report = LintReport(stg_name=stg.name)

        staged: List[Tuple[LintRule, str]] = [(r, r.tier) for r in selected]
        for lint_rule, tier in staged:
            if tier in (TIER_PREFILTER, TIER_ANALYSIS):
                continue
            report.rules_run.append(lint_rule.rule_id)
            report.extend(lint_rule.run(context))

        if prefilter and _prefilter_allowed(report):
            for lint_rule, tier in staged:
                if tier != TIER_PREFILTER:
                    continue
                report.rules_run.append(lint_rule.rule_id)
                diagnostics = lint_rule.run(context)
                report.extend(diagnostics)
                for diagnostic in diagnostics:
                    for prop, holds in diagnostic.decides.items():
                        context.decided.setdefault(prop, holds)

        if not report.errors:
            for lint_rule, tier in staged:
                if tier != TIER_ANALYSIS:
                    continue
                report.rules_run.append(lint_rule.rule_id)
                report.extend(lint_rule.run(context))
        return report


#: Warnings that undermine the pre-filter soundness argument (consistency).
_CONSISTENCY_RISK_RULES = frozenset({"S202", "S203", "S204"})


def _prefilter_allowed(report: LintReport) -> bool:
    if any(d.severity == SEVERITY_ERROR for d in report.diagnostics):
        return False
    return not any(
        d.rule_id in _CONSISTENCY_RISK_RULES for d in report.diagnostics
    )
