"""STG-semantics rules (tier 2): signal-level specification defects.

These rules reason about the signal labelling — edge counts, balance along
T-invariants, input/output roles — using only linear algebra over the
incidence matrix and structural traversals; no state space is built.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

import numpy as np

from repro.lint.diagnostics import (
    Diagnostic,
    SEVERITY_WARNING,
    TIER_SEMANTICS,
)
from repro.lint.registry import RuleContext, rule


@rule("S201", "autoconcurrency-candidate", TIER_SEMANTICS, SEVERITY_WARNING)
def autoconcurrency_candidate(context: RuleContext) -> Iterator[Diagnostic]:
    """Two edges of the same signal that the state-equation relaxation cannot
    keep apart may fire concurrently — auto-concurrency breaks the code
    semantics."""
    stg = context.stg
    net = context.net
    initial = net.initial_marking
    # 1-token sign-definite P-invariants: cheap mutual-exclusion certificates
    # tried before the LP (they are Farkas certificates of its infeasibility).
    exclusion = [
        y
        for y in context.nonneg_pinvariants()
        if int(y @ np.asarray(initial.counts, dtype=np.int64)) == 1
    ]
    for signal in stg.signals:
        transitions = stg.transitions_of(signal)
        for i, t1 in enumerate(transitions):
            preset1 = set(net.preset(t1))
            for t2 in transitions[i + 1:]:
                preset2 = set(net.preset(t2))
                if preset1 & preset2:
                    continue  # structural conflict: firing one disables the other
                if not preset1 or not preset2:
                    continue  # W106 territory
                if _invariant_separates(exclusion, preset1, preset2):
                    continue
                if not _coenabling_feasible(context, t1, t2):
                    continue  # state equation refutes any co-enabling marking
                name1 = net.transition_name(t1)
                name2 = net.transition_name(t2)
                yield Diagnostic(
                    rule_id="S201",
                    severity=SEVERITY_WARNING,
                    message=f"edges {name1!r} and {name2!r} of signal "
                    f"{signal!r} share no input place and no place invariant "
                    "or state-equation bound keeps them apart; they may be "
                    "auto-concurrent",
                    subject=signal,
                    span=context.transition_span(t1),
                )


def _invariant_separates(
    invariants: List[np.ndarray], preset1: Set[int], preset2: Set[int]
) -> bool:
    """True if some 1-token invariant covers a place of each preset.

    Both transitions being enabled would then require two tokens on the
    invariant's support — impossible, so they are never co-enabled.
    """
    for y in invariants:
        if any(y[p] > 0 for p in preset1) and any(y[p] > 0 for p in preset2):
            return True
    return False


def _coenabling_feasible(context: RuleContext, t1: int, t2: int) -> bool:
    """LP relaxation of "some reachable marking enables t1 and t2 at once".

    Checks feasibility of ``x >= 0, M0 + I x >= pre(t1) + pre(t2)`` — the
    state-equation over-approximation of a co-enabling marking.  Infeasible
    means the pair provably never fires concurrently; feasible is merely
    inconclusive, so this refines (never weakens) the warning.  Nets beyond
    the size budget skip the LP and keep the conservative warning.
    """
    net = context.net
    if net.num_places + net.num_transitions > context.size_budget:
        return True
    from repro.lp import LinearProgram, solve_lp

    demand = dict(net.preset(t1))
    for place, weight in net.preset(t2).items():
        demand[place] = demand.get(place, 0) + weight
    incidence = context.incidence
    initial = net.initial_marking
    constraints = []
    for p in range(net.num_places):
        row = [int(c) for c in incidence[p]]
        need = demand.get(p, 0) - int(initial[p])
        if not any(row):
            if need > 0:
                return False  # constant marking can never meet the demand
            continue
        if need > 0 or any(c < 0 for c in row):
            constraints.append((row, ">=", need))
    problem = LinearProgram.feasibility(net.num_transitions, constraints)
    return solve_lp(problem).feasible


@rule("S202", "edge-count-imbalance", TIER_SEMANTICS, SEVERITY_WARNING)
def edge_count_imbalance(context: RuleContext) -> Iterator[Diagnostic]:
    """Unequal numbers of rising and falling edges of a signal usually
    indicate a missing edge.  Choice STGs legitimately unbalance the counts
    (one falling edge can serve two rising branches), so the warning is
    suppressed when every edge of the signal lies on some non-negative,
    code-balanced T-invariant — i.e. each surplus edge is a choice
    alternative on a consistent cycle, not an orphan."""
    stg = context.stg
    for signal in stg.signals:
        rising = stg.edge_transitions(signal, +1)
        falling = stg.edge_transitions(signal, -1)
        if not rising or not falling or len(rising) == len(falling):
            continue
        if all(
            _on_balanced_cycle(context, t) for t in (*rising, *falling)
        ):
            continue
        yield Diagnostic(
            rule_id="S202",
            severity=SEVERITY_WARNING,
            message=f"signal {signal!r} has {len(rising)} rising but "
            f"{len(falling)} falling edge(s), and not every edge lies on a "
            "code-balanced cycle",
            subject=signal,
            span=context.signal_span(signal),
            fixit="add the missing edge or remove the surplus one",
        )


def _on_balanced_cycle(context: RuleContext, transition: int) -> bool:
    """LP feasibility of a non-negative code-balanced T-invariant using ``t``.

    Solves ``v >= 0, I v = 0, B v = 0, v_t >= 1``; feasibility means the
    edge can be explained as part of a consistent cyclic behaviour (in the
    state-equation relaxation).  Oversized nets report ``True`` — the
    relaxed answer — so the warning never fires on a budget miss.
    """
    net = context.net
    if net.num_places + net.num_transitions > context.size_budget:
        return True
    from repro.lp import LinearProgram, solve_lp

    n = net.num_transitions
    constraints = []
    for matrix in (context.incidence, context.balance):
        for row in matrix:
            if row.any():
                constraints.append(([int(c) for c in row], "==", 0))
    selector = [0] * n
    selector[transition] = 1
    constraints.append((selector, ">=", 1))
    problem = LinearProgram.feasibility(n, constraints)
    return solve_lp(problem).feasible


@rule("S203", "unbalanced-tinvariant", TIER_SEMANTICS, SEVERITY_WARNING)
def unbalanced_tinvariant(context: RuleContext) -> Iterator[Diagnostic]:
    """A non-negative T-invariant whose edges do not cancel per signal:
    executing that cycle would drive some signal out of {0,1} — the STG
    cannot be consistent if the cycle is executable."""
    balance = context.balance
    stg = context.stg
    reported: Set[str] = set()
    for vector in context.tinvariants:
        if (vector >= 0).all():
            cycle = vector
        elif (vector <= 0).all():
            cycle = -vector
        else:
            continue  # mixed-sign basis vector: not a realisable cycle
        deltas = balance @ cycle
        for index in np.nonzero(deltas)[0]:
            signal = stg.signals[int(index)]
            if signal in reported:
                continue
            reported.add(signal)
            yield Diagnostic(
                rule_id="S203",
                severity=SEVERITY_WARNING,
                message=f"signal {signal!r} changes by {int(deltas[index]):+d} "
                "along a T-invariant cycle; executing it would break "
                "consistency",
                subject=signal,
                span=context.signal_span(signal),
            )


@rule("S204", "single-polarity-signal", TIER_SEMANTICS, SEVERITY_WARNING)
def single_polarity_signal(context: RuleContext) -> Iterator[Diagnostic]:
    """A signal with only rising (or only falling) edges can switch at most
    once; in a cyclic specification this is almost always a typo."""
    stg = context.stg
    for signal in stg.signals:
        rising = len(stg.edge_transitions(signal, +1))
        falling = len(stg.edge_transitions(signal, -1))
        if (rising == 0) != (falling == 0):
            polarity = "+" if rising else "-"
            yield Diagnostic(
                rule_id="S204",
                severity=SEVERITY_WARNING,
                message=f"signal {signal!r} only has {signal}{polarity} "
                "edges; it can switch at most once",
                subject=signal,
                span=context.signal_span(signal),
            )


@rule("S205", "self-driven-input", TIER_SEMANTICS, SEVERITY_WARNING)
def self_driven_input(context: RuleContext) -> Iterator[Diagnostic]:
    """An input signal triggered only by its own edges: the STG specifies a
    next-state function for an input, which synthesis cannot implement."""
    stg = context.stg
    net = context.net
    for signal in stg.inputs:
        transitions = stg.transitions_of(signal)
        if not transitions:
            continue
        self_driven = True
        for t in transitions:
            for place in net.preset(t):
                for producer in net.place_preset(place):
                    label = stg.label(producer)
                    if label is None or label.signal != signal:
                        self_driven = False
                        break
                if not self_driven:
                    break
            if not self_driven:
                break
        if self_driven:
            yield Diagnostic(
                rule_id="S205",
                severity=SEVERITY_WARNING,
                message=f"input {signal!r} is driven only by its own edges — "
                "the specification models a next-state function for an "
                "input signal",
                subject=signal,
                span=context.signal_span(signal),
                fixit="declare the signal as an output/internal or "
                "synchronise it with the circuit",
            )


@rule("S206", "unobserved-pulse", TIER_SEMANTICS, SEVERITY_WARNING)
def unobserved_pulse(context: RuleContext) -> Iterator[Diagnostic]:
    """A signal pulse (edge immediately undone by its opposite, with no other
    signal reading it in between) cannot appear in any next-state support
    and leaves two distinct markings with equal codes — a USC conflict
    whenever the pulse is executable."""
    stg = context.stg
    net = context.net
    reported: Dict[str, bool] = {}
    for t1 in range(net.num_transitions):
        label1 = stg.label(t1)
        if label1 is None or label1.signal in reported:
            continue
        postset1 = net.postset(t1)
        if len(postset1) != 1:
            continue
        (place,) = postset1
        consumers = net.place_postset(place)
        producers = net.place_preset(place)
        if len(consumers) != 1 or len(producers) != 1:
            continue
        (t2,) = consumers
        label2 = stg.label(t2)
        if (
            label2 is None
            or label2.signal != label1.signal
            or label2.polarity == label1.polarity
        ):
            continue
        # a pure two-phase loop (t2 feeds straight back into t1's preset with
        # the same places) returns to the identical marking: no conflict
        if dict(net.preset(t1)) == dict(net.postset(t2)):
            continue
        reported[label1.signal] = True
        name1 = net.transition_name(t1)
        name2 = net.transition_name(t2)
        yield Diagnostic(
            rule_id="S206",
            severity=SEVERITY_WARNING,
            message=f"signal {label1.signal!r} pulses ({name1!r} directly "
            f"followed by {name2!r}) with no observer in between; the "
            "pulse is invisible to every next-state function and induces "
            "equal codes on distinct markings",
            subject=label1.signal,
            span=context.transition_span(t1),
        )
