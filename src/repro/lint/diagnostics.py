"""Structured lint diagnostics.

A :class:`Diagnostic` is the unit of output of every lint rule: the rule id,
a severity, a human-readable message, the net/STG element it concerns, an
optional source span (when the STG was parsed from a ``.g`` file), an
optional fix-it hint, and — for the certifying pre-filter rules — the
properties the diagnostic *decides* together with a machine-checkable
certificate (see :mod:`repro.lint.certificates`).

A :class:`LintReport` aggregates the diagnostics of one run and maps them to
the CLI exit-code convention: 0 clean, 1 warnings only, 2 errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.stg.sourcemap import SourceSpan

#: Severity levels, most severe first.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Rule tiers (the four layers of the static analysis).
TIER_WELLFORMED = "well-formedness"
TIER_SEMANTICS = "stg-semantics"
TIER_PREFILTER = "conflict-prefilter"
TIER_ANALYSIS = "analysis-facts"

TIERS = (TIER_WELLFORMED, TIER_SEMANTICS, TIER_PREFILTER, TIER_ANALYSIS)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one lint rule."""

    rule_id: str
    severity: str
    message: str
    subject: str = ""
    span: Optional[SourceSpan] = None
    fixit: Optional[str] = None
    #: Properties this diagnostic soundly decides (``{"usc": True, ...}``);
    #: only the certifying pre-filter rules set it.
    decides: Dict[str, bool] = field(default_factory=dict)
    #: Machine-checkable evidence for ``decides``; a JSON-safe dict
    #: understood by :func:`repro.lint.certificates.verify_certificate`.
    certificate: Optional[Dict[str, Any]] = None

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        """``file:line:col`` when a span is known, else the subject name."""
        if self.span is not None:
            return str(self.span)
        return self.subject or "<stg>"

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
        }
        if self.span is not None:
            payload["span"] = {
                "file": self.span.file,
                "line": self.span.line,
                "column": self.span.column,
                "length": self.span.length,
            }
        if self.fixit:
            payload["fixit"] = self.fixit
        if self.decides:
            payload["decides"] = dict(self.decides)
        if self.certificate is not None:
            payload["certificate"] = self.certificate
        return payload


@dataclass
class LintReport:
    """All diagnostics of one lint run over one STG."""

    stg_name: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Rule ids that ran (including the silent ones) — lets consumers
    #: distinguish "clean" from "not checked".
    rules_run: List[str] = field(default_factory=list)

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def of_severity(self, severity: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    def of_rule(self, rule_id: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.of_severity(SEVERITY_ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.of_severity(SEVERITY_WARNING)

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 warnings only, 2 any error."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def decisions(self) -> Dict[str, "Decision"]:
        """Property verdicts decided by certifying diagnostics.

        Later diagnostics never override earlier ones (rules run in
        registration order, cheapest certificate first).
        """
        decided: Dict[str, Decision] = {}
        for diagnostic in self.diagnostics:
            for prop, holds in diagnostic.decides.items():
                if prop not in decided:
                    decided[prop] = Decision(prop, holds, diagnostic)
        return decided

    def sorted_diagnostics(self) -> List[Diagnostic]:
        """Severity-major, then source order, for stable rendering."""
        return sorted(
            self.diagnostics,
            key=lambda d: (
                _SEVERITY_RANK[d.severity],
                d.span.line if d.span else 1 << 30,
                d.span.column if d.span else 0,
                d.rule_id,
                d.subject,
            ),
        )

    def summary(self) -> str:
        counts = {s: len(self.of_severity(s)) for s in SEVERITIES}
        parts = [
            f"{counts[s]} {s}{'s' if counts[s] != 1 else ''}"
            for s in SEVERITIES
            if counts[s]
        ]
        return ", ".join(parts) if parts else "clean"


@dataclass(frozen=True)
class Decision:
    """A property verdict established by a certifying lint diagnostic."""

    property: str
    holds: bool
    diagnostic: Diagnostic
