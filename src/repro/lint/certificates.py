"""Machine-checkable certificates backing the conflict pre-filter verdicts.

A certifying lint diagnostic never asks to be trusted: it attaches a
JSON-safe certificate that an independent checker can replay against the STG
with exact rational arithmetic.  Two kinds exist:

``affine-code``
    A rational matrix ``C`` with ``C @ B = I`` (``I`` the incidence matrix,
    ``B`` the signal-balance matrix).  Then for any two reachable markings
    ``M1 = M0 + I x1`` and ``M2 = M0 + I x2`` with equal codes the balance
    difference ``B (x2 - x1)`` vanishes, hence ``M2 - M1 = C B (x2 - x1) =
    0``: *no two distinct reachable markings can agree on all signal codes*,
    so USC (and a fortiori CSC) holds.  Verification multiplies ``C @ B``
    and compares against ``I`` entry by entry.

``state-equation-lp``
    The claim that over the polyhedron ``{x1, x2 >= 0, M0 + I x_i >= 0,
    B (x2 - x1) = 0}`` every component of ``I (x2 - x1)`` has maximum and
    minimum 0 — i.e. the state-equation relaxation admits no code-preserving
    marking change.  Verification re-solves the same LPs with the exact
    rational simplex; the certificate is a replayable claim rather than a
    succinct witness (the simplex exposes no duals).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional

import numpy as np

from repro.stg.stg import STG

CERT_AFFINE = "affine-code"
CERT_LP = "state-equation-lp"

#: Bump when a certificate payload layout changes.
CERT_VERSION = 1


# -- exact linear algebra ------------------------------------------------------


def solve_exact(
    matrix: List[List[Fraction]], rhs: List[Fraction]
) -> Optional[List[Fraction]]:
    """One exact solution of ``matrix @ x = rhs`` (None if inconsistent).

    Gaussian elimination over :class:`~fractions.Fraction`; free variables
    are pinned to 0, so the result is the minimal-support particular
    solution the certificate stores.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    work = [list(row) + [rhs[i]] for i, row in enumerate(matrix)]
    pivot_of_col: Dict[int, int] = {}
    r = 0
    for c in range(cols):
        pivot = next((i for i in range(r, rows) if work[i][c] != 0), None)
        if pivot is None:
            continue
        work[r], work[pivot] = work[pivot], work[r]
        inv = work[r][c]
        work[r] = [v / inv for v in work[r]]
        for i in range(rows):
            if i != r and work[i][c] != 0:
                factor = work[i][c]
                work[i] = [a - factor * b for a, b in zip(work[i], work[r])]
        pivot_of_col[c] = r
        r += 1
        if r == rows:
            break
    for i in range(r, rows):
        if work[i][cols] != 0:
            return None  # 0 = nonzero: inconsistent
    solution = [Fraction(0)] * cols
    for c, pr in pivot_of_col.items():
        solution[c] = work[pr][cols]
    return solution


def balance_matrix(stg: STG) -> np.ndarray:
    """The ``|Z| x |T|`` signal-balance matrix (see RuleContext.balance)."""
    from repro.petri.incidence import balance_matrix_from_changes

    changes = [stg.signal_change(t) for t in range(stg.net.num_transitions)]
    return balance_matrix_from_changes(changes, len(stg.signals))


# -- affine-code certificates --------------------------------------------------


def build_affine_certificate(stg: STG) -> Optional[Dict[str, Any]]:
    """Try to express every incidence row as a combination of balance rows.

    Returns the certificate dict on success, ``None`` when some place's
    token flow is not an affine function of the code (the common case).
    """
    from repro.petri.incidence import incidence_matrix

    if stg.has_dummies():
        return None
    net = stg.net
    if net.num_transitions == 0 or not stg.signals:
        return None
    incidence = incidence_matrix(net)
    balance = balance_matrix(stg)
    # solve c @ B = row  <=>  B^T c = row^T, one system per place
    bt = [
        [Fraction(int(balance[z, t])) for z in range(balance.shape[0])]
        for t in range(balance.shape[1])
    ]
    matrix: List[List[str]] = []
    for p in range(net.num_places):
        rhs = [Fraction(int(incidence[p, t])) for t in range(net.num_transitions)]
        coefficients = solve_exact(bt, rhs)
        if coefficients is None:
            return None
        matrix.append([str(c) for c in coefficients])
    return {
        "kind": CERT_AFFINE,
        "version": CERT_VERSION,
        "signals": list(stg.signals),
        "places": list(net.places),
        "transitions": list(net.transitions),
        "matrix": matrix,
    }


def _verify_affine(stg: STG, certificate: Dict[str, Any]) -> bool:
    from repro.petri.incidence import incidence_matrix

    net = stg.net
    if (
        certificate.get("signals") != list(stg.signals)
        or certificate.get("places") != list(net.places)
        or certificate.get("transitions") != list(net.transitions)
    ):
        return False
    if stg.has_dummies():
        return False
    rows = certificate.get("matrix")
    if not isinstance(rows, list) or len(rows) != net.num_places:
        return False
    incidence = incidence_matrix(net)
    balance = balance_matrix(stg)
    num_signals = len(stg.signals)
    for p, row in enumerate(rows):
        if len(row) != num_signals:
            return False
        coefficients = [Fraction(value) for value in row]
        for t in range(net.num_transitions):
            combined = sum(
                coefficients[z] * int(balance[z, t]) for z in range(num_signals)
            )
            if combined != int(incidence[p, t]):
                return False
    return True


# -- state-equation LP certificates --------------------------------------------


def build_lp_certificate(stg: STG) -> Optional[Dict[str, Any]]:
    """Run the state-equation relaxation; certificate dict if conclusive."""
    if stg.has_dummies():
        return None
    if not state_equation_usc_safe(stg):
        return None
    return {
        "kind": CERT_LP,
        "version": CERT_VERSION,
        "signals": list(stg.signals),
        "places": list(stg.net.places),
        "transitions": list(stg.net.transitions),
        "claim": "max/min of every component of I(x2-x1) over the "
        "code-balanced state-equation polyhedron is 0",
    }


def state_equation_usc_safe(stg: STG) -> bool:
    """Exact LP check: no code-preserving marking change is state-equation
    feasible.

    Variables ``x1, x2 >= 0`` (two Parikh vectors), constraints
    ``M0 + I x_i >= 0`` and ``B (x2 - x1) = 0``; for every place the token
    flow difference ``(I (x2 - x1))_p`` is maximised and minimised.  All
    optima 0 proves that any two reachable markings with equal signal codes
    coincide, hence USC (and CSC) hold.  Sound but incomplete: a nonzero or
    unbounded optimum is *inconclusive*, never a conflict verdict.
    """
    from repro.lp import LinearProgram, solve_lp
    from repro.petri.incidence import incidence_matrix

    net = stg.net
    n = net.num_transitions
    if n == 0:
        return True
    incidence = incidence_matrix(net)
    balance = balance_matrix(stg)
    initial = net.initial_marking
    constraints = []
    for row in balance:
        if row.any():
            coeffs = [-int(c) for c in row] + [int(c) for c in row]
            constraints.append((coeffs, "==", 0))
    for p in range(net.num_places):
        row = [int(c) for c in incidence[p]]
        if not any(row):
            continue
        bound = -int(initial[p])
        constraints.append((row + [0] * n, ">=", bound))
        constraints.append(([0] * n + row, ">=", bound))

    for p in range(net.num_places):
        row = incidence[p]
        if not row.any():
            continue
        objective = [Fraction(-int(c)) for c in row] + [
            Fraction(int(c)) for c in row
        ]
        for sign in (1, -1):
            problem = LinearProgram.feasibility(2 * n, constraints)
            problem.objective = [sign * c for c in objective]
            result = solve_lp(problem)
            if not result.feasible:
                return False  # x1 = x2 = 0 is always feasible; be paranoid
            if result.objective_value is None or result.objective_value > 0:
                return False
    return True


def _verify_lp(stg: STG, certificate: Dict[str, Any]) -> bool:
    if (
        certificate.get("signals") != list(stg.signals)
        or certificate.get("places") != list(stg.net.places)
        or certificate.get("transitions") != list(stg.net.transitions)
    ):
        return False
    if stg.has_dummies():
        return False
    return state_equation_usc_safe(stg)


# -- dispatch ------------------------------------------------------------------


def verify_certificate(stg: STG, certificate: Dict[str, Any]) -> bool:
    """Replay ``certificate`` against ``stg``; True iff the claim checks out."""
    if not isinstance(certificate, dict):
        return False
    if certificate.get("version") != CERT_VERSION:
        return False
    kind = certificate.get("kind")
    if kind == CERT_AFFINE:
        return _verify_affine(stg, certificate)
    if kind == CERT_LP:
        return _verify_lp(stg, certificate)
    return False
