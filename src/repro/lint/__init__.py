"""repro.lint — static STG diagnostics with certifying conflict pre-filters.

The subsystem runs four tiers of rules over a parsed STG without building
any state space:

1. *well-formedness* (``W1xx``): structural defects of the net,
2. *stg-semantics* (``S2xx``): signal-level specification defects,
3. *conflict-prefilter* (``C3xx``): certifying USC/CSC verdicts from the
   state-equation relaxation — each positive verdict carries a
   machine-checkable certificate,
4. *analysis-facts* (``A4xx``): findings backed by the structural facts
   engine (:mod:`repro.analysis`) — autoconcurrency left unrefuted, dead
   transitions from unmarked siphons, siphons without marked traps.

Entry point: :func:`run_lint`.  The verification engine runs it as stage
zero of every portfolio job (see :mod:`repro.engine.portfolio`); the CLI
exposes it as ``repro-stg lint``.
"""

from repro.lint.certificates import (
    CERT_AFFINE,
    CERT_LP,
    build_affine_certificate,
    build_lp_certificate,
    state_equation_usc_safe,
    verify_certificate,
)
from repro.lint.diagnostics import (
    Decision,
    Diagnostic,
    LintReport,
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    TIER_ANALYSIS,
    TIER_PREFILTER,
    TIER_SEMANTICS,
    TIER_WELLFORMED,
    TIERS,
)
from repro.lint.registry import (
    LintRule,
    RuleContext,
    all_rules,
    rule,
    run_lint,
    select_rules,
)
from repro.lint.render import render_json, render_text, report_to_dict

__all__ = [
    "CERT_AFFINE",
    "CERT_LP",
    "Decision",
    "Diagnostic",
    "LintReport",
    "LintRule",
    "RuleContext",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "TIERS",
    "TIER_ANALYSIS",
    "TIER_PREFILTER",
    "TIER_SEMANTICS",
    "TIER_WELLFORMED",
    "all_rules",
    "build_affine_certificate",
    "build_lp_certificate",
    "render_json",
    "render_text",
    "report_to_dict",
    "rule",
    "run_lint",
    "select_rules",
    "state_equation_usc_safe",
    "verify_certificate",
]
