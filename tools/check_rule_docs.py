#!/usr/bin/env python
"""Keep the lint rule catalogue and docs/linting.md in sync.

The rule tables in docs/linting.md carry one row per rule id
(``| W101 | `isolated-node` | ... |``).  This checker parses every such
row and compares the id/name pairs against the registered rule set
(``repro.lint.all_rules()``) in both directions:

* a registered rule missing from the docs fails (undocumented rule);
* a documented id that no longer exists fails (stale docs);
* a documented name that disagrees with the registered name fails.

Run from the repository root (CI does, next to ruff/mypy)::

    PYTHONPATH=src python tools/check_rule_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List

ROOT = Path(__file__).resolve().parents[1]
DOCS = ROOT / "docs" / "linting.md"

#: ``| W101 | `isolated-node` | ...`` — id cell then backticked name cell.
ROW = re.compile(r"^\|\s*([A-Z]\d{3})\s*\|\s*`([a-z0-9-]+)`\s*\|")


def documented_rules(text: str) -> Dict[str, str]:
    rows: Dict[str, str] = {}
    for line in text.splitlines():
        match = ROW.match(line.strip())
        if not match:
            continue
        rule_id, name = match.groups()
        if rule_id in rows and rows[rule_id] != name:
            raise SystemExit(
                f"docs/linting.md documents {rule_id} twice with different "
                f"names ({rows[rule_id]!r} vs {name!r})"
            )
        rows[rule_id] = name
    return rows


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.lint import all_rules

    registered = {r.rule_id: r.name for r in all_rules()}
    documented = documented_rules(DOCS.read_text(encoding="utf-8"))

    problems: List[str] = []
    for rule_id in sorted(set(registered) - set(documented)):
        problems.append(
            f"rule {rule_id} ({registered[rule_id]!r}) is registered but has "
            f"no table row in docs/linting.md"
        )
    for rule_id in sorted(set(documented) - set(registered)):
        problems.append(
            f"docs/linting.md documents {rule_id} ({documented[rule_id]!r}) "
            f"but no such rule is registered"
        )
    for rule_id in sorted(set(documented) & set(registered)):
        if documented[rule_id] != registered[rule_id]:
            problems.append(
                f"rule {rule_id} is named {registered[rule_id]!r} in code but "
                f"{documented[rule_id]!r} in docs/linting.md"
            )

    if problems:
        for problem in problems:
            print(f"check_rule_docs: {problem}", file=sys.stderr)
        return 1
    print(
        f"check_rule_docs: {len(registered)} rules documented and registered "
        f"consistently"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
