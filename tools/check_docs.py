#!/usr/bin/env python
"""Docs drift checker: rule catalogue sync, link resolution, reachability.

Three independent guarantees, all enforced in CI next to ruff/mypy:

1. **Rule catalogue sync** (the original ``check_rule_docs`` contract).
   The rule tables in docs/linting.md carry one row per rule id
   (``| W101 | `isolated-node` | ... |``); every such row is compared
   against the registered rule set (``repro.lint.all_rules()``) in both
   directions — an undocumented rule, a stale id, or a renamed rule fails.

2. **Link resolution.**  Every relative markdown link in ``docs/*.md``
   and ``README.md`` must point at an existing file, and a ``#fragment``
   into a markdown file must match one of that file's heading anchors
   (GitHub's slug rules).  External (``http://``, ``https://``,
   ``mailto:``) targets are not touched.

3. **Reachability.**  Every page under ``docs/`` must be reachable from
   docs/index.md by following relative links — an orphaned page fails.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

ROOT = Path(__file__).resolve().parents[1]
DOCS = ROOT / "docs"
INDEX = DOCS / "index.md"
LINTING = DOCS / "linting.md"

#: ``| W101 | `isolated-node` | ...`` — id cell then backticked name cell.
ROW = re.compile(r"^\|\s*([A-Z]\d{3})\s*\|\s*`([a-z0-9-]+)`\s*\|")

#: Inline markdown links/images: ``[text](target)`` — target up to the
#: first unescaped closing parenthesis (no nested parens in our docs).
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


# -- rule catalogue sync -------------------------------------------------------

def documented_rules(text: str) -> Dict[str, str]:
    rows: Dict[str, str] = {}
    for line in text.splitlines():
        match = ROW.match(line.strip())
        if not match:
            continue
        rule_id, name = match.groups()
        if rule_id in rows and rows[rule_id] != name:
            raise SystemExit(
                f"docs/linting.md documents {rule_id} twice with different "
                f"names ({rows[rule_id]!r} vs {name!r})"
            )
        rows[rule_id] = name
    return rows


def rule_sync_problems() -> List[str]:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.lint import all_rules

    registered = {r.rule_id: r.name for r in all_rules()}
    documented = documented_rules(LINTING.read_text(encoding="utf-8"))

    problems: List[str] = []
    for rule_id in sorted(set(registered) - set(documented)):
        problems.append(
            f"rule {rule_id} ({registered[rule_id]!r}) is registered but has "
            f"no table row in docs/linting.md"
        )
    for rule_id in sorted(set(documented) - set(registered)):
        problems.append(
            f"docs/linting.md documents {rule_id} ({documented[rule_id]!r}) "
            f"but no such rule is registered"
        )
    for rule_id in sorted(set(documented) & set(registered)):
        if documented[rule_id] != registered[rule_id]:
            problems.append(
                f"rule {rule_id} is named {registered[rule_id]!r} in code but "
                f"{documented[rule_id]!r} in docs/linting.md"
            )
    return problems


# -- markdown parsing ----------------------------------------------------------

def prose_lines(text: str) -> Iterator[str]:
    """The file's lines with fenced code blocks blanked out."""
    fenced = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            yield line


def heading_anchors(text: str) -> Set[str]:
    """GitHub-style anchor slugs of every markdown heading in ``text``."""
    anchors: Set[str] = set()
    counts: Dict[str, int] = {}
    for line in prose_lines(text):
        if not line.startswith("#"):
            continue
        title = line.lstrip("#").strip().replace("`", "")
        slug = re.sub(r"[^a-z0-9 \-]", "", title.lower()).replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def links_of(path: Path) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(raw, target, fragment)`` for each relative link in ``path``."""
    text = path.read_text(encoding="utf-8")
    for line in prose_lines(text):
        for match in LINK.finditer(line):
            raw = match.group(1)
            if raw.startswith(_EXTERNAL):
                continue
            target, _, fragment = raw.partition("#")
            yield raw, target, fragment


def link_problems(pages: List[Path]) -> List[str]:
    problems: List[str] = []
    for page in pages:
        here = page.relative_to(ROOT)
        for raw, target, fragment in links_of(page):
            resolved = (
                (page.parent / target).resolve() if target else page.resolve()
            )
            if not resolved.exists():
                problems.append(f"{here}: broken link {raw!r}")
                continue
            if fragment and resolved.suffix == ".md":
                anchors = heading_anchors(
                    resolved.read_text(encoding="utf-8")
                )
                if fragment not in anchors:
                    problems.append(
                        f"{here}: link {raw!r} names a heading anchor "
                        f"{fragment!r} that does not exist in "
                        f"{resolved.relative_to(ROOT)}"
                    )
    return problems


def reachability_problems() -> List[str]:
    """BFS over relative links from docs/index.md; orphans fail."""
    if not INDEX.exists():
        return ["docs/index.md is missing (the reachability root)"]
    visited: Set[Path] = set()
    frontier = [INDEX.resolve()]
    while frontier:
        page = frontier.pop()
        if page in visited:
            continue
        visited.add(page)
        for _, target, _ in links_of(page):
            if not target:
                continue
            resolved = (page.parent / target).resolve()
            if (
                resolved.suffix == ".md"
                and resolved.exists()
                and DOCS.resolve() in resolved.parents
            ):
                frontier.append(resolved)
    return [
        f"docs/{page.name} is not reachable from docs/index.md"
        for page in sorted(DOCS.glob("*.md"))
        if page.resolve() not in visited
    ]


def main() -> int:
    pages = sorted(DOCS.glob("*.md")) + [ROOT / "README.md"]
    problems = (
        rule_sync_problems() + link_problems(pages) + reachability_problems()
    )
    if problems:
        for problem in problems:
            print(f"check_docs: {problem}", file=sys.stderr)
        return 1
    print(
        f"check_docs: {len(pages)} pages checked — rule catalogue in sync, "
        f"all links resolve, every docs page reachable from the index"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
