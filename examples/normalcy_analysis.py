#!/usr/bin/env python3
"""Normalcy analysis: which controllers are implementable with monotonic gates?

Section 6 of the paper extends the unfolding/IP machinery to *normalcy* — a
necessary condition for implementing each output with a gate whose
characteristic function is monotonic.  This example audits the whole
benchmark suite: per output signal it reports p-normal / n-normal / abnormal,
and for abnormal signals prints the witnessing execution pairs.

Run:  python examples/normalcy_analysis.py
"""

from repro.core import check_normalcy
from repro.models import TABLE1_BENCHMARKS, vme_bus_csc_resolved
from repro.utils.tables import format_table

#: Keep the audit quick: the big conflict-free rows are skipped by default.
AUDITED = ["RING", "DUP-4PH-A", "DUP-MOD-A", "DUP-MOD-B", "CF-SYM-A-CSC"]


def classify(verdict) -> str:
    if verdict.p_normal and verdict.n_normal:
        return "constant-ish (both)"
    if verdict.p_normal:
        return "p-normal (AND/OR-like)"
    if verdict.n_normal:
        return "n-normal (NAND/NOR-like)"
    return "ABNORMAL"


def main() -> None:
    rows = []
    for name in AUDITED:
        stg = TABLE1_BENCHMARKS[name]()
        report = check_normalcy(stg)
        for signal, verdict in report.per_signal.items():
            rows.append([name, signal, classify(verdict)])
    print(format_table(["model", "output", "normalcy"], rows,
                       title="Normalcy audit of the benchmark suite"))

    # the paper's Figure 3 case, with full diagnostics
    stg = vme_bus_csc_resolved()
    report = check_normalcy(stg)
    print(f"\n{stg.name}: normal={report.normal}, "
          f"violating={report.violating_signals()}")
    verdict = report.per_signal["csc"]
    print("  csc fails both directions; the witnesses:")
    for witness in (verdict.p_witness, verdict.n_witness):
        print(f"  [{witness.kind}] code {witness.code_a} vs {witness.code_b}")
        print(f"      after {' -> '.join(witness.trace_a) or '(initial)'}")
        print(f"      vs    {' -> '.join(witness.trace_b) or '(initial)'}")
    print("\nConsequence: csc's set function dsr*(csc + ldtack') mixes a")
    print("positive dsr literal with a negative ldtack literal, so no")
    print("monotonic gate implements it — an input inverter (with its own")
    print("delay) would be required, breaking speed-independence.")


if __name__ == "__main__":
    main()
