#!/usr/bin/env python3
"""A small asynchronous-design flow: specify, verify, diagnose, iterate.

Scenario: a designer writes the STG of a two-channel duplex link controller
in the astg ``.g`` interchange format, checks it for implementability, reads
the diagnostic traces, and compares candidate refinements — the workflow the
paper's tooling is meant to slot into.

Run:  python examples/design_flow.py
"""

from repro.core import check_csc, check_usc
from repro.core.reachability import check_deadlock
from repro.stg.consistency import check_consistency
from repro.stg.parser import parse_stg, write_stg
from repro.models import duplex_channel
from repro.unfolding import unfold

#: The designer's spec: strict-alternation duplex channel, written by hand
#: in the same .g dialect petrify and punf use.
SPEC = """
.model duplex-draft
.inputs acka ackb
.outputs oea oeb reqa reqb
.graph
oea+ reqa+
reqa+ acka+
acka+ reqa-
reqa- acka-
acka- oea-
oea- oeb+
oeb+ reqb+
reqb+ ackb+
ackb+ reqb-
reqb- ackb-
ackb- oeb-
oeb- oea+
.marking { <oeb-,oea+> }
.end
"""


def verify(stg, label):
    print(f"== {label} ({stg.name}) ==")
    consistency = check_consistency(stg)
    print(f"  consistent, initial code "
          f"{''.join(map(str, consistency.initial_code))} "
          f"(signals {', '.join(stg.signals)})")

    deadlock = check_deadlock(stg)
    print(f"  deadlock: {'none' if deadlock is None else ' -> '.join(deadlock)}")

    prefix = unfold(stg)
    print(f"  prefix: |B|={prefix.num_conditions} |E|={prefix.num_events} "
          f"|E_cut|={prefix.num_cutoffs}")

    usc = check_usc(prefix)
    csc = check_csc(prefix)
    print(f"  USC: {'ok' if usc.holds else 'CONFLICT'}   "
          f"CSC: {'ok' if csc.holds else 'CONFLICT'}")
    if csc.witness is not None:
        witness = csc.witness
        print("  diagnostic (two executions, same code, different outputs):")
        print(f"    A: {' -> '.join(witness.trace_a) or '(initial)'}"
              f"   Out={sorted(witness.out_a)}")
        print(f"    B: {' -> '.join(witness.trace_b) or '(initial)'}"
              f"   Out={sorted(witness.out_b)}")
    print()
    return csc.holds


def main() -> None:
    # 1. parse the hand-written spec
    draft = parse_stg(SPEC)
    verify(draft, "designer's draft")
    print("The turnaround states are code-identical (all signals low) while")
    print("different output-enables are excited -> a genuine CSC conflict;")
    print("the controller cannot remember whose turn it is.\n")

    # 2. compare the library's catalogued refinements of the same protocol
    for variant in ("4ph-a", "4ph-b", "mod-a"):
        stg = duplex_channel(variant)
        verify(stg, f"catalogue variant {variant}")

    # 3. round-trip the draft back to .g for the downstream tools
    text = write_stg(draft)
    print("Round-tripped spec (.g):")
    print("  " + "\n  ".join(text.strip().splitlines()[:6]) + "\n  ...")


if __name__ == "__main__":
    main()
