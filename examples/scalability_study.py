#!/usr/bin/env python3
"""Scalability study: where state graphs explode and prefixes do not.

Sweeps the scalable families (Muller pipelines, parallel forks, token rings,
VME chains) and reports, per size: reachable states, prefix size, and the
wall time of the explicit state-graph check vs the unfolding/IP check — the
experiment behind the paper's memory/time claims (Section 8 and the full
version's scalable examples).

Run:  python examples/scalability_study.py [--max-seconds 20]
"""

import argparse
import time

from repro.core import check_csc, check_usc
from repro.models.ring import lazy_ring, token_ring
from repro.models.scalable import muller_pipeline, parallel_forks
from repro.stg.stategraph import build_state_graph
from repro.unfolding import unfold
from repro.utils.tables import format_table

FAMILIES = [
    ("muller-pipeline", muller_pipeline, (2, 4, 6, 8, 10, 12), "csc"),
    ("parallel-forks", parallel_forks, (1, 2, 3, 4), "csc"),
    ("token-ring", token_ring, (2, 4, 6, 8), "usc"),
    ("vme-chain", lazy_ring, (1, 2, 3), "csc"),
]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--max-seconds", type=float, default=20.0,
                        help="skip state-graph runs beyond this budget")
    args = parser.parse_args()

    rows = []
    for family, ctor, sizes, prop in FAMILIES:
        sg_time = 0.0
        for size in sizes:
            stg = ctor(size)

            states = "-"
            sg_cell = "-"
            if sg_time <= args.max_seconds:
                started = time.perf_counter()
                graph = build_state_graph(stg)
                sg_time = time.perf_counter() - started
                states = graph.num_states
                sg_cell = f"{sg_time:.3f}"

            started = time.perf_counter()
            prefix = unfold(stg)
            check = check_usc if prop == "usc" else check_csc
            report = check(prefix)
            ip_time = time.perf_counter() - started

            rows.append([
                family,
                size,
                states,
                prefix.num_conditions,
                prefix.num_events,
                sg_cell,
                f"{ip_time:.3f}",
                "clean" if report.holds else "conflict",
            ])

    print(format_table(
        ["family", "n", "states", "B", "E", "SG[s]", "IP[s]", prop_header()],
        rows,
        title="State-space explosion vs prefix growth",
    ))
    print()
    print("Reading: 'states' multiplies with n while B/E grow linearly;")
    print("the IP column tracks the prefix, the SG column the state count.")


def prop_header() -> str:
    return "verdict"


if __name__ == "__main__":
    main()
