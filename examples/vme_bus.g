.model vme-read
.inputs dsr ldtack
.outputs dtack lds d
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- lds-
lds- ldtack-
ldtack- lds+
d- dtack-
dtack- dsr+
.marking { <ldtack-,lds+> <dtack-,dsr+> }
.end
