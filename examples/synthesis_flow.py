#!/usr/bin/env python3
"""Full synthesis flow: detect -> resolve -> derive logic, automatically.

This replays the complete journey of the paper's introduction on the VME bus
controller:

  (a) check implementability — the CSC conflict is found by the
      unfolding/IP method (with SAT and BDD engines cross-checking);
  (b) repair the specification — a state signal is inserted automatically
      and the result re-verified;
  (c) derive the boolean next-state functions — minimised complex-gate and
      generalised-C-element covers, with a monotonicity report connecting
      back to the paper's normalcy property.

Run:  python examples/synthesis_flow.py
"""

from repro.core import check_csc, check_normalcy
from repro.models import vme_bus
from repro.sat import check_csc_sat
from repro.stg.stategraph import build_state_graph
from repro.symbolic import symbolic_check
from repro.synthesis import resolve_csc, synthesise


def main() -> None:
    stg = vme_bus()
    print(f"Specification: {stg}")

    # (a) implementability check, three engines
    ip = check_csc(stg)
    sat = check_csc_sat(stg)
    bdd = symbolic_check(stg, "csc")
    print(f"CSC verdicts -- IP: {ip.holds}, SAT: {sat.holds}, BDD: {bdd.holds}")
    assert ip.holds == sat.holds == bdd.holds is False
    print(f"conflict: {ip.witness.describe()}\n")

    # (b) automatic resolution
    resolution = resolve_csc(stg)
    print(f"inserted state signal: {resolution.describe()}")
    resolved = resolution.stg
    print(f"re-check: CSC = {check_csc(resolved).holds}\n")

    # (c) logic derivation
    result = synthesise(resolved)
    print("complex-gate equations:")
    for equation in result.equations():
        print(f"  {equation}")
    print("\ngeneralised C-element networks:")
    for impl in result.per_signal.values():
        print(f"  {impl.gc_equations(result.names)}")

    graph = build_state_graph(resolved)
    assert result.verify(graph), "covers must match Nxt on every state"
    print("\ncover verification against the state graph: OK")

    normalcy = check_normalcy(resolved)
    print("\nmonotonicity report (syntactic vs behavioural):")
    for signal, impl in result.per_signal.items():
        behavioural = normalcy.per_signal[signal].normal
        print(
            f"  {signal:6s} unate-cover={str(impl.monotonic):5s} "
            f"normal={behavioural}"
        )
    print(
        "\nNote: a unate cover does not imply normalcy — don't-cares can\n"
        "make a cover syntactically unate while the function on reachable\n"
        "states is non-monotonic, which is why the paper checks normalcy\n"
        "behaviourally (Section 6)."
    )


if __name__ == "__main__":
    main()
