#!/usr/bin/env python3
"""Quickstart: detect the VME bus controller's CSC conflict three ways.

This walks the paper's running example end to end:

1. build the VME read-cycle STG (Figure 1);
2. find its CSC conflict with the paper's method — unfolding prefix plus
   integer programming — and print the execution paths to the conflict;
3. cross-check with the two state-graph baselines (explicit and symbolic);
4. verify the csc-resolved variant (Figure 3) and show that it trades the
   CSC conflict for a normalcy violation.

Run:  python examples/quickstart.py
"""

from repro.core import check_csc, check_normalcy
from repro.models import vme_bus, vme_bus_csc_resolved
from repro.stg.stategraph import build_state_graph
from repro.symbolic import symbolic_check
from repro.unfolding import unfold


def main() -> None:
    stg = vme_bus()
    print(f"STG: {stg}")
    print(f"  inputs:  {', '.join(stg.inputs)}")
    print(f"  outputs: {', '.join(stg.outputs)}")

    # --- the paper's method: unfolding + integer programming ----------------
    prefix = unfold(stg)
    print(f"\nComplete prefix: {prefix}")

    report = check_csc(prefix)
    print(f"CSC holds: {report.holds}")
    witness = report.witness
    print("Conflict witness (paths found *without* building the state graph):")
    print(f"  path A: {' -> '.join(witness.trace_a)}")
    print(f"     enables outputs {sorted(witness.out_a)}")
    print(f"  path B: {' -> '.join(witness.trace_b)}")
    print(f"     enables outputs {sorted(witness.out_b)}")
    print(f"  search visited {report.search_stats.nodes} nodes "
          f"in {report.elapsed * 1000:.1f} ms")

    # --- baseline 1: explicit state graph -----------------------------------
    graph = build_state_graph(stg)
    conflict = graph.csc_conflicts(first_only=True)[0]
    print(f"\nExplicit state graph: {graph.num_states} states")
    print(f"  agrees: CSC violated at code {''.join(map(str, conflict.code))}")

    # --- baseline 2: symbolic (BDD) state graph ------------------------------
    symbolic = symbolic_check(stg, "csc")
    print(f"Symbolic state graph: {symbolic.num_states} states, "
          f"{symbolic.num_conflict_pairs} conflict pairs, "
          f"{symbolic.bdd_nodes} BDD nodes")

    # --- the resolved controller (Figure 3) ----------------------------------
    resolved = vme_bus_csc_resolved()
    resolved_report = check_csc(resolved)
    normalcy = check_normalcy(resolved)
    print(f"\nResolved controller {resolved.name}:")
    print(f"  CSC holds: {resolved_report.holds}")
    print(f"  normal:    {normalcy.normal} "
          f"(violating: {normalcy.violating_signals()})")
    print("  -> resolving CSC with a non-monotonic csc function breaks "
          "normalcy, exactly as in the paper's Figure 3.")


if __name__ == "__main__":
    main()
