.model toggles3
.outputs t0 t1 t2
.graph
t0+ t0-
t0- t0+
t1+ t1-
t1- t1+
t2+ t2-
t2- t2+
.marking { <t0-,t0+> <t1-,t1+> <t2-,t2+> }
.end
