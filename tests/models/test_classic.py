"""Tests for the classic textbook controllers."""

import pytest

from repro.core import check_csc, check_usc
from repro.models.classic import (
    CLASSIC_MODELS,
    c_element,
    latch_controller,
    sr_latch,
    toggle,
)
from repro.petri.analysis import is_safe
from repro.stg.consistency import is_consistent
from repro.stg.stategraph import build_state_graph


class TestWellFormedness:
    @pytest.mark.parametrize("name", sorted(CLASSIC_MODELS), ids=sorted(CLASSIC_MODELS))
    def test_safe_consistent_live(self, name):
        stg = CLASSIC_MODELS[name]()
        assert is_safe(stg.net)
        assert is_consistent(stg)
        assert not build_state_graph(stg).consistency.graph.deadlocks()


class TestVerdicts:
    def test_c_element_clean(self):
        graph = build_state_graph(c_element())
        assert graph.has_usc()
        # all 8 (a,b,c)-combinations minus none: full cube reachable
        assert graph.num_states == 8

    def test_sr_latch_clean(self):
        assert build_state_graph(sr_latch()).has_usc()

    def test_latch_controller_csc_conflict(self):
        stg = latch_controller()
        assert not check_csc(stg).holds
        assert not check_usc(stg).holds

    def test_toggle_needs_state(self):
        assert not check_csc(toggle()).holds


class TestToggleResolution:
    def test_resolve_adds_phase_bit(self):
        """The CSC resolver discovers the toggle's missing internal phase."""
        from repro.synthesis import resolve_csc, synthesise

        resolution = resolve_csc(toggle())
        assert resolution.insertions
        assert check_csc(resolution.stg).holds
        result = synthesise(resolution.stg)
        assert result.verify(build_state_graph(resolution.stg))


class TestCElementSynthesis:
    def test_c_element_equation(self):
        """Synthesis must recover the C-element's characteristic function
        c = ab + c(a + b) (or an equivalent cover)."""
        from repro.synthesis import synthesise

        result = synthesise(c_element())
        impl = result.per_signal["c"]
        # the function is positive-unate in a, b and c
        assert impl.complex_gate.is_positive_unate()
        # check the truth table of the majority function on reachable codes
        graph = build_state_graph(c_element())
        stg = c_element()
        for state in range(graph.num_states):
            code = graph.code(state)
            a, b, c = (
                code[stg.signal_index("a")],
                code[stg.signal_index("b")],
                code[stg.signal_index("c")],
            )
            minterm = sum(1 << i for i, bit in enumerate(code) if bit)
            majority = int(a + b + c >= 2)
            assert impl.complex_gate.evaluate(minterm) == bool(majority)
