"""Tests for the benchmark model constructors (structure and verdicts)."""

import pytest

from repro.models import TABLE1_BENCHMARKS, vme_bus, vme_bus_csc_resolved
from repro.models.counterflow import counterflow_pipeline
from repro.models.duplex import duplex_channel
from repro.models.ring import lazy_ring, token_ring
from repro.models.scalable import (
    muller_pipeline,
    muller_ring,
    parallel_forks,
    service_ring,
    vme_chain,
)
from repro.petri.analysis import is_safe
from repro.petri.reachability import explore
from repro.stg.consistency import is_consistent
from repro.stg.stategraph import build_state_graph
from tests.conftest import TABLE1_VERDICTS


class TestWellFormedness:
    def test_all_benchmarks_safe_consistent_live(self, table1_stg):
        assert is_safe(table1_stg.net)
        assert is_consistent(table1_stg)
        assert not explore(table1_stg.net).deadlocks()

    def test_vme_sizes_match_paper(self, vme):
        # Figure 1: 5 signals; the net has 10 transitions (one per edge)
        assert vme.stats() == {"places": 11, "transitions": 10, "signals": 5}

    def test_registry_names_are_table1(self):
        assert len(TABLE1_BENCHMARKS) == 15
        assert set(TABLE1_BENCHMARKS) == set(TABLE1_VERDICTS)


class TestParameters:
    def test_token_ring_validation(self):
        with pytest.raises(ValueError):
            token_ring(1)

    def test_lazy_ring_validation(self):
        with pytest.raises(ValueError):
            lazy_ring(0)

    def test_duplex_variant_validation(self):
        with pytest.raises(ValueError):
            duplex_channel("bogus")

    def test_counterflow_validation(self):
        with pytest.raises(ValueError):
            counterflow_pipeline(1)

    def test_muller_pipeline_validation(self):
        with pytest.raises(ValueError):
            muller_pipeline(0)
        with pytest.raises(ValueError):
            muller_pipeline(3, signal_names=["a"])

    def test_muller_ring_validation(self):
        with pytest.raises(ValueError):
            muller_ring(2)
        with pytest.raises(ValueError):
            muller_ring(5, waves=5)
        with pytest.raises(ValueError):
            muller_ring(5, signal_names=["a"])

    def test_parallel_forks_validation(self):
        with pytest.raises(ValueError):
            parallel_forks(0)


class TestScalableFamilies:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_muller_pipeline_conflict_free(self, n):
        graph = build_state_graph(muller_pipeline(n))
        assert graph.has_usc()
        assert graph.num_states == 2 ** (n + 1)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_parallel_forks_conflict_free(self, n):
        graph = build_state_graph(parallel_forks(n))
        assert graph.has_usc()

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_token_ring_usc_only_conflicts(self, n):
        graph = build_state_graph(token_ring(n))
        assert not graph.has_usc()
        assert graph.has_csc()

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_vme_chain_csc_conflicts(self, n):
        graph = build_state_graph(vme_chain(n))
        assert not graph.has_csc()

    def test_service_ring_alias(self):
        assert service_ring(4).net.name == token_ring(4).net.name

    def test_muller_ring_bounded_but_unsafe(self):
        ring = muller_ring(4)
        assert not is_safe(ring.net)
        from repro.petri.analysis import bound

        assert bound(ring.net) == 2

    def test_muller_ring_consistent(self):
        assert is_consistent(muller_ring(5))


class TestDuplexVariants:
    @pytest.mark.parametrize(
        "variant",
        ["4ph-a", "4ph-b", "4ph-mtr-a", "4ph-mtr-b", "mod-a", "mod-b", "mod-c"],
    )
    def test_all_variants_have_csc_conflicts(self, variant):
        stg = duplex_channel(variant)
        graph = build_state_graph(stg)
        assert not graph.has_csc()
        # the conflict is at the channel turnaround: some witness involves
        # the output-enable signals
        assert any(
            "oea" in (c.out_a | c.out_b) or "oeb" in (c.out_a | c.out_b)
            for c in graph.csc_conflicts()
        )

    def test_latched_variants_have_internal_signals(self):
        assert duplex_channel("mod-a").internal == ["lta"]
        assert set(duplex_channel("mod-b").internal) == {"lta", "ltb"}

    def test_mtr_variants_have_choice(self):
        from repro.petri.analysis import has_structural_conflicts

        assert has_structural_conflicts(duplex_channel("4ph-mtr-a").net)
        assert not has_structural_conflicts(duplex_channel("4ph-a").net)


class TestCounterflow:
    @pytest.mark.parametrize("n,symmetric", [(2, True), (3, True), (2, False)])
    def test_conflict_free(self, n, symmetric):
        graph = build_state_graph(counterflow_pipeline(n, symmetric=symmetric))
        assert graph.has_usc()

    def test_asymmetric_is_larger(self):
        sym = counterflow_pipeline(3, symmetric=True)
        asym = counterflow_pipeline(3, symmetric=False)
        assert asym.net.num_places > sym.net.num_places

    def test_signal_naming(self):
        stg = counterflow_pipeline(2, symmetric=True)
        assert "f0" in stg.signals
        assert "b0" in stg.signals
