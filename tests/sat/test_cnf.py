"""Tests for Tseitin gates and totalizer cardinality constraints."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF, Totalizer, equalise_counts


def models_over(cnf, variables):
    """All assignments to ``variables`` extendable to a model of ``cnf``."""
    solver = cnf.to_solver()
    result = set()
    for bits in itertools.product([False, True], repeat=len(variables)):
        assumptions = [
            v if value else -v for v, value in zip(variables, bits)
        ]
        if solver.solve(assumptions=assumptions).satisfiable:
            result.add(bits)
    return result


class TestGates:
    def test_or_gate(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        g = cnf.define_or([a, b])
        cnf.add([g])
        assert models_over(cnf, [a, b]) == {(False, True), (True, False), (True, True)}

    def test_and_gate(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        g = cnf.define_and([a, b])
        cnf.add([g])
        assert models_over(cnf, [a, b]) == {(True, True)}

    def test_xor_gate(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        g = cnf.define_xor(a, b)
        cnf.add([g])
        assert models_over(cnf, [a, b]) == {(False, True), (True, False)}

    def test_negated_gate_outputs(self):
        cnf = CNF()
        a, b = cnf.new_vars(2)
        g = cnf.define_or([a, b])
        cnf.add([-g])
        assert models_over(cnf, [a, b]) == {(False, False)}


class TestTotalizer:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_outputs_track_count(self, n):
        cnf = CNF()
        inputs = cnf.new_vars(n)
        totalizer = Totalizer(cnf, inputs)
        solver = cnf.to_solver()
        for bits in itertools.product([False, True], repeat=n):
            assumptions = [v if b else -v for v, b in zip(inputs, bits)]
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable
            count = sum(bits)
            for j, out in enumerate(totalizer.outputs, start=1):
                assert result.model[out] == (count >= j)

    def test_at_most(self):
        cnf = CNF()
        inputs = cnf.new_vars(4)
        totalizer = Totalizer(cnf, inputs)
        totalizer.at_most(2)
        assert all(
            sum(bits) <= 2 for bits in models_over(cnf, inputs)
        )
        assert models_over(cnf, inputs)  # still satisfiable

    def test_at_least(self):
        cnf = CNF()
        inputs = cnf.new_vars(4)
        totalizer = Totalizer(cnf, inputs)
        totalizer.at_least(3)
        models = models_over(cnf, inputs)
        assert models
        assert all(sum(bits) >= 3 for bits in models)

    def test_at_least_impossible(self):
        cnf = CNF()
        inputs = cnf.new_vars(2)
        totalizer = Totalizer(cnf, inputs)
        totalizer.at_least(3)
        assert not cnf.to_solver().solve().satisfiable


class TestEqualise:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4))
    def test_counts_forced_equal(self, n, m):
        cnf = CNF()
        xs = cnf.new_vars(n)
        ys = cnf.new_vars(m)
        equalise_counts(cnf, Totalizer(cnf, xs), Totalizer(cnf, ys))
        for bits in models_over(cnf, xs + ys):
            assert sum(bits[:n]) == sum(bits[n:])
