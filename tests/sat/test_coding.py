"""The SAT back-end vs the state-graph oracle and the IP core."""

import pytest

from repro.core import check_csc, check_usc
from repro.models import TABLE1_BENCHMARKS, vme_bus, vme_bus_csc_resolved
from repro.sat import check_csc_sat, check_usc_sat
from repro.stg.stategraph import build_state_graph
from tests.conftest import SMALL_TABLE1


class TestAgainstOracle:
    @pytest.mark.parametrize("name", SMALL_TABLE1)
    def test_verdicts_match(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        graph = build_state_graph(stg)
        assert check_usc_sat(stg).holds == graph.has_usc()
        assert check_csc_sat(stg).holds == graph.has_csc()

    def test_vme_pair(self, vme, vme_csc):
        assert not check_csc_sat(vme).holds
        assert check_csc_sat(vme_csc).holds

    def test_hard_conflict_free_rows(self):
        for name in ("CF-SYM-C-CSC", "CF-SYM-D-CSC"):
            report = check_csc_sat(TABLE1_BENCHMARKS[name]())
            assert report.holds
            assert report.sat_conflicts > 0


class TestWitnesses:
    def test_traces_replay_to_conflict(self, vme):
        report = check_csc_sat(vme)
        assert report.witness_traces is not None
        trace_a, trace_b = report.witness_traces
        net = vme.net
        m_a = net.initial_marking
        for name in trace_a:
            m_a = net.fire_by_name(m_a, name)
        m_b = net.initial_marking
        for name in trace_b:
            m_b = net.fire_by_name(m_b, name)
        assert m_a != m_b

    def test_ring_blocks_usc_only_candidates(self):
        """RING: CSC holds but USC conflicts exist, so the CSC check must
        block spurious (USC-only) candidates before concluding."""
        report = check_csc_sat(TABLE1_BENCHMARKS["RING"]())
        assert report.holds
        assert report.candidates_blocked > 0


class TestAgreementWithIP:
    @pytest.mark.parametrize("name", ["RING", "LAZYRING", "CF-SYM-B-CSC"])
    def test_sat_and_ip_agree(self, name):
        stg = TABLE1_BENCHMARKS[name]()
        assert check_usc_sat(stg).holds == check_usc(stg).holds
        assert check_csc_sat(stg).holds == check_csc(stg).holds

    def test_accepts_prebuilt_prefix(self, vme):
        from repro.unfolding import unfold

        prefix = unfold(vme)
        assert not check_usc_sat(prefix).holds
