"""Unit and property tests for the CDCL SAT solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverLimitError
from repro.sat.solver import CDCLSolver


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(any((lit > 0) == bits[abs(lit) - 1] for lit in c) for c in clauses):
            return True
    return False


class TestBasics:
    def test_trivial_sat(self):
        solver = CDCLSolver(1)
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert result.model[1] is True

    def test_trivial_unsat(self):
        solver = CDCLSolver(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert not solver.solve().satisfiable

    def test_empty_clause_unsat(self):
        solver = CDCLSolver(1)
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_tautology_ignored(self):
        solver = CDCLSolver(1)
        solver.add_clause([1, -1])
        assert solver.solve().satisfiable

    def test_no_clauses(self):
        assert CDCLSolver(3).solve().satisfiable

    def test_new_var(self):
        solver = CDCLSolver()
        v = solver.new_var()
        assert v == 1
        solver.add_clause([-v])
        result = solver.solve()
        assert result.model[v] is False

    def test_implication_chain(self):
        solver = CDCLSolver(5)
        solver.add_clause([1])
        for v in range(1, 5):
            solver.add_clause([-v, v + 1])
        result = solver.solve()
        assert all(result.model[v] for v in range(1, 6))


class TestPigeonhole:
    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_php_unsat(self, holes):
        pigeons = holes + 1
        solver = CDCLSolver()

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        result = solver.solve()
        assert not result.satisfiable
        assert result.conflicts > 0  # learning actually happened


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1])
        assert result.satisfiable
        assert result.model[2] is True

    def test_conflicting_assumptions(self):
        solver = CDCLSolver(2)
        solver.add_clause([-1, 2])
        assert not solver.solve(assumptions=[1, -2]).satisfiable

    def test_solver_reusable_after_assumptions(self):
        solver = CDCLSolver(1)
        assert not solver.solve(assumptions=[1, -1] if False else [-1]).model[1]
        assert solver.solve(assumptions=[1]).model[1]


class TestEnumeration:
    def test_enumerate_all_models(self):
        solver = CDCLSolver(3)
        solver.add_clause([1, 2])
        models = list(solver.enumerate_models([1, 2, 3]))
        projections = {(m[1], m[2], m[3]) for m in models}
        expected = {
            bits
            for bits in itertools.product([False, True], repeat=3)
            if bits[0] or bits[1]
        }
        assert projections == expected

    def test_limit(self):
        solver = CDCLSolver(4)
        assert len(list(solver.enumerate_models([1, 2, 3, 4], limit=3))) == 3

    def test_budget(self):
        solver = CDCLSolver()
        holes, pigeons = 5, 6

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        with pytest.raises(SolverLimitError):
            solver.solve(conflict_budget=2)


clause_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=6).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=30,
)


class TestPropertyBased:
    @settings(max_examples=200, deadline=None)
    @given(clause_strategy)
    def test_matches_brute_force(self, clauses):
        solver = CDCLSolver(6)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.satisfiable == brute_force_sat(6, clauses)
        if result.satisfiable:
            for clause in clauses:
                assert any(
                    (lit > 0) == result.model[abs(lit)] for lit in clause
                )
