"""Property-based end-to-end tests on randomly generated STGs.

The generator builds consistent, safe, live STGs by construction: each
component is a cyclic controller firing every signal's rising edge before its
falling edge in a random order, and an STG is a parallel composition of up to
two such components over disjoint signals.  On every generated STG the
unfolding/IP verdicts must agree with the explicit state graph, and the
returned witnesses must replay.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import check_csc, check_usc
from repro.models._build import connect, seq
from repro.stg.consistency import is_consistent
from repro.stg.stategraph import build_state_graph
from repro.stg.stg import STG
from repro.unfolding import unfold


@st.composite
def signal_orders(draw, signals: Tuple[str, ...]):
    """A random firing order where each z+ precedes its z-."""
    edges = [f"{z}+" for z in signals] + [f"{z}-" for z in signals]
    order = draw(st.permutations(edges))
    result: List[str] = []
    fired = set()
    pending = list(order)
    # repair pass: emit z- only after z+ (stable, keeps it a permutation)
    while pending:
        for i, edge in enumerate(pending):
            if edge.endswith("+") or edge[:-1] + "+" in fired:
                fired.add(edge)
                result.append(edge)
                del pending[i]
                break
    return result


@st.composite
def random_stgs(draw):
    num_components = draw(st.integers(1, 2))
    stg = STG("random", outputs=[])
    component_orders = []
    for c in range(num_components):
        num_signals = draw(st.integers(1, 3))
        signals = tuple(f"s{c}_{i}" for i in range(num_signals))
        for z in signals:
            # random input/output split; at least keep outputs non-empty
            if draw(st.booleans()) or not stg.outputs:
                stg.outputs.append(z)
            else:
                stg.inputs.append(z)
        component_orders.append(draw(signal_orders(signals)))
    for order in component_orders:
        seq(stg, *order)
        connect(stg, order[-1], order[0], marked=True)
    return stg


@settings(max_examples=40, deadline=None)
@given(random_stgs())
def test_generated_stgs_are_consistent_and_safe(stg):
    from repro.petri.analysis import is_safe

    assert is_consistent(stg)
    assert is_safe(stg.net)


@settings(max_examples=40, deadline=None)
@given(random_stgs())
def test_ip_method_agrees_with_state_graph(stg):
    graph = build_state_graph(stg)
    prefix = unfold(stg)
    assert check_usc(prefix).holds == graph.has_usc()
    assert check_csc(prefix).holds == graph.has_csc()


@settings(max_examples=25, deadline=None)
@given(random_stgs())
def test_witness_traces_replay(stg):
    report = check_csc(stg)
    if report.witness is None:
        return
    net = stg.net
    m_a = net.initial_marking
    for name in report.witness.trace_a:
        m_a = net.fire_by_name(m_a, name)
    m_b = net.initial_marking
    for name in report.witness.trace_b:
        m_b = net.fire_by_name(m_b, name)
    assert m_a != m_b
    assert report.witness.out_a != report.witness.out_b


@settings(max_examples=25, deadline=None)
@given(random_stgs())
def test_prefix_is_complete(stg):
    """Every reachable marking is the marking of some local-configuration
    extension; we verify via the cheaper direction plus state counts, and
    exhaustively on small prefixes."""
    from repro.petri.reachability import explore
    from repro.unfolding.configurations import is_configuration, marking_of
    from repro.utils.bitset import BitSet

    prefix = unfold(stg)
    reachable = set(explore(stg.net).markings)
    if prefix.num_events <= 14:
        represented = set()
        for bits in range(1 << prefix.num_events):
            config = BitSet(bits)
            if is_configuration(prefix, config):
                represented.add(marking_of(prefix, config))
        assert represented == reachable
    else:
        # at least all local-configuration markings are reachable
        for event in prefix.events:
            assert marking_of(prefix, event.history) in reachable


@settings(max_examples=20, deadline=None)
@given(random_stgs())
def test_symbolic_agrees_on_small(stg):
    from repro.symbolic import symbolic_check_both

    graph = build_state_graph(stg)
    if graph.num_states > 300:
        return
    usc_report, csc_report = symbolic_check_both(stg)
    assert usc_report.holds == graph.has_usc()
    assert csc_report.holds == graph.has_csc()
    assert usc_report.num_states == graph.num_states
